//! Integration tests pinning the paper's worked examples end-to-end.

use wiener_connector::core::exact::{exact_minimum, ExactConfig};
use wiener_connector::core::minimum_wiener_connector;
use wiener_connector::graph::generators::karate::{from_paper_ids, karate_club};
use wiener_connector::graph::generators::structured;
use wiener_connector::graph::wiener::wiener_index_of_subset;

/// §2 / Figure 2: the three Wiener-index values and the suboptimality of
/// the Steiner tree.
#[test]
fn figure2_line_and_roots() {
    let g = structured::figure2_graph(10);
    let line: Vec<u32> = (0..10).collect();

    assert_eq!(wiener_index_of_subset(&g, &line).unwrap(), Some(165));
    let one_root: Vec<u32> = (0..11).collect();
    assert_eq!(wiener_index_of_subset(&g, &one_root).unwrap(), Some(151));
    let both: Vec<u32> = (0..12).collect();
    assert_eq!(wiener_index_of_subset(&g, &both).unwrap(), Some(142));

    // The optimum for Q = the line is the whole graph (W = 142) and it is
    // not a tree.
    let exact = exact_minimum(&g, &line, None, &ExactConfig::default()).unwrap();
    assert!(exact.optimal);
    assert_eq!(exact.wiener_index, 142);
    assert_eq!(exact.connector.len(), 12);
    let sub = exact.connector.induced(&g).unwrap();
    assert!(
        sub.graph().num_edges() > sub.num_nodes() - 1,
        "optimal solution is not a tree"
    );

    // The Steiner baseline returns the bare line.
    let st = wiener_connector::baselines::steiner_tree_baseline(&g, &line).unwrap();
    assert_eq!(st.wiener_index(&g).unwrap(), 165);

    // ws-q beats the Steiner tree.
    let wsq = minimum_wiener_connector(&g, &line).unwrap();
    assert!(wsq.wiener_index < 165);
}

/// §2's generalization: on a line of length h with a full hub, the Steiner
/// tree has Wiener index Ω(h³) while including the hub gives O(h²).
#[test]
fn steiner_tree_can_be_arbitrarily_bad() {
    for h in [20usize, 40, 80] {
        let g = structured::line_with_hub(h);
        let line: Vec<u32> = (0..h as u32).collect();
        let line_w = wiener_index_of_subset(&g, &line).unwrap().unwrap();
        let with_hub: Vec<u32> = (0..=h as u32).collect();
        let hub_w = wiener_index_of_subset(&g, &with_hub).unwrap().unwrap();
        // Ω(h³) vs O(h²): the ratio grows linearly with h.
        let ratio = line_w as f64 / hub_w as f64;
        assert!(
            ratio > h as f64 / 14.0,
            "h = {h}: ratio {ratio} too small (line {line_w}, hub {hub_w})"
        );
        // ws-q includes the hub and lands near the O(h²) solution.
        let wsq = minimum_wiener_connector(&g, &line).unwrap();
        assert!(
            wsq.connector.contains(h as u32),
            "hub not selected for h = {h}"
        );
        assert!(wsq.wiener_index <= hub_w);
    }
}

/// Figure 1 (left): query vertices {12, 25, 26, 30} from both factions.
/// The optimal connector has Wiener index 43 and adds three vertices
/// including leader 1 and bridge 32 (the paper's depicted solution
/// {1, 32, 34} is one of the ties).
#[test]
fn figure1_different_communities() {
    let g = karate_club();
    let q = from_paper_ids(&[12, 25, 26, 30]);
    let wsq = minimum_wiener_connector(&g, &q).unwrap();
    let exact = exact_minimum(&g, &q, Some(&wsq.connector), &ExactConfig::default()).unwrap();
    assert!(exact.optimal);
    assert_eq!(exact.wiener_index, 43);
    assert_eq!(exact.connector.len(), 7);
    // The paper's depicted solution set has the same optimal value.
    let paper_solution = from_paper_ids(&[12, 25, 26, 30, 1, 34, 32]);
    assert_eq!(
        wiener_index_of_subset(&g, &paper_solution).unwrap(),
        Some(43)
    );
    // The optimum recruits leader 1 and the bridge 32.
    assert!(exact.connector.contains(0)); // paper vertex 1
    assert!(exact.connector.contains(31)); // paper vertex 32
                                           // ws-q is within 10% of optimal here.
    assert!(wsq.wiener_index <= 48, "ws-q = {}", wsq.wiener_index);
}

/// Figure 1 (right): query vertices {4, 12, 17} in one faction — the
/// optimum adds exactly two vertices, one being the community leader
/// (vertex 1), and stays inside the community.
#[test]
fn figure1_same_community() {
    let g = karate_club();
    let q = from_paper_ids(&[4, 12, 17]);
    let wsq = minimum_wiener_connector(&g, &q).unwrap();
    let exact = exact_minimum(&g, &q, Some(&wsq.connector), &ExactConfig::default()).unwrap();
    assert!(exact.optimal);
    assert_eq!(exact.wiener_index, 18);
    assert_eq!(exact.connector.len(), 5, "adds exactly two vertices");
    assert!(
        exact.connector.contains(0),
        "community leader (paper vertex 1) selected"
    );
    // Everything stays in the instructor's faction.
    let factions = wiener_connector::graph::generators::karate::karate_factions();
    for &v in exact.connector.vertices() {
        assert_eq!(
            factions[v as usize],
            0,
            "vertex {} left the community",
            v + 1
        );
    }
    // ws-q matches the optimum on this query.
    assert_eq!(wsq.wiener_index, 18);
}

/// §3: for |Q| = 2 a shortest path is optimal — checked against the
/// enumerator on the karate club with several pairs.
#[test]
fn q2_shortest_path_optimality_on_karate() {
    let g = karate_club();
    for (s, t) in [(0u32, 33u32), (11, 28), (4, 14)] {
        let sp = wiener_connector::core::exact::shortest_path_connector(&g, s, t).unwrap();
        let sp_w = sp.wiener_index(&g).unwrap();
        let exact = exact_minimum(&g, &[s, t], None, &ExactConfig::default()).unwrap();
        assert!(exact.optimal);
        assert_eq!(exact.wiener_index, sp_w, "pair ({s},{t})");
    }
}
