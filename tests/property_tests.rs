//! Cross-crate property-based tests (proptest) on the solver invariants.
//!
//! Complements the per-module unit tests: random graphs + random queries,
//! checking the containment/connectivity/optimality-sandwich properties
//! that define a correct Wiener-connector implementation.

use proptest::prelude::*;

use wiener_connector::baselines::Method;
use wiener_connector::core::lower_bound::certified_lower_bound;
use wiener_connector::core::objective::objective_a_best_root;
use wiener_connector::core::{minimum_wiener_connector, Connector};
use wiener_connector::graph::connectivity::largest_component_graph;
use wiener_connector::graph::wiener::wiener_index_of_subset;
use wiener_connector::graph::{Graph, NodeId};

/// Strategy: a connected graph of 8–60 vertices (random tree + extra
/// edges) plus a query set of 2–6 distinct vertices.
fn graph_and_query() -> impl Strategy<Value = (Graph, Vec<NodeId>)> {
    (8usize..60, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for v in 1..n as NodeId {
            edges.push((rng.gen_range(0..v), v)); // random spanning tree
        }
        let extra = rng.gen_range(0..n);
        for _ in 0..extra {
            edges.push((rng.gen_range(0..n as NodeId), rng.gen_range(0..n as NodeId)));
        }
        let g = largest_component_graph(&Graph::from_edges(n, &edges).unwrap())
            .unwrap()
            .0;
        let q_size = rng.gen_range(2..=6.min(g.num_nodes()));
        let mut q: Vec<NodeId> = Vec::new();
        while q.len() < q_size {
            let v = rng.gen_range(0..g.num_nodes() as NodeId);
            if !q.contains(&v) {
                q.push(v);
            }
        }
        (g, q)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ws-q always returns a connected superset of Q whose reported Wiener
    /// index matches an independent recomputation.
    #[test]
    fn wsq_solutions_are_valid_connectors((g, q) in graph_and_query()) {
        let sol = minimum_wiener_connector(&g, &q).unwrap();
        prop_assert!(sol.connector.contains_all(&q));
        prop_assert!(Connector::new(&g, sol.connector.vertices()).is_ok());
        let recomputed = wiener_index_of_subset(&g, sol.connector.vertices())
            .unwrap()
            .expect("connected");
        prop_assert_eq!(recomputed, sol.wiener_index);
    }

    /// The certified lower bound never exceeds the value of *any* feasible
    /// solution ws-q finds.
    #[test]
    fn lower_bound_below_any_feasible_solution((g, q) in graph_and_query()) {
        let sol = minimum_wiener_connector(&g, &q).unwrap();
        let lb = certified_lower_bound(&g, &q).unwrap();
        prop_assert!(
            lb.value <= sol.wiener_index,
            "LB {} > feasible {}", lb.value, sol.wiener_index
        );
    }

    /// Lemma 1 sandwich on ws-q's own solution: A(H)/2 ≤ W(H) ≤ A(H).
    #[test]
    fn lemma1_holds_on_solutions((g, q) in graph_and_query()) {
        let sol = minimum_wiener_connector(&g, &q).unwrap();
        let (_, a) = objective_a_best_root(&g, sol.connector.vertices())
            .unwrap()
            .expect("connected");
        prop_assert!(a / 2 <= sol.wiener_index);
        prop_assert!(sol.wiener_index <= a);
    }

    /// Every baseline returns a valid connector (or a clean error) on
    /// arbitrary connected instances.
    #[test]
    fn baselines_return_valid_connectors((g, q) in graph_and_query()) {
        for m in Method::ALL {
            let c = m.run(&g, &q).unwrap();
            prop_assert!(c.contains_all(&q), "{} missing query", m.name());
            prop_assert!(
                Connector::new(&g, c.vertices()).is_ok(),
                "{} disconnected", m.name()
            );
        }
    }

    /// ws-q never loses to the Steiner-tree baseline on the Wiener
    /// objective by more than Lemma-constant slack; empirically it wins or
    /// ties almost always — we assert a generous 1.5x.
    #[test]
    fn wsq_not_worse_than_steiner_by_much((g, q) in graph_and_query()) {
        let wsq = minimum_wiener_connector(&g, &q).unwrap();
        let st = Method::St.run(&g, &q).unwrap();
        let st_w = st.wiener_index(&g).unwrap();
        prop_assert!(
            wsq.wiener_index as f64 <= 1.5 * st_w as f64,
            "ws-q {} vs st {}", wsq.wiener_index, st_w
        );
    }

    /// Solving the same query twice is deterministic.
    #[test]
    fn wsq_is_deterministic((g, q) in graph_and_query()) {
        let a = minimum_wiener_connector(&g, &q).unwrap();
        let b = minimum_wiener_connector(&g, &q).unwrap();
        prop_assert_eq!(a.connector.vertices(), b.connector.vertices());
        prop_assert_eq!(a.wiener_index, b.wiener_index);
    }
}
