//! Integration tests for the approximation behaviour of `ws-q` (§6.2):
//! measured ratios against exact optima on small random instances, and the
//! theoretical machinery (lower bounds, local search, error intervals)
//! wired together the way the Table 2 harness uses them.

use rand::{Rng, SeedableRng};

use wiener_connector::core::exact::{exact_minimum, ExactConfig};
use wiener_connector::core::local_search::{refine, LocalSearchConfig};
use wiener_connector::core::lower_bound::{certified_lower_bound, error_interval};
use wiener_connector::core::minimum_wiener_connector;
use wiener_connector::graph::connectivity::largest_component_graph;
use wiener_connector::graph::generators::{barabasi_albert, gnm};
use wiener_connector::graph::Graph;

fn small_graphs(seed: u64) -> Vec<Graph> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for i in 0..12 {
        let g = if i % 2 == 0 {
            barabasi_albert(40, 2, &mut rng)
        } else {
            largest_component_graph(&gnm(45, 90, &mut rng)).unwrap().0
        };
        if g.num_nodes() <= 64 && g.num_nodes() >= 12 {
            out.push(g);
        }
    }
    out
}

/// On graphs small enough for exact enumeration, ws-q's measured
/// approximation ratio stays far below the theoretical constant — the
/// paper reports ≤ 1.17 for small query sets; we allow 2.0 for slack
/// across random instances.
#[test]
fn measured_ratio_is_small() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut worst: f64 = 1.0;
    let mut cases = 0;
    for g in small_graphs(1) {
        let n = g.num_nodes() as u32;
        for q_size in [3usize, 5] {
            let q: Vec<u32> = (0..q_size).map(|_| rng.gen_range(0..n)).collect();
            let wsq = minimum_wiener_connector(&g, &q).unwrap();
            let exact =
                exact_minimum(&g, &q, Some(&wsq.connector), &ExactConfig::default()).unwrap();
            if !exact.optimal {
                continue;
            }
            cases += 1;
            if exact.wiener_index > 0 {
                worst = worst.max(wsq.wiener_index as f64 / exact.wiener_index as f64);
            }
        }
    }
    assert!(cases >= 10, "not enough exact instances ({cases})");
    assert!(worst <= 2.0, "worst measured ratio {worst}");
}

/// The full Table 2 pipeline: GL = certified lower bound, GU = local-search
/// refinement of ws-q. Invariants: GL ≤ OPT ≤ GU ≤ ws-q and the error
/// interval is well-formed.
#[test]
fn table2_pipeline_invariants() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    for g in small_graphs(2) {
        let n = g.num_nodes() as u32;
        let q: Vec<u32> = (0..4).map(|_| rng.gen_range(0..n)).collect();
        let wsq = minimum_wiener_connector(&g, &q).unwrap();
        let (_, gu) = refine(&g, &q, &wsq.connector, &LocalSearchConfig::default()).unwrap();
        let gl = certified_lower_bound(&g, &q).unwrap().value;
        let exact = exact_minimum(&g, &q, Some(&wsq.connector), &ExactConfig::default()).unwrap();

        assert!(gu <= wsq.wiener_index, "GU must improve on ws-q");
        if exact.optimal {
            assert!(gl <= exact.wiener_index, "GL exceeds OPT");
            assert!(exact.wiener_index <= gu, "GU below OPT");
        }
        let (lo, hi) = error_interval(wsq.wiener_index, gl, gu);
        assert!(lo >= 0.0 && hi >= lo, "malformed interval [{lo}, {hi}]");
    }
}

/// The paper's headline: ws-q solutions are optimal or near-optimal for
/// |Q| ∈ {3, 5} (§6.2 reports errors in [0, 5%] there). We check that the
/// *majority* of small-query instances are exactly optimal.
#[test]
fn small_queries_usually_optimal() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(27);
    let mut optimal = 0usize;
    let mut total = 0usize;
    for g in small_graphs(3) {
        let n = g.num_nodes() as u32;
        let q: Vec<u32> = (0..3).map(|_| rng.gen_range(0..n)).collect();
        let wsq = minimum_wiener_connector(&g, &q).unwrap();
        let exact = exact_minimum(&g, &q, Some(&wsq.connector), &ExactConfig::default()).unwrap();
        if exact.optimal {
            total += 1;
            if wsq.wiener_index == exact.wiener_index {
                optimal += 1;
            }
        }
    }
    assert!(total >= 8);
    assert!(
        optimal * 2 >= total,
        "only {optimal}/{total} instances solved optimally"
    );
}

/// Theorem 4's guarantee is a constant factor; sanity-check that measured
/// ratios do not grow with the graph across a size sweep.
#[test]
fn ratio_does_not_grow_with_graph_size() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(37);
    let mut ratios = Vec::new();
    for n in [20usize, 35, 50] {
        let g = barabasi_albert(n, 2, &mut rng);
        let q: Vec<u32> = (0..3).map(|_| rng.gen_range(0..n as u32)).collect();
        let wsq = minimum_wiener_connector(&g, &q).unwrap();
        let exact = exact_minimum(&g, &q, Some(&wsq.connector), &ExactConfig::default()).unwrap();
        if exact.optimal && exact.wiener_index > 0 {
            ratios.push(wsq.wiener_index as f64 / exact.wiener_index as f64);
        }
    }
    for r in &ratios {
        assert!(*r <= 2.0, "ratio {r} out of band (all: {ratios:?})");
    }
}
