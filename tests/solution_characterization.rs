//! Integration tests for the Table 3 / Table 4 qualitative claims: ws-q
//! solutions are smaller, denser, and more central than the baselines',
//! and community-search methods blow up on cross-community queries.

use rand::SeedableRng;

use wiener_connector::baselines::Method;
use wiener_connector::datasets::{realworld, workloads};
use wiener_connector::graph::centrality;

/// Table 3's shape on the email stand-in: |V(H)| ordering
/// ctp ≥ cps ≥ ppr ≥ st ≈ ws-q, Wiener index minimized by ws-q, and ws-q's
/// solutions denser than the random-walk methods'.
#[test]
fn table3_shape_on_email_standin() {
    let si = realworld::standin("email").unwrap();
    let g = &si.graph;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let bc = centrality::betweenness_sampled(g, 300, true, &mut rng);

    // Average over a few queries of |Q| = 10, AD ≈ 4 (the Table 3 workload).
    let mut sizes: std::collections::HashMap<&str, Vec<f64>> = Default::default();
    let mut wieners: std::collections::HashMap<&str, Vec<f64>> = Default::default();
    let mut bcs: std::collections::HashMap<&str, Vec<f64>> = Default::default();
    let mut runs = 0;
    for _ in 0..3 {
        let q = workloads::distance_controlled_query(
            g,
            &workloads::WorkloadConfig::new(10, 4.0),
            &mut rng,
        )
        .expect("workload");
        runs += 1;
        for m in Method::ALL {
            let c = m.run(g, &q.vertices).expect("method runs");
            sizes.entry(m.name()).or_default().push(c.len() as f64);
            let w = c
                .wiener_index_sampled(g, 64, &mut rng)
                .expect("connected solution");
            wieners.entry(m.name()).or_default().push(w);
            bcs.entry(m.name()).or_default().push(c.average_score(&bc));
        }
    }
    assert_eq!(runs, 3);
    let avg = |map: &std::collections::HashMap<&str, Vec<f64>>, k: &str| -> f64 {
        let v = &map[k];
        v.iter().sum::<f64>() / v.len() as f64
    };

    // Size ordering (allow slack between neighbors, but the endpoints must
    // be far apart, as in Table 3 where ctp ≈ 671 and ws-q ≈ 24).
    let (s_ctp, s_cps, s_ppr, s_st, s_wsq) = (
        avg(&sizes, "ctp"),
        avg(&sizes, "cps"),
        avg(&sizes, "ppr"),
        avg(&sizes, "st"),
        avg(&sizes, "ws-q"),
    );
    assert!(s_ctp >= s_wsq * 3.0, "ctp {s_ctp} vs ws-q {s_wsq}");
    assert!(s_cps >= s_wsq, "cps {s_cps} vs ws-q {s_wsq}");
    assert!(s_ppr >= s_wsq, "ppr {s_ppr} vs ws-q {s_wsq}");
    assert!(s_st >= s_wsq * 0.8, "st {s_st} vs ws-q {s_wsq}");

    // ws-q minimizes the Wiener index.
    let w_wsq = avg(&wieners, "ws-q");
    for m in ["ctp", "cps", "ppr", "st"] {
        assert!(
            avg(&wieners, m) >= w_wsq * 0.99,
            "{m} undercut ws-q on Wiener index"
        );
    }

    // ws-q and st pick more central vertices than the community methods.
    let bc_wsq = avg(&bcs, "ws-q");
    assert!(bc_wsq >= avg(&bcs, "ctp"), "ws-q bc below ctp");
    assert!(bc_wsq >= avg(&bcs, "cps") * 0.9, "ws-q bc below cps");
}

/// Table 4's claim: on a graph with ground-truth communities, the
/// random-walk/community methods return much larger solutions for
/// different-community (dc) queries than for same-community (sc) ones,
/// while ws-q and st grow only slightly.
#[test]
fn table4_dc_vs_sc_ratio() {
    let si = realworld::standin_scaled("dblp", 0.004).unwrap();
    let g = &si.graph;
    let membership = si
        .membership
        .as_ref()
        .expect("dblp stand-in has communities");
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);

    let mut ratio_of = |method: Method| -> f64 {
        let mut sc_sizes = 0.0;
        let mut dc_sizes = 0.0;
        let mut n = 0.0;
        for _ in 0..4 {
            let sc = workloads::same_community_query(g, membership, 5, 20, &mut rng)
                .expect("sc workload");
            let dc = workloads::different_communities_query(g, membership, 5, &mut rng)
                .expect("dc workload");
            let c_sc = method.run(g, &sc.vertices).expect("sc run");
            let c_dc = method.run(g, &dc.vertices).expect("dc run");
            sc_sizes += c_sc.len() as f64;
            dc_sizes += c_dc.len() as f64;
            n += 1.0;
        }
        (dc_sizes / n) / (sc_sizes / n)
    };

    let wsq_ratio = ratio_of(Method::WsQ);
    let ppr_ratio = ratio_of(Method::Ppr);
    let cps_ratio = ratio_of(Method::Cps);

    // Paper: ppr/cps blow up 7–11x, ws-q ≤ ~1.4x. Enforce the ordering with
    // slack for the synthetic substrate.
    assert!(wsq_ratio < 2.5, "ws-q dc/sc ratio {wsq_ratio}");
    assert!(
        ppr_ratio > wsq_ratio,
        "ppr ratio {ppr_ratio} not above ws-q {wsq_ratio}"
    );
    assert!(
        cps_ratio > wsq_ratio,
        "cps ratio {cps_ratio} not above ws-q {wsq_ratio}"
    );
}

/// All methods agree on the trivial regime: queries inside a dense module
/// produce compact solutions for everyone.
#[test]
fn sc_queries_keep_all_methods_small() {
    let si = realworld::standin_scaled("dblp", 0.002).unwrap();
    let g = &si.graph;
    let membership = si.membership.as_ref().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let q = workloads::same_community_query(g, membership, 3, 15, &mut rng).unwrap();
    for m in [Method::Ppr, Method::St, Method::WsQ] {
        let c = m.run(g, &q.vertices).unwrap();
        assert!(
            c.len() <= g.num_nodes() / 4,
            "{} returned {} of {} vertices for an sc query",
            m.name(),
            c.len(),
            g.num_nodes()
        );
    }
}
