//! Cross-crate integration tests for the session's extensions: LP/MIP
//! bounds vs the ws-q solver, Steiner-subroutine variants, the
//! approximate-distance solver, STP round-trips feeding the Figure 4
//! comparison, and CNM-classified community workloads.

use rand::{Rng, SeedableRng};
use wiener_connector::core::ilp_solve::{program7_bounds, Program7Config};
use wiener_connector::core::steiner::SteinerAlgorithm;
use wiener_connector::core::{
    minimum_wiener_connector, ApproxWienerSteiner, ApproxWsqConfig, WienerSteiner, WsqConfig,
};
use wiener_connector::datasets::{self, stp, workloads};
use wiener_connector::graph::community::{cnm, communities_spanned, CnmStop};
use wiener_connector::graph::connectivity::largest_component_graph;
use wiener_connector::graph::generators::{barabasi_albert, gnm, karate::karate_club, sbm};

/// Program 7 bounds are certified: they can never exceed what any actual
/// connector — in particular ws-q's — achieves.
#[test]
fn program7_lower_bound_never_exceeds_wsq() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(101);
    let mut checked = 0;
    while checked < 4 {
        let g = gnm(14, 24, &mut rng);
        let Ok((g, _)) = largest_component_graph(&g) else {
            continue;
        };
        let n = g.num_nodes() as u32;
        if n < 6 {
            continue;
        }
        let q = vec![0, n / 3, n - 1];
        let wsq = minimum_wiener_connector(&g, &q).expect("solve");
        let bounds = program7_bounds(&g, &q, &Program7Config::default()).expect("bounds");
        assert!(
            bounds.lower_bound <= wsq.wiener_index,
            "GL {} > ws-q W {} (n = {}, m = {})",
            bounds.lower_bound,
            wsq.wiener_index,
            g.num_nodes(),
            g.num_edges()
        );
        checked += 1;
    }
}

/// On the karate club, the LP-backed lower bound certifies ws-q within a
/// small factor — the Table 2 "error interval" pipeline, end to end.
#[test]
fn karate_error_interval_is_tight() {
    let g = karate_club();
    let q = vec![11u32, 24, 25, 29]; // Figure 1 (left), 0-indexed
    let wsq = minimum_wiener_connector(&g, &q).expect("solve");
    let bounds = program7_bounds(&g, &q, &Program7Config::default()).expect("bounds");
    assert!(bounds.lower_bound <= wsq.wiener_index);
    // Program 7's MIP bound is strong on this instance: within 2x.
    assert!(
        2 * bounds.lower_bound >= wsq.wiener_index,
        "GL {} too loose for ws-q W {}",
        bounds.lower_bound,
        wsq.wiener_index
    );
}

/// All three Steiner subroutines keep ws-q's output a valid connector,
/// and their Wiener indices stay within the mutual factor their shared
/// approximation guarantee implies.
#[test]
fn wsq_is_sound_under_every_steiner_subroutine() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(55);
    let g = barabasi_albert(300, 3, &mut rng);
    for _ in 0..3 {
        let q: Vec<u32> = (0..6).map(|_| rng.gen_range(0..300)).collect();
        let mut ws = Vec::new();
        for alg in [
            SteinerAlgorithm::Mehlhorn,
            SteinerAlgorithm::KouMarkowskyBerman,
            SteinerAlgorithm::TakahashiMatsuyama,
        ] {
            let cfg = WsqConfig {
                steiner: alg,
                parallel: false,
                ..WsqConfig::default()
            };
            let sol = WienerSteiner::with_config(&g, cfg)
                .solve(&q)
                .expect("solve");
            assert!(
                sol.connector.contains_all(&q),
                "{alg:?} dropped query vertices"
            );
            let sub = sol.connector.induced(&g).expect("induced");
            assert!(
                wiener_connector::graph::connectivity::is_connected(sub.graph()),
                "{alg:?} produced a disconnected connector"
            );
            ws.push(sol.wiener_index);
        }
        let (lo, hi) = (*ws.iter().min().unwrap(), *ws.iter().max().unwrap());
        assert!(hi <= 4 * lo, "variants too far apart: {ws:?}");
    }
}

/// Bypassing Lemma 4 (Klein–Ravi node-weighted Steiner inside ws-q)
/// still yields valid connectors, with quality in the same ballpark —
/// the ablation quantifying the paper's cost-shift trick.
#[test]
fn wsq_without_lemma4_is_sound() {
    let g = karate_club();
    let cfg = WsqConfig {
        node_weighted_steiner: true,
        parallel: false,
        ..WsqConfig::default()
    };
    let kr_solver = WienerSteiner::with_config(&g, cfg);
    for q in [vec![11u32, 24, 25, 29], vec![3, 11, 16]] {
        let kr = kr_solver.solve(&q).expect("solve");
        assert!(kr.connector.contains_all(&q));
        let baseline = minimum_wiener_connector(&g, &q).expect("default");
        assert!(
            kr.wiener_index <= 3 * baseline.wiener_index,
            "Klein–Ravi route too weak: {} vs {}",
            kr.wiener_index,
            baseline.wiener_index
        );
    }
}

/// The approximate solver returns valid connectors whose quality tracks
/// the exact solver across a query batch.
#[test]
fn approximate_solver_tracks_exact_quality() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let g = barabasi_albert(500, 3, &mut rng);
    let approx = ApproxWienerSteiner::build(&g, ApproxWsqConfig::default(), &mut rng);
    let exact = WienerSteiner::new(&g);
    let mut ratio_sum = 0.0;
    let trials = 4;
    for _ in 0..trials {
        let q: Vec<u32> = (0..6).map(|_| rng.gen_range(0..500)).collect();
        let wa = approx.solve(&q).expect("approx");
        let we = exact.solve(&q).expect("exact");
        assert!(wa.connector.contains_all(&q));
        ratio_sum += wa.wiener_index as f64 / we.wiener_index.max(1) as f64;
    }
    let mean_ratio = ratio_sum / trials as f64;
    assert!(
        mean_ratio < 1.6,
        "mean quality ratio {mean_ratio} too far from exact"
    );
}

/// STP round-trip feeding the §6.5 comparison: parse a generated `puc`
/// instance back from its STP serialization and run the Figure 4 ws-q
/// vs st comparison on the parsed copy.
#[test]
fn stp_roundtrip_supports_figure4_comparison() {
    let inst = datasets::puc_like(3).into_iter().next().expect("instances");
    let text = stp::write_stp(&inst);
    let parsed = stp::parse_stp(&text).expect("parse").instance;

    let wsq = minimum_wiener_connector(&parsed.graph, &parsed.terminals).expect("wsq");
    let st =
        wiener_connector::baselines::st::steiner_tree_baseline(&parsed.graph, &parsed.terminals)
            .expect("st");
    // The defining Figure 4 relation: ws-q optimizes W, st optimizes size;
    // ws-q can never lose on W.
    let st_w = st.wiener_index(&parsed.graph).expect("st W");
    assert!(wsq.wiener_index <= st_w);
}

/// CNM labels classify §6.4-style workloads: cross-community queries get
/// larger connectors than same-community ones on a planted-partition
/// graph (the Table 4 signal), and the CNM labels agree with planted
/// labels about which workload is which.
#[test]
fn community_workloads_show_the_dc_vs_sc_gap() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let pp = sbm::planted_partition(&[60, 60, 60], 0.35, 0.01, &mut rng);
    let (g, mapping) = largest_component_graph(&pp.graph).expect("connected");
    let membership: Vec<u32> = mapping
        .iter()
        .map(|&old| pp.membership[old as usize])
        .collect();
    let clustering = cnm(&g, CnmStop::PeakModularity);

    let solver = WienerSteiner::new(&g);
    let mut sc_sizes = 0usize;
    let mut dc_sizes = 0usize;
    let reps = 5;
    for _ in 0..reps {
        let sc = workloads::same_community_query(&g, &membership, 4, 20, &mut rng).expect("sc");
        let dc = workloads::different_communities_query(&g, &membership, 4, &mut rng).expect("dc");
        assert_eq!(communities_spanned(&membership, &sc.vertices), 1);
        assert!(communities_spanned(&membership, &dc.vertices) > 1);
        // CNM recovered labels must agree on the dc classification.
        assert!(communities_spanned(&clustering.membership, &dc.vertices) > 1);
        sc_sizes += solver
            .solve(&sc.vertices)
            .expect("sc solve")
            .connector
            .len();
        dc_sizes += solver
            .solve(&dc.vertices)
            .expect("dc solve")
            .connector
            .len();
    }
    assert!(
        dc_sizes > sc_sizes,
        "cross-community connectors ({dc_sizes}) should exceed same-community ({sc_sizes})"
    );
}
