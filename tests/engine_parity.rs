//! Engine/legacy parity: `QueryEngine` must serve exactly what the
//! historical per-method entry points produced.
//!
//! Two layers:
//!
//! * a deterministic 100-query batch on the karate club pushed through
//!   *every* registered solver name, compared connector-for-connector
//!   against the legacy direct calls (the API-migration acceptance
//!   check), plus batch-vs-sequential determinism under a fixed seed;
//! * proptest properties on random connected graphs for the solvers whose
//!   legacy entry points matter most (`ws-q`, `ws-q-approx`, exact-small,
//!   and each baseline).

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use wiener_connector::baselines;
use wiener_connector::core::engine::ExactSolver;
use wiener_connector::core::exact::{exact_minimum, ExactConfig};
use wiener_connector::core::local_search::{refine, LocalSearchConfig};
use wiener_connector::core::wsq_approx::{ApproxWienerSteiner, ApproxWsqConfig};
use wiener_connector::core::{minimum_wiener_connector, Connector, QueryEngine, QueryOptions};
use wiener_connector::graph::connectivity::largest_component_graph;
use wiener_connector::graph::generators::karate::karate_club;
use wiener_connector::graph::{Graph, NodeId};

/// Budgeted exact config so 100 enumerations stay fast; the same config is
/// used on both sides of the comparison.
fn budgeted_exact() -> ExactConfig {
    ExactConfig {
        max_subsets: 100_000,
    }
}

/// `n` random queries of 2–4 distinct vertices, from a fixed seed.
fn karate_queries(n: usize, seed: u64) -> Vec<Vec<NodeId>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let size = rng.gen_range(2..=4usize);
            let mut q: Vec<NodeId> = Vec::new();
            while q.len() < size {
                let v = rng.gen_range(0..34u32);
                if !q.contains(&v) {
                    q.push(v);
                }
            }
            q
        })
        .collect()
}

/// The legacy (pre-engine) result for each registry name.
fn legacy_solve(g: &Graph, engine: &QueryEngine<'_>, name: &str, q: &[NodeId]) -> (Connector, u64) {
    match name {
        "ws-q" => {
            let sol = minimum_wiener_connector(g, q).unwrap();
            (sol.connector, sol.wiener_index)
        }
        "ws-q-approx" => {
            // Same oracle as the engine's shared one → identical paths.
            let solver = ApproxWienerSteiner::with_oracle(
                g,
                engine.landmark_oracle().clone(),
                ApproxWsqConfig::default(),
            );
            let sol = solver.solve(q).unwrap();
            (sol.connector, sol.wiener_index)
        }
        "ws-q+ls" => {
            let sol = minimum_wiener_connector(g, q).unwrap();
            let (c, w) = refine(g, q, &sol.connector, &LocalSearchConfig::default()).unwrap();
            (c, w)
        }
        "exact" => {
            let out = exact_minimum(g, q, None, &budgeted_exact()).unwrap();
            (out.connector, out.wiener_index)
        }
        "ctp" => wiener(g, baselines::ctp(g, q).unwrap()),
        "cps" => wiener(g, baselines::cps(g, q).unwrap()),
        "ppr" => wiener(g, baselines::ppr(g, q).unwrap()),
        "st" => wiener(g, baselines::steiner_tree_baseline(g, q).unwrap()),
        "greedy-wiener" => wiener(g, baselines::greedy_wiener(g, q).unwrap()),
        other => panic!("no legacy mapping for solver {other:?}"),
    }
}

fn wiener(g: &Graph, c: Connector) -> (Connector, u64) {
    let w = c.wiener_index(g).unwrap();
    (c, w)
}

/// The acceptance check: a 100-query batch through every registered
/// solver name, identical to the legacy per-call API.
#[test]
fn batch_of_100_matches_legacy_for_every_registered_solver() {
    let g = karate_club();
    let mut engine = wiener_connector::engine(&g);
    engine.register(Box::new(ExactSolver {
        config: budgeted_exact(),
    }));
    let queries = karate_queries(100, 0xC0FFEE);

    let names: Vec<String> = engine
        .solver_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(names.len(), 9, "expected the full method table: {names:?}");
    for name in &names {
        let batch = engine.solve_batch(name, &queries, &QueryOptions::default());
        assert_eq!(batch.len(), queries.len());
        for (q, report) in queries.iter().zip(batch) {
            let report = report.unwrap_or_else(|e| panic!("{name} failed on {q:?}: {e}"));
            let (legacy_c, legacy_w) = legacy_solve(&g, &engine, name, q);
            assert_eq!(
                report.connector.vertices(),
                legacy_c.vertices(),
                "{name} connector diverged on {q:?}"
            );
            assert_eq!(report.wiener_index, legacy_w, "{name} W diverged on {q:?}");
        }
    }
}

/// Cache-on vs cache-off parity for every registered solver: a cached
/// replay and a `no_cache` fresh solve must produce the same
/// `SolveReport` (connector, objective, diagnostics) as the cold solve —
/// the solve cache is a latency optimization, never a semantic one.
#[test]
fn cache_on_and_off_reports_agree_for_every_registered_solver() {
    let g = karate_club();
    let mut engine = wiener_connector::engine(&g);
    engine.register(Box::new(ExactSolver {
        config: budgeted_exact(),
    }));
    let queries = karate_queries(10, 0xCAC4E);
    let names: Vec<String> = engine
        .solver_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(names.len(), 9, "expected the full method table: {names:?}");
    let no_cache = QueryOptions::new().no_cache();
    for name in &names {
        for q in &queries {
            let cold = engine.solve(name, q).unwrap();
            let hot = engine.solve(name, q).unwrap();
            let fresh = engine.solve_with(name, q, &no_cache).unwrap();
            for (label, other) in [("cached", &hot), ("no_cache", &fresh)] {
                assert_eq!(
                    cold.connector.vertices(),
                    other.connector.vertices(),
                    "{name} {label} connector diverged on {q:?}"
                );
                assert_eq!(cold.wiener_index, other.wiener_index, "{name} on {q:?}");
                assert_eq!(cold.candidates, other.candidates, "{name} on {q:?}");
                assert_eq!(cold.optimal, other.optimal, "{name} on {q:?}");
            }
        }
    }
    let stats = engine.cache_stats();
    assert!(stats.hits >= (names.len() * queries.len()) as u64);
}

/// Engine-level batching parity: `ws-q` with the multi-source batched
/// root sweep on vs off returns identical `Connector`s for 100 random
/// queries — on a graph large enough that both the batched and the
/// direction-optimizing code paths genuinely engage. The batched sweep
/// is a kernel choice, never a semantic one.
#[test]
fn wsq_batching_on_and_off_return_identical_connectors_for_100_queries() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBA7C4);
    let g = wiener_connector::graph::generators::barabasi_albert(500, 3, &mut rng);
    let queries: Vec<Vec<NodeId>> = (0..100)
        .map(|_| {
            let size = rng.gen_range(2..=5usize);
            let mut q: Vec<NodeId> = Vec::new();
            while q.len() < size {
                let v = rng.gen_range(0..500u32);
                if !q.contains(&v) {
                    q.push(v);
                }
            }
            q
        })
        .collect();
    let mut on_engine = QueryEngine::new(&g);
    let mut off_engine = QueryEngine::new(&g);
    on_engine.set_batch_enabled(true);
    off_engine.set_batch_enabled(false);
    let opts = QueryOptions::default();
    let on = on_engine.solve_batch("ws-q", &queries, &opts);
    let off = off_engine.solve_batch("ws-q", &queries, &opts);
    for ((q, a), b) in queries.iter().zip(&on).zip(&off) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(
            a.connector.vertices(),
            b.connector.vertices(),
            "batching changed the connector on {q:?}"
        );
        assert_eq!(a.wiener_index, b.wiener_index, "on {q:?}");
        assert_eq!(a.candidates, b.candidates, "on {q:?}");
    }
}

/// Batch-vs-sequential determinism under a fixed seed: the same batch
/// solved twice, and query-by-query, yields identical results.
#[test]
fn batch_is_deterministic_and_matches_sequential() {
    let g = karate_club();
    let engine = wiener_connector::engine(&g);
    let queries = karate_queries(100, 42);
    let opts = QueryOptions::default();

    let first = engine.solve_batch("ws-q", &queries, &opts);
    let second = engine.solve_batch("ws-q", &queries, &opts);
    for ((q, a), b) in queries.iter().zip(&first).zip(&second) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(
            a.connector.vertices(),
            b.connector.vertices(),
            "rerun diverged on {q:?}"
        );
        assert_eq!(a.wiener_index, b.wiener_index);
        let seq = engine.solve("ws-q", q).unwrap();
        assert_eq!(a.connector.vertices(), seq.connector.vertices());
        assert_eq!(a.wiener_index, seq.wiener_index);
    }
}

/// Strategy: a connected graph of 8–40 vertices plus a query of 2–5
/// distinct vertices (mirrors `tests/property_tests.rs`).
fn graph_and_query() -> impl Strategy<Value = (Graph, Vec<NodeId>)> {
    (8usize..40, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for v in 1..n as NodeId {
            edges.push((rng.gen_range(0..v), v));
        }
        for _ in 0..rng.gen_range(0..n) {
            edges.push((rng.gen_range(0..n as NodeId), rng.gen_range(0..n as NodeId)));
        }
        let g = largest_component_graph(&Graph::from_edges(n, &edges).unwrap())
            .unwrap()
            .0;
        let q_size = rng.gen_range(2..=5.min(g.num_nodes()));
        let mut q: Vec<NodeId> = Vec::new();
        while q.len() < q_size {
            let v = rng.gen_range(0..g.num_nodes() as NodeId);
            if !q.contains(&v) {
                q.push(v);
            }
        }
        (g, q)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `engine.solve("ws-q")` is the legacy `minimum_wiener_connector`.
    #[test]
    fn engine_wsq_matches_legacy((g, q) in graph_and_query()) {
        let engine = QueryEngine::new(&g);
        let report = engine.solve("ws-q", &q).unwrap();
        let legacy = minimum_wiener_connector(&g, &q).unwrap();
        prop_assert_eq!(report.connector.vertices(), legacy.connector.vertices());
        prop_assert_eq!(report.wiener_index, legacy.wiener_index);
    }

    /// `engine.solve("ws-q-approx")` equals the legacy approximate solver
    /// run against the engine's own oracle.
    #[test]
    fn engine_approx_matches_legacy((g, q) in graph_and_query()) {
        let engine = QueryEngine::new(&g);
        let report = engine.solve("ws-q-approx", &q).unwrap();
        let legacy = ApproxWienerSteiner::with_oracle(
            &g,
            engine.landmark_oracle().clone(),
            ApproxWsqConfig::default(),
        )
        .solve(&q)
        .unwrap();
        prop_assert_eq!(report.connector.vertices(), legacy.connector.vertices());
        prop_assert_eq!(report.wiener_index, legacy.wiener_index);
    }

    /// `engine.solve("exact")` equals the legacy enumerator on small
    /// graphs (equal Wiener index; tie-breaking among optimal connectors
    /// is also identical since both run the same code).
    #[test]
    fn engine_exact_matches_legacy((g, q) in graph_and_query()) {
        let mut engine = QueryEngine::new(&g);
        engine.register(Box::new(ExactSolver { config: budgeted_exact() }));
        let report = engine.solve("exact", &q).unwrap();
        let legacy = exact_minimum(&g, &q, None, &budgeted_exact()).unwrap();
        prop_assert_eq!(report.connector.vertices(), legacy.connector.vertices());
        prop_assert_eq!(report.wiener_index, legacy.wiener_index);
        prop_assert_eq!(report.optimal, Some(legacy.optimal));
    }

    /// Every baseline solver matches its legacy function.
    #[test]
    fn engine_baselines_match_legacy((g, q) in graph_and_query()) {
        let engine = wiener_connector::engine(&g);
        for name in ["ctp", "cps", "ppr", "st", "greedy-wiener"] {
            let report = engine.solve(name, &q).unwrap();
            let (legacy_c, legacy_w) = legacy_solve(&g, &engine, name, &q);
            prop_assert_eq!(
                report.connector.vertices(),
                legacy_c.vertices(),
                "{} diverged", name
            );
            prop_assert_eq!(report.wiener_index, legacy_w, "{} W diverged", name);
        }
    }
}
