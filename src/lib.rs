//! Facade crate for the Minimum Wiener Connector reproduction.
//!
//! Re-exports the substrate ([`graph`]), the solvers ([`core`]), the
//! competing methods ([`baselines`]), and the dataset/workload machinery
//! ([`datasets`]) behind one dependency. See the repository README for a
//! guided tour and `examples/` for runnable entry points.
//!
//! The recommended entry point is [`engine`]: a per-graph
//! [`QueryEngine`](mwc_core::QueryEngine) with the paper's complete
//! method table registered, serving single queries and parallel batches
//! while amortizing BFS workspaces, centrality vectors, and the landmark
//! oracle across calls.
//!
//! ```
//! use wiener_connector::prelude::*;
//! use wiener_connector::graph::generators::karate::karate_club;
//!
//! let g = karate_club();
//! let engine = wiener_connector::engine(&g);
//! let report = engine.solve("ws-q", &[11, 24, 25, 29]).unwrap();
//! assert!(report.connector.contains_all(&[11, 24, 25, 29]));
//! ```

pub use mwc_baselines as baselines;
pub use mwc_core as core;
pub use mwc_datasets as datasets;
pub use mwc_graph as graph;
pub use mwc_lp as lp;
pub use mwc_service as service;

use std::sync::Arc;

use mwc_graph::Graph;

/// A [`QueryEngine`](mwc_core::QueryEngine) over `graph` with every
/// solver of the workspace registered: the core methods (`ws-q`,
/// `ws-q-approx`, `ws-q+ls`, `exact`) and the §6.1 baselines (`ctp`,
/// `cps`, `ppr`, `st`, `greedy-wiener`). Build it once per graph; it is
/// `Sync`, so one instance can serve concurrent callers.
pub fn engine(graph: &Graph) -> mwc_core::QueryEngine<'_> {
    mwc_baselines::full_engine(graph)
}

/// Like [`engine`], but sharing ownership of the graph: the returned
/// [`OwnedEngine`](mwc_core::OwnedEngine) carries no borrowed data, so
/// it can be stored in long-lived serving state (see
/// [`service::Catalog`], which holds one per loaded graph).
pub fn engine_shared(graph: Arc<Graph>) -> mwc_core::OwnedEngine {
    mwc_baselines::full_engine_shared(graph)
}

/// Commonly used items, for `use wiener_connector::prelude::*`.
pub mod prelude {
    pub use mwc_baselines::{full_engine, full_engine_shared};
    pub use mwc_core::{
        ApproxWienerSteiner, ApproxWsqConfig, Connector, ConnectorSolver, OwnedEngine, QueryEngine,
        QueryOptions, SolveReport, WienerSteiner, WsqConfig,
    };
    pub use mwc_graph::{Graph, GraphBuilder, InducedSubgraph, NodeId};
}
