//! Facade crate for the Minimum Wiener Connector reproduction.
//!
//! Re-exports the substrate ([`graph`]), the solvers ([`core`]), the
//! competing methods ([`baselines`]), and the dataset/workload machinery
//! ([`datasets`]) behind one dependency. See the repository README for a
//! guided tour and `examples/` for runnable entry points.

pub use mwc_baselines as baselines;
pub use mwc_core as core;
pub use mwc_datasets as datasets;
pub use mwc_graph as graph;
pub use mwc_lp as lp;

/// Commonly used items, for `use wiener_connector::prelude::*`.
pub mod prelude {
    pub use mwc_core::{
        ApproxWienerSteiner, ApproxWsqConfig, Connector, WienerSteiner, WsqConfig,
    };
    pub use mwc_graph::{Graph, GraphBuilder, InducedSubgraph, NodeId};
}
