//! Vendored stand-in for the [`rand`](https://crates.io/crates/rand) crate
//! (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small surface this project actually uses:
//!
//! * [`rngs::StdRng`] — seedable, portable, deterministic (xoshiro256++
//!   seeded through SplitMix64, not the upstream ChaCha12 — sequences
//!   differ from the real crate, which only matters to tests asserting
//!   exact draws, of which there are none);
//! * [`Rng::gen_range`] over integer and float ranges (inclusive and
//!   exclusive), [`Rng::gen`], [`Rng::gen_bool`];
//! * [`SeedableRng::seed_from_u64`];
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! Sampling a range uses the widening-multiply method, which keeps the
//! modulo bias below 2⁻⁶⁴ — indistinguishable for test workloads.

#![warn(missing_docs)]

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range` (e.g. `rng.gen_range(0..10)`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a value of `T` from its standard distribution (uniform unit
    /// interval for floats, uniform bits for integers, fair coin for bool).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait SampleStandard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening-multiply bounded sample: uniform in `[0, span)`.
#[inline]
fn bounded(rng_word: u64, span: u128) -> u128 {
    (rng_word as u128 * span) >> 64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as SampleStandard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as SampleStandard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna).
    ///
    /// Not the upstream `StdRng` (ChaCha12) — sequences differ from the
    /// real crate, but all project uses are seeded property tests and
    /// generators that only rely on determinism and uniformity.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of the upstream `SliceRandom` extension trait.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = Rng::gen_range(rng, 0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(Rng::gen_range(rng, 0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.5..4.0f64);
            assert!((-2.5..4.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
