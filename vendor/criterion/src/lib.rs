//! Vendored stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness (API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the surface its benches use: [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`Throughput`],
//! `sample_size`, [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis, each benchmark is warmed
//! up once and then timed over `sample_size` iterations; the mean, min,
//! and max per-iteration wall time are printed in a fixed-width table.
//! Good enough to compare orders of magnitude (the amortization benches),
//! not for detecting single-digit-percent regressions.
//!
//! Set `CRITERION_SHIM_SAMPLES` to override every group's sample size
//! (e.g. `CRITERION_SHIM_SAMPLES=1` for a smoke run).

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n── bench group: {name} ──");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: default_samples(10),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), default_samples(10), None, routine);
    }
}

fn default_samples(fallback: usize) -> usize {
    std::env::var("CRITERION_SHIM_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(fallback)
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = default_samples(n);
        self
    }

    /// Sets an (ignored beyond reporting) measurement-time hint.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares the work per iteration, enabling a throughput column.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs `routine` as a benchmark of this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut routine);
        self
    }

    /// Runs `routine` with a borrowed input as a benchmark of this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, |b| {
            routine(b, input)
        });
        self
    }

    /// Ends the group (upstream writes reports here; the shim is a no-op).
    pub fn finish(&mut self) {}
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Per-iteration work declaration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures; handed to every benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once for warm-up, then `sample_size` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut routine: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: sample_size.max(1),
    };
    routine(&mut b);
    if b.samples.is_empty() {
        eprintln!("{label:<56} (no samples — routine never called iter)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().unwrap();
    let max = *b.samples.iter().max().unwrap();
    let tput = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    eprintln!(
        "{label:<56} mean {:>12?}  min {:>12?}  max {:>12?}{tput}",
        mean, min, max
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.sample_size(3)
            .throughput(Throughput::Elements(10))
            .bench_function("f", |b| b.iter(|| black_box(2 * 2)))
            .bench_with_input(BenchmarkId::new("g", 5), &5u32, |b, &x| {
                b.iter(|| black_box(x * x))
            });
        g.finish();
        assert_eq!(BenchmarkId::new("a", 1).to_string(), "a/1");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
