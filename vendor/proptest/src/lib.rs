//! Vendored stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate (API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the surface its property tests use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`strategy::Just`], `any::<T>()`,
//! `bool::ANY`, and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports the case number and the
//!   panic message, not a minimized input. Tests are reproducible because
//!   the per-test RNG is seeded from the test's module path and name.
//! * Rejection via [`prop_assume!`] skips the case without replacement.

#![warn(missing_docs)]

/// Test-runner plumbing: configuration, RNG, and case-level errors.
pub mod test_runner {
    use rand::{RngCore, SeedableRng};

    /// Run configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: skip the case.
        Reject,
        /// `prop_assert*!` failed: fail the test.
        Fail(String),
    }

    /// Deterministic per-test RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        /// Seeds from the test's fully qualified name (FNV-1a hash), so
        /// every `cargo test` run sees the same sequence.
        pub fn deterministic(test_name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(rand::rngs::StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical full-domain strategy (see [`any`]).
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating arbitrary values of `T` (see [`any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`: `any::<u64>()` etc.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` values (see [`vec`]).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    /// A fair coin.
    pub const ANY: AnyBool = AnyBool;
}

/// Common imports: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a [`proptest!`] body; on failure the case
/// (and test) fails with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0usize..100, (a, b) in (any::<u32>(), any::<u32>())) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            let ($($pat,)+) = (
                                $( $crate::strategy::Strategy::generate(&($strat), &mut rng), )+
                            );
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!("property failed at case {case}: {msg}"),
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..50).prop_flat_map(|n| (Just(n), 0usize..n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn flat_map_dependency_holds((n, k) in pair()) {
            prop_assert!(k < n);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(crate::strategy::any::<u32>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
