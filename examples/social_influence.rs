//! Social influence analysis: the §7 Twitter #kdd2014 case study, plus a
//! head-to-head with the baselines.
//!
//! Cross-community Twitter users are connected by a minimum Wiener
//! connector that recruits the graph's influencers (`kdnuggets`,
//! `drewconway` — the top-mentioned users of the real dataset). The same
//! query given to the community-search baselines returns orders of
//! magnitude more users.
//!
//! Run with: `cargo run --release --example social_influence`

use wiener_connector::datasets::twitter;
use wiener_connector::engine;

fn main() {
    let tw = twitter::kdd2014_network();
    let g = &tw.network.graph;
    println!(
        "#kdd2014 mention graph: {} users, {} mention edges, 10 communities",
        g.num_nodes(),
        g.num_edges()
    );

    // One engine serves every query and method below.
    let engine = engine(g);

    for (i, q_labels) in twitter::figure7_queries().iter().enumerate() {
        println!("\n=== query {} ===", i + 1);
        let query = tw.network.ids_of(q_labels);
        println!("query users: {q_labels:?}");
        let comms: Vec<u32> = query
            .iter()
            .map(|&v| tw.membership[v as usize] + 1)
            .collect();
        println!("their communities: {comms:?}");

        let solution = engine.solve("ws-q", &query).expect("connected graph");
        println!(
            "\nminimum Wiener connector ({} users):",
            solution.connector.len()
        );
        for &v in solution.connector.vertices() {
            let tag = if query.contains(&v) { "query" } else { "added" };
            println!(
                "  @{:<18} G{:<2} degree {:>3}  [{tag}]",
                tw.network.label(v),
                tw.membership[v as usize] + 1,
                g.degree(v)
            );
        }

        // Compare against the baselines on solution size (Table 3's story).
        println!("\nmethod comparison (solution size | Wiener index):");
        for name in wiener_connector::baselines::PAPER_METHODS {
            match engine.solve(name, &query) {
                Ok(r) => println!(
                    "  {:<5} {:>6} vertices | W = {}",
                    name,
                    r.connector.len(),
                    r.wiener_index
                ),
                Err(e) => println!("  {:<5} failed: {e}", name),
            }
        }
    }
}
