//! Social influence analysis: the §7 Twitter #kdd2014 case study, plus a
//! head-to-head with the baselines.
//!
//! Cross-community Twitter users are connected by a minimum Wiener
//! connector that recruits the graph's influencers (`kdnuggets`,
//! `drewconway` — the top-mentioned users of the real dataset). The same
//! query given to the community-search baselines returns orders of
//! magnitude more users.
//!
//! Run with: `cargo run --release --example social_influence`

use wiener_connector::baselines::Method;
use wiener_connector::core::WienerSteiner;
use wiener_connector::datasets::twitter;

fn main() {
    let tw = twitter::kdd2014_network();
    let g = &tw.network.graph;
    println!(
        "#kdd2014 mention graph: {} users, {} mention edges, 10 communities",
        g.num_nodes(),
        g.num_edges()
    );

    for (i, q_labels) in twitter::figure7_queries().iter().enumerate() {
        println!("\n=== query {} ===", i + 1);
        let query = tw.network.ids_of(q_labels);
        println!("query users: {q_labels:?}");
        let comms: Vec<u32> = query
            .iter()
            .map(|&v| tw.membership[v as usize] + 1)
            .collect();
        println!("their communities: {comms:?}");

        let solution = WienerSteiner::new(g)
            .solve(&query)
            .expect("connected graph");
        println!(
            "\nminimum Wiener connector ({} users):",
            solution.connector.len()
        );
        for &v in solution.connector.vertices() {
            let tag = if query.contains(&v) { "query" } else { "added" };
            println!(
                "  @{:<18} G{:<2} degree {:>3}  [{tag}]",
                tw.network.label(v),
                tw.membership[v as usize] + 1,
                g.degree(v)
            );
        }

        // Compare against the baselines on solution size (Table 3's story).
        println!("\nmethod comparison (solution size | Wiener index):");
        for m in Method::ALL {
            match m.run(g, &query) {
                Ok(c) => {
                    let w = c.wiener_index(g).unwrap_or(u64::MAX);
                    println!("  {:<5} {:>6} vertices | W = {w}", m.name(), c.len());
                }
                Err(e) => println!("  {:<5} failed: {e}", m.name()),
            }
        }
    }
}
