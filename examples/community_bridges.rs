//! Structural holes: connectors across communities recruit bridge vertices.
//!
//! The paper's introduction argues that when query vertices span several
//! communities, the minimum Wiener connector recruits vertices "incident
//! to bridges" — the actors spanning structural holes, prime targets for
//! blocking rumors or epidemics. This example makes that claim checkable
//! end to end on a synthetic social network:
//!
//! 1. generate a planted-partition graph (4 communities);
//! 2. rediscover the communities with Clauset–Newman–Moore (as the §7
//!    case study does);
//! 3. query one vertex per community;
//! 4. verify the connector's *added* vertices have far higher betweenness
//!    centrality than average — they are the bridges.
//!
//! Run with: `cargo run --release --example community_bridges`

use rand::SeedableRng;
use wiener_connector::graph::community::{cnm, communities_spanned, CnmStop};
use wiener_connector::graph::connectivity;
use wiener_connector::graph::generators::sbm;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // A 4-community social network: dense inside, sparse across.
    let pp = sbm::planted_partition(&[50, 50, 50, 50], 0.3, 0.01, &mut rng);
    let (g, mapping) = connectivity::largest_component_graph(&pp.graph).expect("connected core");
    let membership: Vec<u32> = mapping
        .iter()
        .map(|&old| pp.membership[old as usize])
        .collect();
    println!(
        "planted-partition graph: {} vertices, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    // Rediscover the communities (the paper's §7 pipeline uses CNM).
    let clustering = cnm(&g, CnmStop::PeakModularity);
    println!(
        "CNM finds {} communities (modularity {:.3})",
        clustering.num_communities, clustering.modularity
    );

    // One query vertex per *planted* community: a cross-community query.
    let mut q = Vec::new();
    for c in 0..4u32 {
        if let Some(v) = membership.iter().position(|&m| m == c) {
            q.push(v as u32);
        }
    }
    println!(
        "query {:?} spans {} CNM communities",
        q,
        communities_spanned(&clustering.membership, &q)
    );

    let engine = wiener_connector::engine(&g);
    let solution = engine.solve("ws-q", &q).expect("solve");
    println!(
        "\nminimum Wiener connector: {} vertices, W = {}",
        solution.connector.len(),
        solution.wiener_index
    );

    // The added vertices should be bridges: compare their betweenness
    // against the graph average (the engine caches the vector).
    let bc = engine.betweenness();
    let avg: f64 = bc.iter().sum::<f64>() / bc.len() as f64;
    println!("\n  vertex  community  betweenness (graph avg {:.4})", avg);
    let mut added_bc = Vec::new();
    for &v in solution.connector.vertices() {
        let tag = if q.contains(&v) { "query" } else { "ADDED" };
        let b = bc[v as usize];
        if !q.contains(&v) {
            added_bc.push(b);
        }
        println!(
            "  {tag} {v:>4}  G{}         {b:.4}",
            clustering.membership[v as usize] + 1
        );
    }
    let added_avg = added_bc.iter().sum::<f64>() / added_bc.len().max(1) as f64;
    println!(
        "\nadded vertices average betweenness: {:.4} ({:.0}x the graph average)",
        added_avg,
        added_avg / avg.max(1e-12)
    );
    assert!(
        added_avg > avg,
        "connector should recruit above-average-centrality vertices"
    );
    println!("=> the connector recruited the structural-hole spanners, as §1 predicts.");
}
