//! Quickstart: find a minimum Wiener connector on Zachary's karate club.
//!
//! Reproduces the paper's Figure 1 scenario: query vertices drawn from the
//! two factions of the club are connected by a small subgraph that
//! recruits the faction leaders (vertices 1 and 34 in the paper's
//! numbering) and the bridge vertex 32.
//!
//! Run with: `cargo run --release --example quickstart`

use wiener_connector::graph::generators::karate::{from_paper_ids, karate_club, karate_factions};

fn main() {
    let graph = karate_club();
    println!(
        "karate club: {} vertices, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Build the engine once; it serves any number of queries and methods.
    let engine = wiener_connector::engine(&graph);

    // Figure 1 (left): query vertices spanning both factions (paper ids).
    let query = from_paper_ids(&[12, 25, 26, 30]);
    let solution = engine
        .solve("ws-q", &query)
        .expect("karate club is connected");

    println!("\nquery (paper ids): {:?}", paper_ids(&query));
    println!(
        "connector (paper ids): {:?}",
        paper_ids(solution.connector.vertices())
    );
    println!("Wiener index: {}", solution.wiener_index);
    println!(
        "connector size: {} ({} added vertices, solved in {:.1} ms)",
        solution.connector.len(),
        solution.connector.len() - query.len(),
        solution.seconds * 1e3
    );

    // The added vertices are central: report their betweenness rank,
    // using the engine's cached betweenness vector.
    let bc = engine.betweenness();
    let factions = karate_factions();
    let mut rank: Vec<usize> = (0..graph.num_nodes()).collect();
    rank.sort_by(|&a, &b| bc[b].total_cmp(&bc[a]));
    println!("\nadded vertices (paper id, faction, betweenness rank of 34):");
    for &v in solution.connector.vertices() {
        if !query.contains(&v) {
            let pos = rank.iter().position(|&x| x == v as usize).unwrap();
            println!(
                "  vertex {:>2}  faction {}  bc-rank #{}",
                v + 1,
                factions[v as usize],
                pos + 1
            );
        }
    }
}

fn paper_ids(vs: &[u32]) -> Vec<u32> {
    vs.iter().map(|&v| v + 1).collect()
}
