//! Epidemic monitoring: which people should we watch, given known cases?
//!
//! The paper's introduction motivates the problem with exactly this
//! scenario: "given a set of patients infected with a viral disease, which
//! other people should we monitor?" When the infected individuals belong
//! to *different* social communities, the minimum Wiener connector
//! surfaces the structural-hole vertices — the people through whom the
//! infection must pass to jump communities, and hence the best monitoring
//! (or quarantine) targets.
//!
//! Run with: `cargo run --release --example epidemic_monitoring`

use rand::SeedableRng;

use wiener_connector::datasets::workloads;
use wiener_connector::graph::connectivity::largest_component_graph;
use wiener_connector::graph::generators::sbm::planted_partition_by_degree;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2020);

    // A contact network: 4 communities (households/workplaces/towns) of
    // 250 people, ~8 contacts inside the community and ~1 outside.
    let pp = planted_partition_by_degree(1000, 4, 8.0, 1.0, &mut rng);
    let (graph, mapping) = largest_component_graph(&pp.graph).expect("non-empty");
    let membership: Vec<u32> = mapping.iter().map(|&v| pp.membership[v as usize]).collect();
    println!(
        "contact network: {} people, {} contacts, 4 communities",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Five confirmed cases, each from a different community where possible.
    let outbreak = workloads::different_communities_query(&graph, &membership, 5, &mut rng)
        .expect("network has communities");
    println!("\nconfirmed cases (person, community):");
    for &p in &outbreak.vertices {
        println!("  person {:>4}  community {}", p, membership[p as usize]);
    }
    println!(
        "average pairwise distance among cases: {:.2}",
        outbreak.avg_distance
    );

    let engine = wiener_connector::engine(&graph);
    let solution = engine
        .solve("ws-q", &outbreak.vertices)
        .expect("cases live in one component");

    let bc = engine.betweenness();
    let monitored: Vec<u32> = solution
        .connector
        .vertices()
        .iter()
        .copied()
        .filter(|v| !outbreak.vertices.contains(v))
        .collect();

    println!("\nmonitoring set: {} additional people", monitored.len());
    let avg_bc_all: f64 = bc.iter().sum::<f64>() / bc.len() as f64;
    println!("(network-wide average betweenness: {avg_bc_all:.5})");
    println!("person  community  betweenness");
    for &p in &monitored {
        println!(
            "  {:>4}  {:>9}  {:.5}  ({}x average)",
            p,
            membership[p as usize],
            bc[p as usize],
            (bc[p as usize] / avg_bc_all).round()
        );
    }
    println!(
        "\nWiener index of the monitored cluster: {}",
        solution.wiener_index
    );
    println!(
        "interpretation: these {} people sit on the shortest transmission \
         routes between the known cases; monitoring them covers the \
         inter-community bridges.",
        monitored.len()
    );
}
