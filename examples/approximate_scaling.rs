//! Batch querying a large graph with the approximate-distance solver.
//!
//! §6.6 of the paper sketches how ws-q scales: parallelize over roots,
//! and switch to approximate shortest-distance computations when exact
//! per-root BFS becomes the bottleneck. This example runs that pipeline:
//! build a landmark distance oracle *once* over a 100k-vertex power-law
//! graph, then answer a stream of connector queries against it, spot-
//! checking quality against the exact solver.
//!
//! Run with: `cargo run --release --example approximate_scaling`

use std::time::Instant;

use rand::{Rng, SeedableRng};
use wiener_connector::core::{ApproxWienerSteiner, ApproxWsqConfig, WienerSteiner};
use wiener_connector::graph::generators::barabasi_albert;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let n = 100_000usize;
    let g = barabasi_albert(n, 3, &mut rng);
    println!("power-law graph: {} vertices, {} edges", g.num_nodes(), g.num_edges());

    // One-off oracle build: 16 hub landmarks, 16 BFS traversals.
    let t0 = Instant::now();
    let approx = ApproxWienerSteiner::build(&g, ApproxWsqConfig::default(), &mut rng);
    println!(
        "oracle built in {:.2}s ({} landmarks)",
        t0.elapsed().as_secs_f64(),
        approx.oracle().num_landmarks()
    );

    // A stream of queries.
    let queries: Vec<Vec<u32>> = (0..5)
        .map(|_| (0..8).map(|_| rng.gen_range(0..n as u32)).collect())
        .collect();

    let exact = WienerSteiner::new(&g);
    println!("\n  query   exact W (s)        approx W (s)      ratio");
    for (i, q) in queries.iter().enumerate() {
        let t = Instant::now();
        let we = exact.solve(q).expect("exact solve");
        let te = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let wa = approx.solve(q).expect("approx solve");
        let ta = t.elapsed().as_secs_f64();
        println!(
            "  #{i}      {:>6} ({te:.2})    {:>6} ({ta:.2})    {:.3}",
            we.wiener_index,
            wa.wiener_index,
            wa.wiener_index as f64 / we.wiener_index.max(1) as f64
        );
        assert!(wa.connector.contains_all(q));
    }
    println!("\nratios near 1.0: approximate distances preserve connector quality,");
    println!("while the oracle's scans replace per-root BFS — the piece that matters");
    println!("once the graph no longer fits in memory (§6.6).");
}
