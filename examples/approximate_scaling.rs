//! Batch querying a large graph with the approximate-distance solver.
//!
//! §6.6 of the paper sketches how ws-q scales: parallelize over roots,
//! and switch to approximate shortest-distance computations when exact
//! per-root BFS becomes the bottleneck. This example runs that pipeline:
//! build a landmark distance oracle *once* over a 100k-vertex power-law
//! graph, then answer a stream of connector queries against it, spot-
//! checking quality against the exact solver.
//!
//! Run with: `cargo run --release --example approximate_scaling`

use std::time::Instant;

use rand::{Rng, SeedableRng};
use wiener_connector::graph::generators::barabasi_albert;
use wiener_connector::prelude::QueryOptions;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let n = 100_000usize;
    let g = barabasi_albert(n, 3, &mut rng);
    println!(
        "power-law graph: {} vertices, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    // Build the engine once per graph. The landmark oracle behind
    // "ws-q-approx" (16 hub landmarks, 16 BFS traversals) is built lazily
    // and shared by every approximate solve; warm it explicitly to show
    // the one-off cost.
    let engine = wiener_connector::engine(&g);
    let t0 = Instant::now();
    let landmarks = engine.landmark_oracle().num_landmarks();
    println!(
        "oracle built in {:.2}s ({landmarks} landmarks)",
        t0.elapsed().as_secs_f64()
    );

    // A stream of queries, served as one parallel batch per method.
    let queries: Vec<Vec<u32>> = (0..5)
        .map(|_| (0..8).map(|_| rng.gen_range(0..n as u32)).collect())
        .collect();
    let opts = QueryOptions::default();
    let exact_reports = engine.solve_batch("ws-q", &queries, &opts);
    let approx_reports = engine.solve_batch("ws-q-approx", &queries, &opts);

    println!("\n  query   exact W (s)        approx W (s)      ratio");
    for (i, (we, wa)) in exact_reports.iter().zip(&approx_reports).enumerate() {
        let we = we.as_ref().expect("exact solve");
        let wa = wa.as_ref().expect("approx solve");
        println!(
            "  #{i}      {:>6} ({:.2})    {:>6} ({:.2})    {:.3}",
            we.wiener_index,
            we.seconds,
            wa.wiener_index,
            wa.seconds,
            wa.wiener_index as f64 / we.wiener_index.max(1) as f64
        );
        assert!(wa.connector.contains_all(&queries[i]));
    }
    println!("\nratios near 1.0: approximate distances preserve connector quality,");
    println!("while the oracle's scans replace per-root BFS — the piece that matters");
    println!("once the graph no longer fits in memory (§6.6).");
}
