//! Protein pathway discovery: the §7 PPI case study.
//!
//! Given proteins of interest (queried from two disease modules), the
//! minimum Wiener connector recruits the hub proteins that link them —
//! the paper's Figure 6 shows {BMP1, JAK2, PSEN, SLC6A4} being connected
//! through {p53, HSP90, GSK3B, SNCA}, each next-hop matching a
//! literature-verified disease association.
//!
//! Run with: `cargo run --release --example protein_pathways`

use wiener_connector::datasets::ppi;

fn main() {
    let net = ppi::ppi_network();
    println!(
        "synthetic PPI network: {} proteins, {} interactions",
        net.graph.num_nodes(),
        net.graph.num_edges()
    );

    let query = ppi::disease_query(&net);
    println!("\nquery proteins: {:?}", net.render(&query));

    let solution = wiener_connector::engine(&net.graph)
        .solve("ws-q", &query)
        .expect("PPI network is connected");

    println!(
        "\nminimum Wiener connector ({} proteins):",
        solution.connector.len()
    );
    for &p in solution.connector.vertices() {
        let role = if query.contains(&p) {
            "query"
        } else {
            "connector"
        };
        println!(
            "  {:<10} [{role}]  degree {}",
            net.label(p),
            net.graph.degree(p)
        );
    }
    println!("Wiener index: {}", solution.wiener_index);

    // Next-hop analysis, as in the paper: for each query protein, which
    // connector protein is its neighbor inside the solution?
    let sub = solution
        .connector
        .induced(&net.graph)
        .expect("valid connector");
    println!("\nnext-hop analysis (query protein → connector neighbors):");
    for &qp in &query {
        let local = sub.to_local(qp).expect("query in connector");
        let hops: Vec<&str> = sub
            .graph()
            .neighbors(local)
            .iter()
            .map(|&nb| net.label(sub.to_global(nb)))
            .filter(|l| !ppi::QUERIES.contains(l))
            .collect();
        println!("  {:<10} → {:?}", net.label(qp), hops);
    }
    println!(
        "\ninterpretation: each query protein reaches the rest of the query \
         set through a high-degree hub — the connector proposes the \
         pathway proteins worth investigating."
    );
}
