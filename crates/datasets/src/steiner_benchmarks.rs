//! SteinLib-style benchmark instances with predefined terminal sets
//! (§6.5, Figure 4).
//!
//! The paper uses `puc` (25 hard instances on small structured graphs,
//! many hypercube-based, `|Q| ∈ [8, 2048]`) and `vienna` (85 real-world
//! telecommunication/road instances, `|V| ∈ [1991, 8755]`,
//! `|Q| ∈ [50, ≈5k]`). SteinLib is a curated external archive, so this
//! module generates instances of the same two shapes: hypercubes with
//! random terminal sets (`puc`-like) and perforated road grids with
//! diagonals (`vienna`-like), both deterministic in the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mwc_graph::connectivity::largest_component_graph;
use mwc_graph::generators::structured;
use mwc_graph::{Graph, GraphBuilder, NodeId};

/// One benchmark instance: a graph plus its predefined terminal set.
#[derive(Debug, Clone)]
pub struct BenchmarkInstance {
    /// Instance name (e.g. `puc-d08-q032-0`).
    pub name: String,
    /// The graph.
    pub graph: Graph,
    /// Terminal / query set (distinct vertices).
    pub terminals: Vec<NodeId>,
}

/// Generates the `puc`-like suite: hypercubes of dimension 6–10 with
/// terminal counts sweeping 8..256, several instances per configuration
/// (25 instances total, matching the original suite's size).
pub fn puc_like(seed: u64) -> Vec<BenchmarkInstance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let configs: [(u32, &[usize]); 5] = [
        (6, &[8, 16]),
        (7, &[8, 16, 32]),
        (8, &[16, 32, 64]),
        (9, &[32, 64, 128]),
        (10, &[64, 128, 256, 512]),
    ];
    for (dim, term_counts) in configs {
        let graph = structured::hypercube(dim);
        for &q in term_counts {
            // Two instances per (dim, |Q|) for the larger cubes, one for the
            // small ones — 25 instances total, like the original suite.
            let copies = if dim <= 7 { 1 } else { 2 };
            for copy in 0..copies {
                let terminals = sample_terminals(&graph, q, &mut rng);
                out.push(BenchmarkInstance {
                    name: format!("puc-d{dim:02}-q{q:03}-{copy}"),
                    graph: graph.clone(),
                    terminals,
                });
            }
        }
    }
    debug_assert_eq!(out.len(), 25);
    out
}

/// Generates the `vienna`-like suite: road-style grids with diagonals,
/// random perforation (removed blocks), and long-range shortcut edges,
/// sized `|V| ∈ ~[2000, 9000]` with `|Q| ∈ [50, 500]`.
///
/// `count` instances are produced (the original suite has 85; the harness
/// default uses fewer for quick runs).
pub fn vienna_like(count: usize, seed: u64) -> Vec<BenchmarkInstance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let rows = rng.gen_range(45..95);
        let cols = rng.gen_range(45..95);
        let graph = perforated_grid(rows, cols, 0.08, 0.01, &mut rng);
        let max_q = (graph.num_nodes() / 12).max(51);
        let q = rng.gen_range(50..=max_q.min(500));
        let terminals = sample_terminals(&graph, q, &mut rng);
        out.push(BenchmarkInstance {
            name: format!("vienna-{i:03}-n{}-q{q}", graph.num_nodes()),
            graph,
            terminals,
        });
    }
    out
}

/// A grid with diagonals, `hole_fraction` of vertices removed (city
/// blocks), and a few long-range shortcuts (arterial roads); returns the
/// largest connected component.
fn perforated_grid<R: Rng>(
    rows: usize,
    cols: usize,
    hole_fraction: f64,
    shortcut_fraction: f64,
    rng: &mut R,
) -> Graph {
    let base = structured::grid(rows, cols, true);
    let n = base.num_nodes();
    let keep: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() >= hole_fraction).collect();
    let mut b = GraphBuilder::with_capacity(n, base.num_edges());
    for (u, v) in base.edges() {
        if keep[u as usize] && keep[v as usize] {
            b.add_edge_unchecked(u, v);
        }
    }
    // Long-range shortcuts between surviving vertices.
    let shortcuts = (n as f64 * shortcut_fraction) as usize;
    for _ in 0..shortcuts {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if keep[u as usize] && keep[v as usize] {
            b.add_edge_unchecked(u, v);
        }
    }
    largest_component_graph(&b.build())
        .expect("grid is non-empty")
        .0
}

/// `count` distinct random terminals.
fn sample_terminals<R: Rng>(g: &Graph, count: usize, rng: &mut R) -> Vec<NodeId> {
    let n = g.num_nodes();
    assert!(count <= n, "terminal count exceeds graph size");
    let mut chosen: Vec<NodeId> = Vec::with_capacity(count);
    let mut used = vec![false; n];
    while chosen.len() < count {
        let v = rng.gen_range(0..n as NodeId);
        if !used[v as usize] {
            used[v as usize] = true;
            chosen.push(v);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::connectivity::is_connected;

    #[test]
    fn puc_suite_has_25_valid_instances() {
        let suite = puc_like(7);
        assert_eq!(suite.len(), 25);
        for inst in &suite {
            assert!(is_connected(&inst.graph), "{} disconnected", inst.name);
            assert!(inst.terminals.len() >= 8);
            let mut t = inst.terminals.clone();
            t.sort_unstable();
            t.dedup();
            assert_eq!(
                t.len(),
                inst.terminals.len(),
                "{} duplicate terminals",
                inst.name
            );
            for &v in &inst.terminals {
                assert!((v as usize) < inst.graph.num_nodes());
            }
        }
    }

    #[test]
    fn puc_dimensions_span_64_to_1024_vertices() {
        let suite = puc_like(7);
        let min = suite.iter().map(|i| i.graph.num_nodes()).min().unwrap();
        let max = suite.iter().map(|i| i.graph.num_nodes()).max().unwrap();
        assert_eq!(min, 64);
        assert_eq!(max, 1024);
    }

    #[test]
    fn vienna_suite_matches_paper_ranges() {
        let suite = vienna_like(10, 13);
        assert_eq!(suite.len(), 10);
        for inst in &suite {
            assert!(is_connected(&inst.graph), "{} disconnected", inst.name);
            let n = inst.graph.num_nodes();
            assert!((1500..=9500).contains(&n), "{}: n = {n}", inst.name);
            let q = inst.terminals.len();
            assert!((50..=500).contains(&q), "{}: |Q| = {q}", inst.name);
        }
    }

    #[test]
    fn suites_are_deterministic() {
        let a = vienna_like(3, 99);
        let b = vienna_like(3, 99);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.graph, y.graph);
            assert_eq!(x.terminals, y.terminals);
        }
    }

    #[test]
    fn grids_look_like_roads() {
        // Average degree between 3 and 8 (grid with diagonals, minus holes).
        let suite = vienna_like(3, 5);
        for inst in &suite {
            let avg = 2.0 * inst.graph.num_edges() as f64 / inst.graph.num_nodes() as f64;
            assert!((3.0..8.5).contains(&avg), "{}: avg degree {avg}", inst.name);
        }
    }
}
