//! SteinLib STP format I/O for benchmark instances.
//!
//! The paper's §6.5 benchmarks (`puc`, `vienna`) are distributed by
//! SteinLib (<http://steinlib.zib.de/>) in the STP text format. The
//! archive itself is not redistributable here, so the instances are
//! *generated* ([`crate::steiner_benchmarks`]) — but the format support
//! makes the harness interoperable: generated suites can be exported for
//! external Steiner solvers, and a user holding the real SteinLib files
//! can run the Figure 4 comparison on them unchanged.
//!
//! Supported subset (what `puc`/`vienna` instances use):
//!
//! ```text
//! 33D32945 STP File, STP Format Version 1.0
//! SECTION Comment … END        (free-form, preserved as `name`)
//! SECTION Graph
//!   Nodes n / Edges m / E u v w   (1-based vertex ids)
//! END
//! SECTION Terminals
//!   Terminals k / T t
//! END
//! EOF
//! ```
//!
//! Edge weights are parsed but collapsed to the unweighted graphs this
//! reproduction studies (the paper works on unweighted graphs; `puc`
//! instances are unit-weight already). A warning count of non-unit
//! weights is reported so silently-lossy reads cannot happen.

use std::fmt::Write as _;

use mwc_graph::{GraphBuilder, NodeId};

use crate::steiner_benchmarks::BenchmarkInstance;

/// The STP magic header line.
pub const STP_MAGIC: &str = "33D32945 STP File, STP Format Version 1.0";

/// Errors produced by the STP parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StpError {
    /// The first non-blank line is not the STP magic.
    BadMagic,
    /// A line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A vertex id was outside `1..=Nodes`.
    VertexOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending id.
        id: i64,
    },
    /// Required sections were missing (`Graph` and `Terminals`).
    MissingSection(&'static str),
}

impl std::fmt::Display for StpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StpError::BadMagic => write!(f, "missing STP magic header"),
            StpError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            StpError::VertexOutOfRange { line, id } => {
                write!(f, "line {line}: vertex id {id} out of range")
            }
            StpError::MissingSection(s) => write!(f, "missing SECTION {s}"),
        }
    }
}

impl std::error::Error for StpError {}

/// Outcome of a parse: the instance plus fidelity notes.
#[derive(Debug)]
pub struct StpParse {
    /// The parsed instance (unweighted; 0-based ids).
    pub instance: BenchmarkInstance,
    /// Number of edges whose declared weight differed from 1 (collapsed
    /// to unit weight on read).
    pub non_unit_weights: usize,
    /// Duplicate / self-loop edge lines dropped by the builder.
    pub dropped_edges: usize,
}

/// Parses an STP document from a string.
///
/// ```
/// use mwc_datasets::stp::{parse_stp, write_stp};
///
/// let suite = mwc_datasets::puc_like(1);
/// let text = write_stp(&suite[0]);
/// let parsed = parse_stp(&text).unwrap();
/// assert_eq!(parsed.instance.graph.num_edges(), suite[0].graph.num_edges());
/// ```
pub fn parse_stp(text: &str) -> Result<StpParse, StpError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));

    // Magic.
    let Some((_, first)) = lines.by_ref().find(|(_, l)| !l.is_empty()) else {
        return Err(StpError::BadMagic);
    };
    if !first.eq_ignore_ascii_case(STP_MAGIC) {
        return Err(StpError::BadMagic);
    }

    let mut name = String::from("stp-instance");
    let mut nodes: Option<usize> = None;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut declared_edges: Option<usize> = None;
    let mut terminals: Vec<NodeId> = Vec::new();
    let mut declared_terminals: Option<usize> = None;
    let mut non_unit = 0usize;
    let mut raw_edge_lines = 0usize;

    #[derive(PartialEq)]
    enum Section {
        None,
        Comment,
        Graph,
        Terminals,
        Other,
    }
    let mut section = Section::None;

    let check_vertex = |line: usize, id: i64, n: Option<usize>| -> Result<NodeId, StpError> {
        let n = n.ok_or(StpError::Malformed {
            line,
            reason: "edge/terminal before Nodes declaration".into(),
        })? as i64;
        if id < 1 || id > n {
            return Err(StpError::VertexOutOfRange { line, id });
        }
        Ok((id - 1) as NodeId)
    };

    for (lineno, line) in lines {
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let head = tokens.next().expect("non-empty line has a token");
        match section {
            Section::None => match head.to_ascii_uppercase().as_str() {
                "SECTION" => {
                    section = match tokens.next().map(|s| s.to_ascii_lowercase()).as_deref() {
                        Some("comment") => Section::Comment,
                        Some("graph") => Section::Graph,
                        Some("terminals") => Section::Terminals,
                        _ => Section::Other,
                    };
                }
                "EOF" => break,
                _ => {
                    return Err(StpError::Malformed {
                        line: lineno,
                        reason: format!("unexpected token {head:?} outside any section"),
                    })
                }
            },
            Section::Comment => match head.to_ascii_lowercase().as_str() {
                "end" => section = Section::None,
                "name" => {
                    let rest = line[head.len()..].trim().trim_matches('"');
                    if !rest.is_empty() {
                        name = rest.to_string();
                    }
                }
                _ => {} // Creator/Remark/Problem: preserved semantics not needed
            },
            Section::Graph => match head.to_ascii_lowercase().as_str() {
                "end" => section = Section::None,
                "nodes" => {
                    nodes = Some(parse_num(lineno, tokens.next())? as usize);
                }
                "edges" | "arcs" => {
                    declared_edges = Some(parse_num(lineno, tokens.next())? as usize);
                }
                "e" | "a" => {
                    let u = parse_num(lineno, tokens.next())?;
                    let v = parse_num(lineno, tokens.next())?;
                    // Weight is optional in some writers; default 1.
                    let w = match tokens.next() {
                        Some(t) => t.parse::<f64>().map_err(|_| StpError::Malformed {
                            line: lineno,
                            reason: format!("bad weight {t:?}"),
                        })?,
                        None => 1.0,
                    };
                    if (w - 1.0).abs() > 1e-12 {
                        non_unit += 1;
                    }
                    raw_edge_lines += 1;
                    edges.push((
                        check_vertex(lineno, u, nodes)?,
                        check_vertex(lineno, v, nodes)?,
                    ));
                }
                _ => {
                    return Err(StpError::Malformed {
                        line: lineno,
                        reason: format!("unknown Graph directive {head:?}"),
                    })
                }
            },
            Section::Terminals => match head.to_ascii_lowercase().as_str() {
                "end" => section = Section::None,
                "terminals" => {
                    declared_terminals = Some(parse_num(lineno, tokens.next())? as usize);
                }
                "t" => {
                    let t = parse_num(lineno, tokens.next())?;
                    terminals.push(check_vertex(lineno, t, nodes)?);
                }
                _ => {
                    return Err(StpError::Malformed {
                        line: lineno,
                        reason: format!("unknown Terminals directive {head:?}"),
                    })
                }
            },
            Section::Other => {
                if head.eq_ignore_ascii_case("end") {
                    section = Section::None;
                }
            }
        }
    }

    let n = nodes.ok_or(StpError::MissingSection("Graph"))?;
    if terminals.is_empty() && declared_terminals.is_none() {
        return Err(StpError::MissingSection("Terminals"));
    }
    if let Some(k) = declared_terminals {
        if k != terminals.len() {
            return Err(StpError::Malformed {
                line: 0,
                reason: format!(
                    "Terminals declares {k} but {} T lines found",
                    terminals.len()
                ),
            });
        }
    }
    if let Some(m) = declared_edges {
        if m != raw_edge_lines {
            return Err(StpError::Malformed {
                line: 0,
                reason: format!("Edges declares {m} but {raw_edge_lines} E lines found"),
            });
        }
    }

    let mut builder = GraphBuilder::with_capacity(n, edges.len());
    for &(u, v) in &edges {
        // Ids were range-checked during parsing.
        builder.add_edge_unchecked(u, v);
    }
    let graph = builder.build();
    let dropped = raw_edge_lines - graph.num_edges();
    terminals.sort_unstable();
    terminals.dedup();

    Ok(StpParse {
        instance: BenchmarkInstance {
            name,
            graph,
            terminals,
        },
        non_unit_weights: non_unit,
        dropped_edges: dropped,
    })
}

fn parse_num(line: usize, token: Option<&str>) -> Result<i64, StpError> {
    let t = token.ok_or(StpError::Malformed {
        line,
        reason: "missing number".into(),
    })?;
    t.parse::<i64>().map_err(|_| StpError::Malformed {
        line,
        reason: format!("bad number {t:?}"),
    })
}

/// Serializes an instance as an STP document (unit weights, 1-based ids).
pub fn write_stp(instance: &BenchmarkInstance) -> String {
    let g = &instance.graph;
    let mut out = String::with_capacity(64 + 16 * g.num_edges());
    out.push_str(STP_MAGIC);
    out.push_str("\n\nSECTION Comment\n");
    let _ = writeln!(out, "Name    \"{}\"", instance.name);
    out.push_str("Creator \"mwc-datasets\"\n");
    out.push_str("Remark  \"generated stand-in instance (unit weights)\"\n");
    out.push_str("END\n\nSECTION Graph\n");
    let _ = writeln!(out, "Nodes {}", g.num_nodes());
    let _ = writeln!(out, "Edges {}", g.num_edges());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "E {} {} 1", u + 1, v + 1);
    }
    out.push_str("END\n\nSECTION Terminals\n");
    let _ = writeln!(out, "Terminals {}", instance.terminals.len());
    for &t in &instance.terminals {
        let _ = writeln!(out, "T {}", t + 1);
    }
    out.push_str("END\n\nEOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steiner_benchmarks::{puc_like, vienna_like};

    #[test]
    fn roundtrip_preserves_generated_instances() {
        for inst in puc_like(7).into_iter().take(3).chain(vienna_like(3, 7)) {
            let text = write_stp(&inst);
            let parsed = parse_stp(&text).expect("roundtrip parse");
            assert_eq!(parsed.instance.name, inst.name);
            assert_eq!(parsed.instance.graph.num_nodes(), inst.graph.num_nodes());
            assert_eq!(parsed.instance.graph.num_edges(), inst.graph.num_edges());
            let mut terms = inst.terminals.clone();
            terms.sort_unstable();
            assert_eq!(parsed.instance.terminals, terms);
            assert_eq!(parsed.non_unit_weights, 0);
            assert_eq!(parsed.dropped_edges, 0);
            // Edge sets equal.
            let a: Vec<_> = inst.graph.edges().collect();
            let b: Vec<_> = parsed.instance.graph.edges().collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn parses_handwritten_document() {
        let text = r#"
33D32945 STP File, STP Format Version 1.0

SECTION Comment
Name "tiny"
Creator "by hand"
END

SECTION Graph
Nodes 4
Edges 4
E 1 2 1
E 2 3 1
E 3 4 1
E 4 1 1
END

SECTION Terminals
Terminals 2
T 1
T 3
END

EOF
"#;
        let parsed = parse_stp(text).unwrap();
        assert_eq!(parsed.instance.name, "tiny");
        assert_eq!(parsed.instance.graph.num_nodes(), 4);
        assert_eq!(parsed.instance.graph.num_edges(), 4);
        assert_eq!(parsed.instance.terminals, vec![0, 2]);
    }

    #[test]
    fn non_unit_weights_are_counted_not_silently_lost() {
        let text = format!(
            "{STP_MAGIC}\nSECTION Graph\nNodes 3\nEdges 2\nE 1 2 5\nE 2 3 1\nEND\nSECTION Terminals\nTerminals 2\nT 1\nT 3\nEND\nEOF\n"
        );
        let parsed = parse_stp(&text).unwrap();
        assert_eq!(parsed.non_unit_weights, 1);
    }

    #[test]
    fn missing_weight_defaults_to_unit() {
        let text = format!(
            "{STP_MAGIC}\nSECTION Graph\nNodes 2\nEdges 1\nE 1 2\nEND\nSECTION Terminals\nTerminals 2\nT 1\nT 2\nEND\nEOF\n"
        );
        let parsed = parse_stp(&text).unwrap();
        assert_eq!(parsed.non_unit_weights, 0);
        assert_eq!(parsed.instance.graph.num_edges(), 1);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            parse_stp("not an stp file\n"),
            Err(StpError::BadMagic)
        ));
        assert!(matches!(parse_stp(""), Err(StpError::BadMagic)));
    }

    #[test]
    fn rejects_vertex_out_of_range() {
        let text = format!(
            "{STP_MAGIC}\nSECTION Graph\nNodes 3\nEdges 1\nE 1 9 1\nEND\nSECTION Terminals\nTerminals 1\nT 1\nEND\nEOF\n"
        );
        assert!(matches!(
            parse_stp(&text),
            Err(StpError::VertexOutOfRange { id: 9, .. })
        ));
        let text = format!(
            "{STP_MAGIC}\nSECTION Graph\nNodes 3\nEdges 1\nE 0 1 1\nEND\nSECTION Terminals\nTerminals 1\nT 1\nEND\nEOF\n"
        );
        assert!(matches!(
            parse_stp(&text),
            Err(StpError::VertexOutOfRange { id: 0, .. })
        ));
    }

    #[test]
    fn rejects_count_mismatches() {
        let text = format!(
            "{STP_MAGIC}\nSECTION Graph\nNodes 3\nEdges 2\nE 1 2 1\nEND\nSECTION Terminals\nTerminals 1\nT 1\nEND\nEOF\n"
        );
        assert!(matches!(parse_stp(&text), Err(StpError::Malformed { .. })));
        let text = format!(
            "{STP_MAGIC}\nSECTION Graph\nNodes 3\nEdges 1\nE 1 2 1\nEND\nSECTION Terminals\nTerminals 2\nT 1\nEND\nEOF\n"
        );
        assert!(matches!(parse_stp(&text), Err(StpError::Malformed { .. })));
    }

    #[test]
    fn rejects_missing_sections() {
        let text = format!("{STP_MAGIC}\nEOF\n");
        assert!(matches!(
            parse_stp(&text),
            Err(StpError::MissingSection("Graph"))
        ));
        let text = format!("{STP_MAGIC}\nSECTION Graph\nNodes 2\nEdges 1\nE 1 2 1\nEND\nEOF\n");
        assert!(matches!(
            parse_stp(&text),
            Err(StpError::MissingSection("Terminals"))
        ));
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let text = format!(
            "{STP_MAGIC}\nSECTION Presolve\nFixed 0\nEND\nSECTION Graph\nNodes 2\nEdges 1\nE 1 2 1\nEND\nSECTION Terminals\nTerminals 1\nT 2\nEND\nEOF\n"
        );
        let parsed = parse_stp(&text).unwrap();
        assert_eq!(parsed.instance.terminals, vec![1]);
    }

    #[test]
    fn duplicate_edges_and_self_loops_are_dropped_and_counted() {
        let text = format!(
            "{STP_MAGIC}\nSECTION Graph\nNodes 3\nEdges 4\nE 1 2 1\nE 2 1 1\nE 1 1 1\nE 2 3 1\nEND\nSECTION Terminals\nTerminals 1\nT 1\nEND\nEOF\n"
        );
        let parsed = parse_stp(&text).unwrap();
        assert_eq!(parsed.instance.graph.num_edges(), 2);
        assert_eq!(parsed.dropped_edges, 2);
    }
}
