//! Deterministic stand-ins for the paper's real-world graphs (Table 1).
//!
//! Each stand-in matches the original's vertex/edge counts and its
//! structural family: Barabási–Albert for the heavy-tailed
//! social/biological/web graphs, planted partitions for the graphs the
//! paper uses *because* they have (ground-truth) community structure
//! (football, dblp, youtube). The experiments compare five algorithms on
//! the same graph, so what must carry over is the modular small-world
//! shape, not the exact byte content — see DESIGN.md §3.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mwc_graph::connectivity::largest_component_graph;
use mwc_graph::generators::{holme_kim, sbm::planted_partition_by_degree};
use mwc_graph::Graph;

/// Generator family of a stand-in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Family {
    /// Holme–Kim preferential attachment (heavy-tailed degree) with triad
    /// formation tuned to approach the original's clustering coefficient.
    PowerLaw {
        /// The original dataset's average clustering coefficient
        /// (Table 1's `cc`), used to calibrate the triad-formation
        /// probability.
        clustering: f64,
    },
    /// Planted partition with ground-truth communities.
    Communities {
        /// Number of planted communities.
        num_communities: usize,
    },
}

/// Specification of one Table 1 stand-in.
#[derive(Debug, Clone, Copy)]
pub struct StandIn {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Original vertex count (Table 1's `|V|`).
    pub nodes: usize,
    /// Original edge count (Table 1's `|E|`).
    pub edges: usize,
    /// Generator family.
    pub family: Family,
    /// Whether the original ships ground-truth communities (marked `*`).
    pub ground_truth: bool,
}

/// The Table 1 datasets (excluding the SteinLib rows, which live in
/// [`crate::steiner_benchmarks`]).
pub const STAND_INS: &[StandIn] = &[
    StandIn {
        name: "football",
        nodes: 115,
        edges: 613,
        family: Family::Communities {
            num_communities: 12,
        },
        ground_truth: false,
    },
    StandIn {
        name: "jazz",
        nodes: 198,
        edges: 2742,
        family: Family::PowerLaw { clustering: 0.62 },
        ground_truth: false,
    },
    StandIn {
        name: "celegans",
        nodes: 453,
        edges: 2025,
        family: Family::PowerLaw { clustering: 0.65 },
        ground_truth: false,
    },
    StandIn {
        name: "email",
        nodes: 1133,
        edges: 5452,
        family: Family::PowerLaw { clustering: 0.22 },
        ground_truth: false,
    },
    StandIn {
        name: "yeast",
        nodes: 2224,
        edges: 6609,
        family: Family::PowerLaw { clustering: 0.14 },
        ground_truth: false,
    },
    StandIn {
        name: "oregon",
        nodes: 10670,
        edges: 22002,
        family: Family::PowerLaw { clustering: 0.30 },
        ground_truth: false,
    },
    StandIn {
        name: "astro",
        nodes: 18772,
        edges: 198110,
        family: Family::PowerLaw { clustering: 0.63 },
        ground_truth: false,
    },
    StandIn {
        name: "dblp",
        nodes: 317_080,
        edges: 1_049_866,
        family: Family::Communities {
            num_communities: 3000,
        },
        ground_truth: true,
    },
    StandIn {
        name: "youtube",
        nodes: 1_134_890,
        edges: 2_987_624,
        family: Family::Communities {
            num_communities: 5000,
        },
        ground_truth: true,
    },
    StandIn {
        name: "wiki",
        nodes: 2_394_385,
        edges: 5_021_410,
        family: Family::PowerLaw { clustering: 0.22 },
        ground_truth: false,
    },
    StandIn {
        name: "livejournal",
        nodes: 3_997_962,
        edges: 34_681_189,
        family: Family::PowerLaw { clustering: 0.28 },
        ground_truth: false,
    },
    StandIn {
        name: "twitter",
        nodes: 11_316_811,
        edges: 85_331_846,
        family: Family::PowerLaw { clustering: 0.09 },
        ground_truth: false,
    },
    StandIn {
        name: "dbpedia",
        nodes: 18_268_992,
        edges: 172_183_984,
        family: Family::PowerLaw { clustering: 0.17 },
        ground_truth: false,
    },
];

/// A generated stand-in: the graph plus ground-truth communities when the
/// family provides them. The graph is the largest connected component of
/// the raw generator output (the paper assumes connected inputs), so the
/// final size may be slightly below the spec.
#[derive(Debug, Clone)]
pub struct StandInGraph {
    /// Which spec this instantiates.
    pub spec: StandIn,
    /// Scale factor that was applied to the node count.
    pub scale: f64,
    /// The (connected) graph.
    pub graph: Graph,
    /// Ground-truth community of each vertex, for `Communities` stand-ins.
    pub membership: Option<Vec<u32>>,
}

/// Looks up a spec by paper name.
pub fn spec(name: &str) -> Option<StandIn> {
    STAND_INS.iter().copied().find(|s| s.name == name)
}

/// Generates the full-size stand-in for `name` (deterministic per name).
pub fn standin(name: &str) -> Option<StandInGraph> {
    standin_scaled(name, 1.0)
}

/// Generates a stand-in with the node count scaled by `scale` (edges scale
/// with it through the preserved average degree). Scaling keeps the
/// structural family while letting the harness default to laptop-friendly
/// sizes for the million-node graphs; `EXPERIMENTS.md` records the scales
/// used per experiment.
pub fn standin_scaled(name: &str, scale: f64) -> Option<StandInGraph> {
    let s = spec(name)?;
    Some(instantiate(s, scale))
}

/// Generates a stand-in from an explicit spec.
pub fn instantiate(s: StandIn, scale: f64) -> StandInGraph {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let n = ((s.nodes as f64 * scale).round() as usize).max(64);
    let avg_deg = 2.0 * s.edges as f64 / s.nodes as f64;
    let mut rng = StdRng::seed_from_u64(seed_of(s.name));
    match s.family {
        Family::PowerLaw { clustering } => {
            let k = ((avg_deg / 2.0).round() as usize).max(1);
            // Triad-formation probability calibrated so the Holme-Kim
            // clustering coefficient lands near the original's (empirical
            // fit over the Table 1 range).
            let p_triangle = (clustering * 1.6).clamp(0.0, 0.95);
            let graph = holme_kim(n.max(k + 2), k, p_triangle, &mut rng);
            StandInGraph {
                spec: s,
                scale,
                graph,
                membership: None,
            }
        }
        Family::Communities { num_communities } => {
            let k = ((num_communities as f64 * scale).round() as usize).clamp(2, n / 4);
            // Paper-style modular graphs: ~75% of a vertex's edges inside
            // its community.
            let deg_in = avg_deg * 0.75;
            let deg_out = avg_deg * 0.25;
            let pp = planted_partition_by_degree(n, k, deg_in, deg_out, &mut rng);
            let (graph, mapping) =
                largest_component_graph(&pp.graph).expect("stand-in is non-empty");
            let membership: Vec<u32> = mapping.iter().map(|&v| pp.membership[v as usize]).collect();
            StandInGraph {
                spec: s,
                scale,
                graph,
                membership: Some(membership),
            }
        }
    }
}

/// Stable 64-bit seed per dataset name (FNV-1a).
fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::connectivity::is_connected;

    #[test]
    fn specs_cover_the_paper_table() {
        assert_eq!(STAND_INS.len(), 13);
        assert!(spec("oregon").is_some());
        assert!(spec("dbpedia").is_some());
        assert!(spec("nonexistent").is_none());
    }

    #[test]
    fn small_standins_match_sizes() {
        for name in ["football", "jazz", "celegans", "email", "yeast"] {
            let si = standin(name).unwrap();
            let s = si.spec;
            let n = si.graph.num_nodes() as f64;
            assert!(
                (n - s.nodes as f64).abs() / s.nodes as f64 <= 0.05,
                "{name}: nodes {n} vs spec {}",
                s.nodes
            );
            let m = si.graph.num_edges() as f64;
            assert!(
                (m - s.edges as f64).abs() / s.edges as f64 <= 0.45,
                "{name}: edges {m} vs spec {}",
                s.edges
            );
            assert!(is_connected(&si.graph), "{name} disconnected");
        }
    }

    #[test]
    fn standins_are_deterministic() {
        let a = standin("email").unwrap();
        let b = standin("email").unwrap();
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn community_standins_have_membership() {
        let si = standin_scaled("dblp", 0.01).unwrap();
        let membership = si.membership.as_ref().expect("dblp has ground truth");
        assert_eq!(membership.len(), si.graph.num_nodes());
        let k = membership.iter().copied().max().unwrap() + 1;
        assert!(k >= 2, "expected multiple communities, got {k}");
        assert!(is_connected(&si.graph));
    }

    #[test]
    fn powerlaw_standins_have_hubs() {
        let si = standin("email").unwrap();
        let max_deg = si.graph.max_degree();
        let avg = 2.0 * si.graph.num_edges() as f64 / si.graph.num_nodes() as f64;
        assert!(
            max_deg as f64 > 5.0 * avg,
            "no hubs: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn scaling_shrinks_nodes_preserving_degree() {
        let full = standin("oregon").unwrap();
        let small = standin_scaled("oregon", 0.1).unwrap();
        assert!(small.graph.num_nodes() < full.graph.num_nodes() / 5);
        let d_full = 2.0 * full.graph.num_edges() as f64 / full.graph.num_nodes() as f64;
        let d_small = 2.0 * small.graph.num_edges() as f64 / small.graph.num_nodes() as f64;
        assert!(
            (d_full - d_small).abs() < 1.0,
            "avg degree drifted: {d_full} vs {d_small}"
        );
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn rejects_zero_scale() {
        let _ = standin_scaled("email", 0.0);
    }
}
