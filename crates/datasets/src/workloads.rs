//! Query workloads.
//!
//! §6.1: "the query workloads are made of random query-sets Q, with
//! controlled size and average distance of the query vertices". §6.4 adds
//! workloads drawn from ground-truth communities: all query vertices in
//! the same community (`sc`) or spread across different communities
//! (`dc`), 10 queries for each size in {3, 5, 10, 20}.

use rand::Rng;

use mwc_graph::traversal::bfs::BfsWorkspace;
use mwc_graph::{Graph, NodeId, INF_DIST};

/// A generated query set.
#[derive(Debug, Clone)]
pub struct QuerySet {
    /// The query vertices (distinct, unsorted — sampling order).
    pub vertices: Vec<NodeId>,
    /// Actual average pairwise distance of the set in the graph.
    pub avg_distance: f64,
}

/// Parameters for distance-controlled sampling.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Query set size `|Q|`.
    pub size: usize,
    /// Target average pairwise distance (`AD` in Fig 3).
    pub target_distance: f64,
    /// Acceptable deviation of the final set's average distance.
    pub tolerance: f64,
    /// Candidate samples drawn per added vertex.
    pub candidates_per_step: usize,
    /// Full restarts before giving up.
    pub max_attempts: usize,
}

impl WorkloadConfig {
    /// Config targeting the paper's defaults (`|Q| = size`, `AD = target`).
    pub fn new(size: usize, target_distance: f64) -> Self {
        WorkloadConfig {
            size,
            target_distance,
            tolerance: 0.5,
            candidates_per_step: 64,
            max_attempts: 40,
        }
    }
}

/// Samples a query set of `cfg.size` distinct vertices whose average
/// pairwise distance is as close as possible to `cfg.target_distance`.
///
/// Greedy construction: each step samples `candidates_per_step` random
/// vertices and keeps the one whose average distance to the already-chosen
/// vertices is closest to the target; the whole set is rebuilt up to
/// `max_attempts` times and the best attempt is returned (`None` only if
/// the graph has fewer than `size` vertices reachable from the seeds).
///
/// One BFS per chosen vertex per attempt — `O(attempts · size · (V + E))`
/// worst case, in practice a handful of attempts suffice.
pub fn distance_controlled_query<R: Rng>(
    g: &Graph,
    cfg: &WorkloadConfig,
    rng: &mut R,
) -> Option<QuerySet> {
    let n = g.num_nodes();
    if n < cfg.size || cfg.size == 0 {
        return None;
    }
    let mut ws = BfsWorkspace::new();
    let mut best: Option<QuerySet> = None;

    for _ in 0..cfg.max_attempts {
        let Some(qs) = sample_once(g, cfg, rng, &mut ws) else {
            continue;
        };
        let err = (qs.avg_distance - cfg.target_distance).abs();
        if err <= cfg.tolerance {
            return Some(qs);
        }
        if best
            .as_ref()
            .is_none_or(|b| err < (b.avg_distance - cfg.target_distance).abs())
        {
            best = Some(qs);
        }
    }
    best
}

fn sample_once<R: Rng>(
    g: &Graph,
    cfg: &WorkloadConfig,
    rng: &mut R,
    ws: &mut BfsWorkspace,
) -> Option<QuerySet> {
    let n = g.num_nodes();
    let seed = rng.gen_range(0..n as NodeId);
    let mut chosen = vec![seed];
    // dist_rows[i][v] = d(chosen[i], v)
    let mut dist_rows: Vec<Vec<u32>> = vec![ws.run(g, seed).to_vec()];
    let mut pair_sum = 0u64;

    while chosen.len() < cfg.size {
        let mut best_v: Option<(NodeId, u64)> = None;
        let mut best_err = f64::INFINITY;
        for _ in 0..cfg.candidates_per_step {
            let v = rng.gen_range(0..n as NodeId);
            if chosen.contains(&v) {
                continue;
            }
            let mut sum_to_chosen = 0u64;
            let mut reachable = true;
            for row in &dist_rows {
                let d = row[v as usize];
                if d == INF_DIST {
                    reachable = false;
                    break;
                }
                sum_to_chosen += d as u64;
            }
            if !reachable {
                continue;
            }
            // Average pairwise distance if v is added.
            let k = chosen.len() as u64;
            let new_pairs = (k + 1) * k / 2;
            let avg = (pair_sum + sum_to_chosen) as f64 / new_pairs as f64;
            let err = (avg - cfg.target_distance).abs();
            if err < best_err {
                best_err = err;
                best_v = Some((v, sum_to_chosen));
            }
        }
        let (v, sum_to_chosen) = best_v?;
        pair_sum += sum_to_chosen;
        chosen.push(v);
        dist_rows.push(ws.run(g, v).to_vec());
    }

    let pairs = (cfg.size * (cfg.size - 1) / 2) as f64;
    Some(QuerySet {
        vertices: chosen,
        avg_distance: pair_sum as f64 / pairs,
    })
}

/// Uniform random query: `size` distinct vertices from one connected
/// component (rejection-sampled from the component of the first pick).
pub fn uniform_query<R: Rng>(g: &Graph, size: usize, rng: &mut R) -> Option<QuerySet> {
    let n = g.num_nodes();
    if n < size || size == 0 {
        return None;
    }
    let mut ws = BfsWorkspace::new();
    let seed = rng.gen_range(0..n as NodeId);
    let dist = ws.run(g, seed).to_vec();
    let component: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| dist[v as usize] != INF_DIST)
        .collect();
    if component.len() < size {
        return None;
    }
    let mut chosen: Vec<NodeId> = Vec::with_capacity(size);
    while chosen.len() < size {
        let v = component[rng.gen_range(0..component.len())];
        if !chosen.contains(&v) {
            chosen.push(v);
        }
    }
    Some(finish_query(g, chosen, &mut ws))
}

/// Same-community workload (§6.4 `sc`): all query vertices from one
/// random community with at least `min_community_size` members.
pub fn same_community_query<R: Rng>(
    g: &Graph,
    membership: &[u32],
    size: usize,
    min_community_size: usize,
    rng: &mut R,
) -> Option<QuerySet> {
    let k = membership.iter().copied().max()? as usize + 1;
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for (v, &c) in membership.iter().enumerate() {
        buckets[c as usize].push(v as NodeId);
    }
    let eligible: Vec<usize> = (0..k)
        .filter(|&c| buckets[c].len() >= min_community_size.max(size))
        .collect();
    if eligible.is_empty() {
        return None;
    }
    let community = &buckets[eligible[rng.gen_range(0..eligible.len())]];
    let mut chosen: Vec<NodeId> = Vec::with_capacity(size);
    let mut guard = 0;
    while chosen.len() < size {
        guard += 1;
        if guard > 10_000 {
            return None;
        }
        let v = community[rng.gen_range(0..community.len())];
        if !chosen.contains(&v) {
            chosen.push(v);
        }
    }
    let mut ws = BfsWorkspace::new();
    Some(finish_query(g, chosen, &mut ws))
}

/// Different-communities workload (§6.4 `dc`): each query vertex from a
/// distinct community (cycling if there are fewer communities than
/// vertices requested).
pub fn different_communities_query<R: Rng>(
    g: &Graph,
    membership: &[u32],
    size: usize,
    rng: &mut R,
) -> Option<QuerySet> {
    let k = membership.iter().copied().max()? as usize + 1;
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for (v, &c) in membership.iter().enumerate() {
        buckets[c as usize].push(v as NodeId);
    }
    let mut order: Vec<usize> = (0..k).filter(|&c| !buckets[c].is_empty()).collect();
    if order.is_empty() {
        return None;
    }
    // Shuffle community order (Fisher–Yates).
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut chosen: Vec<NodeId> = Vec::with_capacity(size);
    let mut ci = 0usize;
    let mut guard = 0;
    while chosen.len() < size {
        guard += 1;
        if guard > 10_000 {
            return None;
        }
        let community = &buckets[order[ci % order.len()]];
        ci += 1;
        let v = community[rng.gen_range(0..community.len())];
        if !chosen.contains(&v) {
            chosen.push(v);
        }
    }
    let mut ws = BfsWorkspace::new();
    Some(finish_query(g, chosen, &mut ws))
}

/// Computes the actual average pairwise distance of a chosen set.
fn finish_query(g: &Graph, chosen: Vec<NodeId>, ws: &mut BfsWorkspace) -> QuerySet {
    let mut pair_sum = 0u64;
    let mut pairs = 0u64;
    for (i, &s) in chosen.iter().enumerate() {
        let dist = ws.run(g, s);
        for &t in &chosen[i + 1..] {
            if dist[t as usize] != INF_DIST {
                pair_sum += dist[t as usize] as u64;
                pairs += 1;
            }
        }
    }
    let avg = if pairs > 0 {
        pair_sum as f64 / pairs as f64
    } else {
        0.0
    };
    QuerySet {
        vertices: chosen,
        avg_distance: avg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{barabasi_albert, sbm::planted_partition, structured};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn controlled_distance_hits_target_on_grid() {
        let g = structured::grid(30, 30, false);
        let mut r = rng(1);
        for target in [4.0, 8.0, 12.0] {
            let q = distance_controlled_query(&g, &WorkloadConfig::new(5, target), &mut r)
                .expect("workload exists");
            assert_eq!(q.vertices.len(), 5);
            assert!(
                (q.avg_distance - target).abs() <= 1.5,
                "target {target}, got {}",
                q.avg_distance
            );
        }
    }

    #[test]
    fn controlled_distance_on_powerlaw() {
        let mut r = rng(2);
        let g = barabasi_albert(2000, 3, &mut r);
        let q = distance_controlled_query(&g, &WorkloadConfig::new(10, 4.0), &mut r).unwrap();
        assert_eq!(q.vertices.len(), 10);
        // Distinctness.
        let mut v = q.vertices.clone();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 10);
        assert!(
            (q.avg_distance - 4.0).abs() <= 1.5,
            "AD = {}",
            q.avg_distance
        );
    }

    #[test]
    fn uniform_query_stays_in_component() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let mut r = rng(3);
        for _ in 0..10 {
            let q = uniform_query(&g, 3, &mut r).unwrap();
            let first_comp = q.vertices[0] <= 2;
            for &v in &q.vertices {
                assert_eq!(v <= 2, first_comp, "mixed components: {:?}", q.vertices);
            }
        }
    }

    #[test]
    fn sc_workload_stays_in_one_community() {
        let mut r = rng(4);
        let pp = planted_partition(&[150, 150, 150], 0.1, 0.005, &mut r);
        let q = same_community_query(&pp.graph, &pp.membership, 5, 100, &mut r).unwrap();
        let c0 = pp.membership[q.vertices[0] as usize];
        assert!(q.vertices.iter().all(|&v| pp.membership[v as usize] == c0));
        assert_eq!(q.vertices.len(), 5);
    }

    #[test]
    fn sc_respects_min_community_size() {
        let mut r = rng(5);
        let pp = planted_partition(&[30, 30], 0.3, 0.02, &mut r);
        assert!(same_community_query(&pp.graph, &pp.membership, 5, 100, &mut r).is_none());
    }

    #[test]
    fn dc_workload_spreads_across_communities() {
        let mut r = rng(6);
        let pp = planted_partition(&[100, 100, 100, 100], 0.1, 0.01, &mut r);
        let q = different_communities_query(&pp.graph, &pp.membership, 4, &mut r).unwrap();
        let mut comms: Vec<u32> = q
            .vertices
            .iter()
            .map(|&v| pp.membership[v as usize])
            .collect();
        comms.sort_unstable();
        comms.dedup();
        assert_eq!(comms.len(), 4, "queries not in distinct communities");
    }

    #[test]
    fn dc_cycles_when_fewer_communities_than_queries() {
        let mut r = rng(7);
        let pp = planted_partition(&[100, 100], 0.2, 0.02, &mut r);
        let q = different_communities_query(&pp.graph, &pp.membership, 6, &mut r).unwrap();
        assert_eq!(q.vertices.len(), 6);
    }

    #[test]
    fn degenerate_sizes() {
        let g = structured::path(4);
        let mut r = rng(8);
        assert!(uniform_query(&g, 0, &mut r).is_none());
        assert!(uniform_query(&g, 9, &mut r).is_none());
        assert!(distance_controlled_query(&g, &WorkloadConfig::new(0, 2.0), &mut r).is_none());
    }
}
