//! Synthetic protein–protein-interaction network for the §7 case study.
//!
//! The paper extracts a minimum Wiener connector from a BioGrid human PPI
//! network (15 312 proteins) for the query {BMP1, JAK2, PSEN, SLC6A4} and
//! observes that the connector recruits hub proteins {p53, HSP90, GSK3B,
//! SNCA} that link the queries' disease modules (Figure 6). BioGrid data
//! is not redistributable here, so this module builds a synthetic PPI-like
//! network with the same *structure*: two dense disease modules ("cancer",
//! "alzheimers") over a scale-free background, with the four named hubs
//! positioned as high-degree connectors and each named query protein
//! attached near "its" hub, reproducing the figure's next-hop pattern.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mwc_graph::{GraphBuilder, NodeId};

use crate::labeled::LabeledGraph;

/// Named hub proteins of the case study, in vertex order `0..4`.
pub const HUBS: [&str; 4] = ["p53", "HSP90", "GSK3B", "SNCA"];

/// Named query proteins, in vertex order `4..8`.
pub const QUERIES: [&str; 4] = ["BMP1", "JAK2", "PSEN", "SLC6A4"];

/// Number of background proteins per disease module.
const MODULE_SIZE: usize = 600;
/// Number of unaffiliated background proteins.
const BACKGROUND: usize = 800;

/// Builds the synthetic PPI network (deterministic).
///
/// Layout: ids 0–3 hubs, 4–7 query proteins, then the cancer module, the
/// alzheimers module, and the unaffiliated background.
pub fn ppi_network() -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(0x9919);
    let n = 8 + 2 * MODULE_SIZE + BACKGROUND;
    let mut b = GraphBuilder::with_capacity(n, n * 4);

    let p53: NodeId = 0;
    let hsp90: NodeId = 1;
    let gsk3b: NodeId = 2;
    let snca: NodeId = 3;
    let (bmp1, jak2, psen, slc6a4): (NodeId, NodeId, NodeId, NodeId) = (4, 5, 6, 7);

    let cancer_start = 8 as NodeId;
    let alz_start = cancer_start + MODULE_SIZE as NodeId;
    let bg_start = alz_start + MODULE_SIZE as NodeId;

    // Disease modules: sparse random interactions among members, plus
    // strong attachment to the module hubs.
    let mut wire_module = |start: NodeId, hub_a: NodeId, hub_b: NodeId, rng: &mut StdRng| {
        for i in 0..MODULE_SIZE as NodeId {
            let v = start + i;
            // Every module protein interacts with 1–3 peers.
            for _ in 0..rng.gen_range(1..=3) {
                let w = start + rng.gen_range(0..MODULE_SIZE as NodeId);
                b.add_edge_unchecked(v, w);
            }
            // Hubs are party hubs: ~40% attachment each.
            if rng.gen_bool(0.4) {
                b.add_edge_unchecked(v, hub_a);
            }
            if rng.gen_bool(0.4) {
                b.add_edge_unchecked(v, hub_b);
            }
        }
    };
    wire_module(cancer_start, p53, hsp90, &mut rng);
    wire_module(alz_start, gsk3b, snca, &mut rng);

    // Cross-module biology (the cancer–Alzheimer's interplay §7 mentions):
    // p53 ↔ GSK3B interaction plus hub cross-talk.
    b.add_edge_unchecked(p53, gsk3b);
    b.add_edge_unchecked(hsp90, gsk3b);
    b.add_edge_unchecked(p53, hsp90);
    b.add_edge_unchecked(gsk3b, snca);
    // A handful of weak cross-module interactions.
    for _ in 0..20 {
        let u = cancer_start + rng.gen_range(0..MODULE_SIZE as NodeId);
        let v = alz_start + rng.gen_range(0..MODULE_SIZE as NodeId);
        b.add_edge_unchecked(u, v);
    }

    // Query proteins attach primarily to their literature hub plus a couple
    // of module peers (so the hub is their natural next hop).
    let mut attach_query = |q: NodeId, hub: NodeId, module_start: NodeId, rng: &mut StdRng| {
        b.add_edge_unchecked(q, hub);
        for _ in 0..3 {
            b.add_edge_unchecked(q, module_start + rng.gen_range(0..MODULE_SIZE as NodeId));
        }
    };
    attach_query(bmp1, p53, cancer_start, &mut rng);
    attach_query(jak2, hsp90, cancer_start, &mut rng);
    attach_query(psen, gsk3b, alz_start, &mut rng);
    attach_query(slc6a4, snca, alz_start, &mut rng);

    // Unaffiliated background: preferential-attachment-ish chain into the
    // existing network.
    for i in 0..BACKGROUND as NodeId {
        let v = bg_start + i;
        let anchor = rng.gen_range(0..v);
        b.add_edge_unchecked(v, anchor);
        if rng.gen_bool(0.5) {
            let anchor2 = rng.gen_range(0..v);
            b.add_edge_unchecked(v, anchor2);
        }
    }

    let graph = b.build();
    let mut labels: Vec<String> = Vec::with_capacity(n);
    labels.extend(HUBS.iter().map(|s| s.to_string()));
    labels.extend(QUERIES.iter().map(|s| s.to_string()));
    for i in 0..(n - 8) {
        labels.push(format!("P{:05}", i));
    }
    LabeledGraph::new(graph, labels)
}

/// The Figure 6 query: ids of {BMP1, JAK2, PSEN, SLC6A4}.
pub fn disease_query(net: &LabeledGraph) -> Vec<NodeId> {
    net.ids_of(&QUERIES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::connectivity::is_connected;

    #[test]
    fn network_is_connected_and_sized() {
        let net = ppi_network();
        assert!(is_connected(&net.graph));
        assert_eq!(net.graph.num_nodes(), 8 + 2 * MODULE_SIZE + BACKGROUND);
    }

    #[test]
    fn hubs_have_high_degree() {
        let net = ppi_network();
        let avg = 2.0 * net.graph.num_edges() as f64 / net.graph.num_nodes() as f64;
        for hub in HUBS {
            let id = net.id_of(hub).unwrap();
            let deg = net.graph.degree(id) as f64;
            assert!(deg > 20.0 * avg, "{hub}: degree {deg} vs avg {avg}");
        }
    }

    #[test]
    fn queries_touch_their_hubs() {
        let net = ppi_network();
        for (q, h) in [
            ("BMP1", "p53"),
            ("JAK2", "HSP90"),
            ("PSEN", "GSK3B"),
            ("SLC6A4", "SNCA"),
        ] {
            let qi = net.id_of(q).unwrap();
            let hi = net.id_of(h).unwrap();
            assert!(net.graph.has_edge(qi, hi), "{q} not adjacent to {h}");
        }
    }

    #[test]
    fn connector_recruits_the_hub_layer() {
        // The actual §7 claim: the minimum Wiener connector for the disease
        // query consists of the queries plus (mostly) the named hubs.
        let net = ppi_network();
        let q = disease_query(&net);
        let sol = mwc_core::minimum_wiener_connector(&net.graph, &q).unwrap();
        assert!(
            sol.connector.len() <= 12,
            "connector too large: {}",
            sol.connector.len()
        );
        let hub_hits = HUBS
            .iter()
            .filter(|h| sol.connector.contains(net.id_of(h).unwrap()))
            .count();
        assert!(hub_hits >= 2, "only {hub_hits} hubs recruited");
    }

    #[test]
    fn deterministic() {
        let a = ppi_network();
        let b = ppi_network();
        assert_eq!(a.graph, b.graph);
    }
}
