//! Synthetic Twitter `#kdd2014` mention graph for the §7 case study.
//!
//! The paper's graph has 1141 users tweeting with the #kdd2014 hashtag,
//! clustered into 10 communities (G1..G10), with reply/mention edges. Two
//! power users — `kdnuggets` (top-1 mentioned and top-1 betweenness in the
//! whole graph) and `drewconway` — bridge many communities, and the
//! minimum Wiener connectors of cross-community queries recruit them
//! (Figure 7 / Table 5). This module rebuilds that shape: a 10-block
//! planted partition with named intra-community influencers plus two
//! global hubs wired across all communities.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mwc_graph::connectivity::largest_component_graph;
use mwc_graph::{GraphBuilder, NodeId};

use crate::labeled::LabeledGraph;

/// The two global hub users.
pub const GLOBAL_HUBS: [&str; 2] = ["kdnuggets", "drewconway"];

/// Named community influencers `(handle, community)` from Table 5.
pub const INFLUENCERS: [(&str, usize); 6] = [
    ("francescobonchi", 1),         // G2
    ("nicola_barbieri", 1),         // G2
    ("jromich", 0),                 // G1 (top replied-to in G1)
    ("gizmonaut", 9),               // G10
    ("irescuapp", 9),               // G10
    ("thrillscience", 10usize - 1), // G10
];

/// Additional named rank-and-file users `(handle, community)` appearing in
/// the Figure 7 queries.
pub const MEMBERS: [(&str, usize); 5] = [
    ("data_nerd", 6), // G7
    ("kdnuggets_fan", 0),
    ("cornell_tech", 9), // G10
    ("jonkleinberg", 2), // G13 in the paper; mapped into our 10 blocks
    ("destrin", 9),      // G10
];

const NUM_COMMUNITIES: usize = 10;
const COMMUNITY_SIZE: usize = 112; // ≈ 1141 users total with the named ones

/// The §7 Twitter network together with each user's community.
#[derive(Debug, Clone)]
pub struct TwitterNetwork {
    /// Labeled mention graph.
    pub network: LabeledGraph,
    /// Community (`0..10`) of each vertex.
    pub membership: Vec<u32>,
}

/// Builds the synthetic #kdd2014 graph (deterministic, ≈1141 users).
pub fn kdd2014_network() -> TwitterNetwork {
    let mut rng = StdRng::seed_from_u64(0x2014);
    let n = NUM_COMMUNITIES * COMMUNITY_SIZE + 2; // + the two global hubs
    let mut labels: Vec<String> = Vec::with_capacity(n);
    let mut membership: Vec<u32> = Vec::with_capacity(n);

    // Vertices 0,1: global hubs (community = the one they tweet most with).
    labels.push(GLOBAL_HUBS[0].to_string());
    membership.push(0);
    labels.push(GLOBAL_HUBS[1].to_string());
    membership.push(3);

    // Community members; named users take the first slots of their blocks.
    let mut named: Vec<Vec<&str>> = vec![Vec::new(); NUM_COMMUNITIES];
    for (handle, c) in INFLUENCERS.iter().chain(MEMBERS.iter()) {
        named[*c].push(handle);
    }
    let mut block_start: Vec<NodeId> = Vec::with_capacity(NUM_COMMUNITIES);
    for (c, block_named) in named.iter().enumerate() {
        block_start.push(labels.len() as NodeId);
        for slot in 0..COMMUNITY_SIZE {
            let label = block_named
                .get(slot)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("user_g{}_{:03}", c + 1, slot));
            labels.push(label);
            membership.push(c as u32);
        }
    }

    let mut b = GraphBuilder::with_capacity(n, n * 4);
    // Intra-community mentions: each user mentions 2–5 peers, biased toward
    // the community influencer (slot 0).
    for &start in &block_start {
        for i in 0..COMMUNITY_SIZE as NodeId {
            let v = start + i;
            for _ in 0..rng.gen_range(2..=5) {
                let w = if rng.gen_bool(0.3) {
                    start // the influencer slot
                } else {
                    start + rng.gen_range(0..COMMUNITY_SIZE as NodeId)
                };
                b.add_edge_unchecked(v, w);
            }
        }
    }
    // Global hubs: mentioned from every community (kdnuggets heavily,
    // drewconway moderately).
    for &start in &block_start {
        for _ in 0..30 {
            b.add_edge_unchecked(0, start + rng.gen_range(0..COMMUNITY_SIZE as NodeId));
        }
        for _ in 0..12 {
            b.add_edge_unchecked(1, start + rng.gen_range(0..COMMUNITY_SIZE as NodeId));
        }
    }
    b.add_edge_unchecked(0, 1);
    // Sparse cross-community chatter.
    for _ in 0..150 {
        let c1 = rng.gen_range(0..NUM_COMMUNITIES);
        let c2 = rng.gen_range(0..NUM_COMMUNITIES);
        if c1 == c2 {
            continue;
        }
        let u = block_start[c1] + rng.gen_range(0..COMMUNITY_SIZE as NodeId);
        let v = block_start[c2] + rng.gen_range(0..COMMUNITY_SIZE as NodeId);
        b.add_edge_unchecked(u, v);
    }

    let raw = b.build();
    let (graph, mapping) = largest_component_graph(&raw).expect("non-empty");
    let labels: Vec<String> = mapping
        .iter()
        .map(|&v| labels[v as usize].clone())
        .collect();
    let membership: Vec<u32> = mapping.iter().map(|&v| membership[v as usize]).collect();
    TwitterNetwork {
        network: LabeledGraph::new(graph, labels),
        membership,
    }
}

/// The two Figure 7 query sets (cross-community users), as label lists.
pub fn figure7_queries() -> [Vec<&'static str>; 2] {
    [
        vec![
            "irescuapp",
            "data_nerd",
            "francescobonchi",
            "nicola_barbieri",
            "cornell_tech",
        ],
        vec![
            "irescuapp",
            "jonkleinberg",
            "gizmonaut",
            "jromich",
            "thrillscience",
            "destrin",
        ],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::connectivity::is_connected;

    #[test]
    fn network_shape() {
        let tw = kdd2014_network();
        let n = tw.network.graph.num_nodes();
        assert!((1100..=1125).contains(&n), "n = {n}");
        assert!(is_connected(&tw.network.graph));
        assert_eq!(tw.membership.len(), n);
    }

    #[test]
    fn all_named_users_present() {
        let tw = kdd2014_network();
        for h in GLOBAL_HUBS {
            assert!(tw.network.id_of(h).is_some(), "{h} missing");
        }
        for (h, _) in INFLUENCERS.iter().chain(MEMBERS.iter()) {
            assert!(tw.network.id_of(h).is_some(), "{h} missing");
        }
    }

    #[test]
    fn kdnuggets_is_top_degree() {
        let tw = kdd2014_network();
        let kd = tw.network.id_of("kdnuggets").unwrap();
        let kd_deg = tw.network.graph.degree(kd);
        let max_other = tw
            .network
            .graph
            .nodes()
            .filter(|&v| v != kd)
            .map(|v| tw.network.graph.degree(v))
            .max()
            .unwrap();
        assert!(
            kd_deg >= max_other,
            "kdnuggets {kd_deg} vs max other {max_other}"
        );
    }

    #[test]
    fn figure7_queries_resolve_and_span_communities() {
        let tw = kdd2014_network();
        for q in figure7_queries() {
            let ids = tw.network.ids_of(&q);
            let mut comms: Vec<u32> = ids.iter().map(|&v| tw.membership[v as usize]).collect();
            comms.sort_unstable();
            comms.dedup();
            assert!(comms.len() >= 3, "query not cross-community: {q:?}");
        }
    }

    #[test]
    fn connectors_recruit_global_hubs() {
        // The §7 observation: both Figure 7 connectors contain kdnuggets
        // and/or drewconway.
        let tw = kdd2014_network();
        for q in figure7_queries() {
            let ids = tw.network.ids_of(&q);
            let sol = mwc_core::minimum_wiener_connector(&tw.network.graph, &ids).unwrap();
            let kd = tw.network.id_of("kdnuggets").unwrap();
            let dc = tw.network.id_of("drewconway").unwrap();
            assert!(
                sol.connector.contains(kd) || sol.connector.contains(dc),
                "no global hub in connector for {q:?}: {:?}",
                tw.network.render(sol.connector.vertices())
            );
        }
    }

    #[test]
    fn deterministic() {
        let a = kdd2014_network();
        let b = kdd2014_network();
        assert_eq!(a.network.graph, b.network.graph);
        assert_eq!(a.membership, b.membership);
    }
}
