//! Datasets and query workloads for the experiments.
//!
//! The paper evaluates on public SNAP/Arenas graphs, SteinLib benchmarks,
//! a BioGrid PPI network, and a Twitter #kdd2014 graph — none of which are
//! redistributable inside this repository. Following DESIGN.md §3, this
//! crate generates deterministic *stand-ins* with matched size and family:
//!
//! * [`realworld`] — Table 1 stand-ins (matched `|V|`, `|E|`, generator
//!   family, ground-truth communities where the original has them);
//! * [`workloads`] — random query sets with controlled size and average
//!   pairwise distance (§6.1), plus same-community / different-community
//!   workloads (§6.4);
//! * [`steiner_benchmarks`] — `puc`-like (hypercube) and `vienna`-like
//!   (road-grid) instances with predefined terminal sets (§6.5);
//! * [`labeled`], [`ppi`], [`twitter`] — the case-study networks of §7;
//! * [`karate`] — re-export of Zachary's karate club (Figure 1).
//!
//! Everything is seeded: the same binary reproduces the same numbers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod labeled;
pub mod ppi;
pub mod realworld;
pub mod steiner_benchmarks;
pub mod stp;
pub mod twitter;
pub mod workloads;

/// Re-export of the karate-club generators (the Figure 1 example lives in
/// `mwc-graph` because the graph tests use it too).
pub mod karate {
    pub use mwc_graph::generators::karate::*;
}

pub use labeled::LabeledGraph;
pub use realworld::{standin, standin_scaled, StandIn, STAND_INS};
pub use steiner_benchmarks::{puc_like, vienna_like, BenchmarkInstance};
pub use stp::{parse_stp, write_stp, StpError, StpParse};
pub use workloads::{QuerySet, WorkloadConfig};
