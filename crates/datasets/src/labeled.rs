//! Graphs with human-readable vertex labels, for the §7 case studies.

use mwc_graph::{Graph, NodeId};

/// A graph whose vertices carry string labels (protein names, Twitter
/// handles, …).
#[derive(Debug, Clone)]
pub struct LabeledGraph {
    /// The graph.
    pub graph: Graph,
    /// `labels[v]` = display label of vertex `v`.
    pub labels: Vec<String>,
}

impl LabeledGraph {
    /// Builds a labeled graph, checking that every vertex has a label.
    pub fn new(graph: Graph, labels: Vec<String>) -> Self {
        assert_eq!(graph.num_nodes(), labels.len(), "one label per vertex");
        LabeledGraph { graph, labels }
    }

    /// The label of `v`.
    pub fn label(&self, v: NodeId) -> &str {
        &self.labels[v as usize]
    }

    /// Finds the vertex with the given label (linear scan — labels are for
    /// case studies, not hot paths).
    pub fn id_of(&self, label: &str) -> Option<NodeId> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| i as NodeId)
    }

    /// Maps a list of labels to ids, panicking on unknown labels (case
    /// studies use fixed label sets).
    pub fn ids_of(&self, labels: &[&str]) -> Vec<NodeId> {
        labels
            .iter()
            .map(|l| {
                self.id_of(l)
                    .unwrap_or_else(|| panic!("unknown label {l:?}"))
            })
            .collect()
    }

    /// Renders a vertex set as labels (sorted by id).
    pub fn render(&self, vs: &[NodeId]) -> Vec<&str> {
        vs.iter().map(|&v| self.label(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::structured;

    #[test]
    fn label_round_trip() {
        let g = structured::path(3);
        let lg = LabeledGraph::new(g, vec!["a".into(), "b".into(), "c".into()]);
        assert_eq!(lg.label(1), "b");
        assert_eq!(lg.id_of("c"), Some(2));
        assert_eq!(lg.id_of("zz"), None);
        assert_eq!(lg.ids_of(&["c", "a"]), vec![2, 0]);
        assert_eq!(lg.render(&[0, 2]), vec!["a", "c"]);
    }

    #[test]
    #[should_panic(expected = "one label per vertex")]
    fn mismatched_label_count_panics() {
        LabeledGraph::new(structured::path(3), vec!["x".into()]);
    }
}
