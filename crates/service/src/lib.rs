//! The serving subsystem: many graphs, one process, heavy query traffic.
//!
//! The paper's deployment story (§1, §7) is interactive — a fixed graph
//! answers a stream of small "connect this group" requests — which is the
//! shape of a query-serving system, not a batch experiment. This crate
//! turns the library-only [`QueryEngine`](mwc_core::QueryEngine) into
//! that system:
//!
//! * [`catalog`] — named graphs loaded once, each with an
//!   [`OwnedEngine`](mwc_core::OwnedEngine) (`Arc<Graph>`-backed, no
//!   borrowed data) so engines live as long as the process, not a stack
//!   frame;
//! * [`protocol`] — a newline-delimited JSON wire protocol
//!   (hand-rolled [`json`] — the workspace has no serde) with
//!   per-request ids, deadlines, and stable error codes;
//! * [`server`] — a std-only TCP server with two transports (see
//!   [`server::Transport`]): a nonblocking epoll event loop (linux
//!   default — one loop thread serves every connection, with pipelining
//!   and bounded write-buffer backpressure) and a thread-per-connection
//!   reference path; both feed the same fixed worker pool behind a
//!   *bounded* admission queue (full queue ⇒ explicit `overloaded`
//!   response), with end-to-end deadline accounting and graceful drain
//!   on shutdown;
//! * [`coalesce`] — cross-request solve coalescing: per-graph flush
//!   windows pack concurrent solves into one shared
//!   [`solve_group`](mwc_core::QueryEngine::solve_group) execution whose
//!   MS-BFS sweeps span requests, with deadline bypass, eviction abort
//!   (`graph_evicted`), and drain-before-ack on shutdown;
//! * [`metrics`] — request counters, queue gauges, per-solver and
//!   per-stage log₂ latency histograms, served by the `stats` command
//!   and as Prometheus text by the `metrics` command;
//! * [`trace`] — per-request span trees (`"trace": true` on
//!   `solve`/`batch`), the always-on slow-query ring (`slowlog`
//!   command), and trace-id propagation router → shard;
//! * [`client`] — a blocking client used by `mwc-client`, the load
//!   generator (`mwc_bench`'s `loadgen`), and the integration tests;
//! * [`shard`] — the deterministic consistent-hash ring (virtual nodes)
//!   that partitions the catalog **by graph name** across processes;
//! * [`router`] — `mwc-router`, the sharded front-end: same wire
//!   protocol, routes graph-addressed commands by ring lookup over
//!   pooled backend connections, fans batches out per shard (replies
//!   reassembled in request order), merges `stats`/`graphs`, tracks
//!   backend health (ejection + reprobe), and maps backend failure to
//!   the stable `shard_unavailable` code;
//! * [`client::RouterClient`] — the resharding-safe client wrapper that
//!   retries `shard_unavailable` with backoff.
//!
//! # Quickstart (in-process)
//!
//! ```
//! use std::sync::Arc;
//! use mwc_service::{catalog::Catalog, client::Client, server};
//!
//! let catalog = Arc::new(Catalog::new());
//! catalog.load("karate", "karate").unwrap();
//! let handle = server::start(
//!     catalog,
//!     server::ServerConfig::default(),
//!     "127.0.0.1:0", // ephemeral port
//! )
//! .unwrap();
//!
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! let report = client.solve("karate", "ws-q", &[11, 24, 25, 29], None, None).unwrap();
//! assert!(report.connector.len() >= 4);
//! handle.shutdown(); // graceful: drains the queue, joins every thread
//! ```
//!
//! The `mwc-server` / `mwc-client` binaries wrap exactly this, over real
//! sockets; see the README's "Running the server" section for the
//! protocol grammar.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod client;
pub mod coalesce;
pub mod error;
#[cfg(target_os = "linux")]
pub(crate) mod event_loop;
pub mod json;
pub mod metrics;
#[cfg(target_os = "linux")]
pub mod net;
pub mod protocol;
pub mod router;
pub mod server;
pub mod shard;
pub mod trace;

pub use catalog::{Catalog, CatalogEntry, GraphSource};
pub use client::{
    Client, ClientError, GraphInfo, PipelinedClient, RouterClient, WireError, WireReport,
};
pub use coalesce::{CoalesceConfig, Coalescer};
pub use error::{Result, ServiceError};
pub use json::Json;
pub use metrics::{Histogram, Metrics};
pub use protocol::{CacheSeed, ShardChange, PROTOCOL_VERSION};
pub use router::{RouterConfig, RouterHandle, ShardSpec};
pub use server::{start, ServerConfig, ServerHandle, Transport};
pub use shard::HashRing;
pub use trace::{SlowLog, SpanRecord, TraceContext, TraceRecorder};
