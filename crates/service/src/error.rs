//! Service-level errors and their wire-protocol error codes.

use std::fmt;

use mwc_core::CoreError;

/// Convenience alias for `Result<T, ServiceError>`.
pub type Result<T> = std::result::Result<T, ServiceError>;

/// Everything that can go wrong between reading a request line and
/// writing its response. Each variant maps to a stable wire `code` (see
/// [`ServiceError::code`]) so clients can branch without parsing
/// human-oriented messages.
#[derive(Debug)]
pub enum ServiceError {
    /// The request line was not valid JSON, or was missing/mistyping a
    /// required field.
    BadRequest(String),
    /// The request named a graph the catalog has not loaded.
    UnknownGraph {
        /// The requested catalog name.
        requested: String,
        /// Names currently loaded, sorted.
        loaded: Vec<String>,
    },
    /// A graph source spec failed to parse or load.
    BadSource(String),
    /// The admission queue was full: the server sheds the request instead
    /// of letting latency collapse for everyone.
    Overloaded {
        /// Configured queue capacity that was exhausted.
        queue_capacity: usize,
    },
    /// The server is at its concurrent-connection limit; the connection
    /// is refused after one error line. Its own wire code
    /// (`too_many_connections`) so operators can tell connection-limit
    /// shedding from queue shedding, but retryable exactly like
    /// [`ServiceError::Overloaded`] — clients back off identically.
    TooManyConnections {
        /// Configured connection limit that was reached.
        limit: usize,
    },
    /// The request carried a `"v"` protocol version this server does not
    /// speak. Stable code (`unsupported_version`) and NOT retryable: the
    /// same request will fail the same way until the client downgrades.
    UnsupportedVersion {
        /// The version the request asked for.
        requested: u64,
        /// The version this server speaks.
        supported: u64,
    },
    /// The request's deadline expired while it was still queued, so the
    /// solve was never started.
    DeadlineExceeded {
        /// Milliseconds the request spent queued before being dropped.
        queued_ms: u64,
    },
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// The graph was evicted (or replaced by a `load`) while the request
    /// was waiting in its coalescing queue, so the solve never ran.
    /// Stable and retryable: the entry the request was parked on is gone,
    /// but a retry resolves the catalog afresh — it either finds the
    /// replacement entry or gets a definitive `unknown_graph`.
    GraphEvicted {
        /// Catalog name of the evicted graph.
        name: String,
    },
    /// A router could not reach the backend shard that owns the requested
    /// resource (dead process, refused connection, broken pipe, ejected by
    /// health tracking). Stable and retryable: clients back off and retry
    /// — the shard may be restarting or the ring resharding.
    ShardUnavailable {
        /// Ring name of the unreachable shard.
        shard: String,
        /// What failed (connect refused, read error, ejected, …).
        reason: String,
    },
    /// An error from the solving layer (unknown solver, infeasible query,
    /// budget exceeded, …).
    Core(CoreError),
    /// An I/O failure while loading a graph from disk.
    Io(std::io::Error),
}

impl ServiceError {
    /// The stable machine-readable error code carried in error responses.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::BadRequest(_) => "bad_request",
            ServiceError::UnknownGraph { .. } => "unknown_graph",
            ServiceError::BadSource(_) => "bad_source",
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::TooManyConnections { .. } => "too_many_connections",
            ServiceError::UnsupportedVersion { .. } => "unsupported_version",
            ServiceError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServiceError::ShuttingDown => "shutting_down",
            ServiceError::GraphEvicted { .. } => "graph_evicted",
            ServiceError::ShardUnavailable { .. } => "shard_unavailable",
            ServiceError::Core(e) => match e {
                CoreError::UnknownSolver { .. } => "unknown_solver",
                CoreError::BudgetExceeded { .. } => "budget_exceeded",
                CoreError::EmptyQuery
                | CoreError::QueryNotConnectable
                | CoreError::Graph(_)
                | CoreError::UnsupportedInstance { .. } => "infeasible",
                _ => "internal",
            },
            ServiceError::Io(_) => "io",
        }
    }

    /// Whether a client may expect the *same* request to succeed on
    /// retry (after backoff): transient capacity and topology conditions
    /// are retryable, semantic failures are not. This is the server-side
    /// source of truth for the `"retryable"` field on wire error objects
    /// — clients branch on [`crate::client::WireError::is_retryable`]
    /// instead of matching code strings.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            ServiceError::Overloaded { .. }
                | ServiceError::TooManyConnections { .. }
                | ServiceError::GraphEvicted { .. }
                | ServiceError::ShardUnavailable { .. }
        )
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::UnknownGraph { requested, loaded } => write!(
                f,
                "no graph loaded under {requested:?} (loaded: {})",
                loaded.join(", ")
            ),
            ServiceError::BadSource(m) => write!(f, "bad graph source: {m}"),
            ServiceError::Overloaded { queue_capacity } => write!(
                f,
                "server overloaded: admission queue of {queue_capacity} is full"
            ),
            ServiceError::TooManyConnections { limit } => {
                write!(f, "connection limit {limit} reached")
            }
            ServiceError::UnsupportedVersion {
                requested,
                supported,
            } => write!(
                f,
                "protocol version {requested} not supported (this server speaks v{supported})"
            ),
            ServiceError::DeadlineExceeded { queued_ms } => write!(
                f,
                "deadline expired after {queued_ms} ms in the queue; solve not started"
            ),
            ServiceError::ShuttingDown => write!(f, "server is shutting down"),
            ServiceError::GraphEvicted { name } => write!(
                f,
                "graph {name:?} was evicted while the request was queued; retry"
            ),
            ServiceError::ShardUnavailable { shard, reason } => {
                write!(f, "shard {shard:?} unavailable: {reason}")
            }
            ServiceError::Core(e) => write!(f, "{e}"),
            ServiceError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Core(e) => Some(e),
            ServiceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Core(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(ServiceError::BadRequest("x".into()).code(), "bad_request");
        assert_eq!(
            ServiceError::Overloaded { queue_capacity: 4 }.code(),
            "overloaded"
        );
        assert_eq!(
            ServiceError::Core(CoreError::EmptyQuery).code(),
            "infeasible"
        );
        assert_eq!(
            ServiceError::Core(CoreError::UnknownSolver {
                requested: "x".into(),
                available: vec![],
            })
            .code(),
            "unknown_solver"
        );
        assert_eq!(
            ServiceError::Core(CoreError::BudgetExceeded { size: 9, budget: 4 }).code(),
            "budget_exceeded"
        );
        assert_eq!(
            ServiceError::ShardUnavailable {
                shard: "s0".into(),
                reason: "connection refused".into(),
            }
            .code(),
            "shard_unavailable"
        );
        assert_eq!(
            ServiceError::GraphEvicted { name: "g".into() }.code(),
            "graph_evicted"
        );
        assert_eq!(
            ServiceError::TooManyConnections { limit: 2 }.code(),
            "too_many_connections"
        );
        assert_eq!(
            ServiceError::UnsupportedVersion {
                requested: 9,
                supported: 1,
            }
            .code(),
            "unsupported_version"
        );
    }

    #[test]
    fn retryable_marks_transient_conditions_only() {
        assert!(ServiceError::Overloaded { queue_capacity: 4 }.retryable());
        assert!(ServiceError::TooManyConnections { limit: 2 }.retryable());
        assert!(ServiceError::GraphEvicted { name: "g".into() }.retryable());
        assert!(ServiceError::ShardUnavailable {
            shard: "s0".into(),
            reason: "refused".into(),
        }
        .retryable());

        assert!(!ServiceError::BadRequest("x".into()).retryable());
        assert!(!ServiceError::ShuttingDown.retryable());
        assert!(!ServiceError::DeadlineExceeded { queued_ms: 5 }.retryable());
        assert!(!ServiceError::UnsupportedVersion {
            requested: 9,
            supported: 1,
        }
        .retryable());
        assert!(!ServiceError::Core(CoreError::EmptyQuery).retryable());
    }
}
