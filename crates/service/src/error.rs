//! Service-level errors and their wire-protocol error codes.

use std::fmt;

use mwc_core::CoreError;

/// Convenience alias for `Result<T, ServiceError>`.
pub type Result<T> = std::result::Result<T, ServiceError>;

/// Everything that can go wrong between reading a request line and
/// writing its response. Each variant maps to a stable wire `code` (see
/// [`ServiceError::code`]) so clients can branch without parsing
/// human-oriented messages.
#[derive(Debug)]
pub enum ServiceError {
    /// The request line was not valid JSON, or was missing/mistyping a
    /// required field.
    BadRequest(String),
    /// The request named a graph the catalog has not loaded.
    UnknownGraph {
        /// The requested catalog name.
        requested: String,
        /// Names currently loaded, sorted.
        loaded: Vec<String>,
    },
    /// A graph source spec failed to parse or load.
    BadSource(String),
    /// The admission queue was full: the server sheds the request instead
    /// of letting latency collapse for everyone.
    Overloaded {
        /// Configured queue capacity that was exhausted.
        queue_capacity: usize,
    },
    /// The server is at its concurrent-connection limit; the connection
    /// is refused after one error line. Same wire code as
    /// [`ServiceError::Overloaded`] (`overloaded`) — clients back off
    /// identically.
    TooManyConnections {
        /// Configured connection limit that was reached.
        limit: usize,
    },
    /// The request's deadline expired while it was still queued, so the
    /// solve was never started.
    DeadlineExceeded {
        /// Milliseconds the request spent queued before being dropped.
        queued_ms: u64,
    },
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// The graph was evicted (or replaced by a `load`) while the request
    /// was waiting in its coalescing queue, so the solve never ran.
    /// Stable and retryable: the entry the request was parked on is gone,
    /// but a retry resolves the catalog afresh — it either finds the
    /// replacement entry or gets a definitive `unknown_graph`.
    GraphEvicted {
        /// Catalog name of the evicted graph.
        name: String,
    },
    /// A router could not reach the backend shard that owns the requested
    /// resource (dead process, refused connection, broken pipe, ejected by
    /// health tracking). Stable and retryable: clients back off and retry
    /// — the shard may be restarting or the ring resharding.
    ShardUnavailable {
        /// Ring name of the unreachable shard.
        shard: String,
        /// What failed (connect refused, read error, ejected, …).
        reason: String,
    },
    /// An error from the solving layer (unknown solver, infeasible query,
    /// budget exceeded, …).
    Core(CoreError),
    /// An I/O failure while loading a graph from disk.
    Io(std::io::Error),
}

impl ServiceError {
    /// The stable machine-readable error code carried in error responses.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::BadRequest(_) => "bad_request",
            ServiceError::UnknownGraph { .. } => "unknown_graph",
            ServiceError::BadSource(_) => "bad_source",
            ServiceError::Overloaded { .. } | ServiceError::TooManyConnections { .. } => {
                "overloaded"
            }
            ServiceError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServiceError::ShuttingDown => "shutting_down",
            ServiceError::GraphEvicted { .. } => "graph_evicted",
            ServiceError::ShardUnavailable { .. } => "shard_unavailable",
            ServiceError::Core(e) => match e {
                CoreError::UnknownSolver { .. } => "unknown_solver",
                CoreError::BudgetExceeded { .. } => "budget_exceeded",
                CoreError::EmptyQuery
                | CoreError::QueryNotConnectable
                | CoreError::Graph(_)
                | CoreError::UnsupportedInstance { .. } => "infeasible",
                _ => "internal",
            },
            ServiceError::Io(_) => "io",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::UnknownGraph { requested, loaded } => write!(
                f,
                "no graph loaded under {requested:?} (loaded: {})",
                loaded.join(", ")
            ),
            ServiceError::BadSource(m) => write!(f, "bad graph source: {m}"),
            ServiceError::Overloaded { queue_capacity } => write!(
                f,
                "server overloaded: admission queue of {queue_capacity} is full"
            ),
            ServiceError::TooManyConnections { limit } => {
                write!(f, "server overloaded: connection limit {limit} reached")
            }
            ServiceError::DeadlineExceeded { queued_ms } => write!(
                f,
                "deadline expired after {queued_ms} ms in the queue; solve not started"
            ),
            ServiceError::ShuttingDown => write!(f, "server is shutting down"),
            ServiceError::GraphEvicted { name } => write!(
                f,
                "graph {name:?} was evicted while the request was queued; retry"
            ),
            ServiceError::ShardUnavailable { shard, reason } => {
                write!(f, "shard {shard:?} unavailable: {reason}")
            }
            ServiceError::Core(e) => write!(f, "{e}"),
            ServiceError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Core(e) => Some(e),
            ServiceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Core(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(ServiceError::BadRequest("x".into()).code(), "bad_request");
        assert_eq!(
            ServiceError::Overloaded { queue_capacity: 4 }.code(),
            "overloaded"
        );
        assert_eq!(
            ServiceError::Core(CoreError::EmptyQuery).code(),
            "infeasible"
        );
        assert_eq!(
            ServiceError::Core(CoreError::UnknownSolver {
                requested: "x".into(),
                available: vec![],
            })
            .code(),
            "unknown_solver"
        );
        assert_eq!(
            ServiceError::Core(CoreError::BudgetExceeded { size: 9, budget: 4 }).code(),
            "budget_exceeded"
        );
        assert_eq!(
            ServiceError::ShardUnavailable {
                shard: "s0".into(),
                reason: "connection refused".into(),
            }
            .code(),
            "shard_unavailable"
        );
        assert_eq!(
            ServiceError::GraphEvicted { name: "g".into() }.code(),
            "graph_evicted"
        );
    }
}
