//! `mwc-router`: the sharded front-end that makes N `mwc-server`
//! processes look like one catalog.
//!
//! # Architecture
//!
//! ```text
//!                       ┌────────────── mwc-router ──────────────┐
//! client ──TCP──▶ reader thread (1 per connection)               │
//!                       │  parse line → Request                  │
//!                       │  ping/shard/shutdown: answered locally │
//!                       │  solve/load/evict: ring lookup ────────┼──▶ shard A
//!                       │  batch: split by owning shard,         ├──▶ shard B
//!                       │         reassemble in request order    ├──▶ shard C
//!                       │  stats/graphs: fan out + merge         │
//!                       └──────────── pooled backend conns ──────┘
//! ```
//!
//! The router speaks the *same* newline-delimited JSON protocol on both
//! sides: clients do not change a byte for single-graph traffic, and the
//! backends are stock `mwc-server` processes — the id-translation
//! boundary inside each shard's `CatalogEntry` means a shard never needs
//! to know the ring exists. What the router owns:
//!
//! * **Replicated routing** — a deterministic [`HashRing`] over the
//!   shard names (virtual nodes, see [`crate::shard`]) maps every graph
//!   name to [`RouterConfig::replicas`] distinct shards. Reads (`solve`,
//!   `batch` entries, `cache_export`) pick among the healthy replicas by
//!   power-of-two-choices on in-flight load and *fall through* to the
//!   next replica on transport failure — `shard_unavailable` surfaces
//!   only when every copy is gone. Writes (`load`, `evict`) fan out to
//!   all replicas concurrently and report a per-replica ack list.
//! * **Live resharding** — the `reshard` control command adds and/or
//!   removes a shard. Before routing flips, every graph whose replica
//!   set gains a shard is streamed to the new owner — source spec *and*
//!   warm solve cache, via the backends' `cache_export` / seeded `load`
//!   commands — so a reshard never drops a graph below R−1 serving
//!   copies and the new owner starts warm, not cold.
//! * **Batch fan-out** — a `batch` whose entries span shards is split
//!   into per-shard sub-batches executed concurrently; the replies are
//!   reassembled into the original request order, with per-entry errors
//!   (including a dead shard's `shard_unavailable`) in place, so partial
//!   infrastructure failure degrades per query, not per batch.
//! * **Health** — each backend tracks consecutive failures; at
//!   [`RouterConfig::fail_threshold`] the shard is ejected and requests
//!   for its graphs fail fast with `shard_unavailable` instead of eating
//!   a connect timeout each. A reprobe thread pings ejected shards every
//!   [`RouterConfig::reprobe_interval`] and restores them on success —
//!   a restarted shard rejoins with no operator action.
//! * **Merged observability** — `stats` and `graphs` fan out to every
//!   live shard and come back as one document: an `aggregate` section
//!   (summed counters), a per-shard section, and the router's own
//!   counters; the `shard` command reports ring assignments (with
//!   replica sets) and health.
//!
//! Failure mapping is the contract the acceptance tests pin: any
//! transport failure talking to a shard — refused connection, EOF from a
//! killed process, read timeout — surfaces as the stable
//! `shard_unavailable` error code, never as a hang or a dropped
//! connection, and the surviving shards (and surviving replicas of each
//! graph) keep serving.

use std::io::Write;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::client::Client;
use crate::error::ServiceError;
use crate::json::Json;
use crate::protocol::{
    error_json, error_response, ok_response, parse_request, Command, Request, ShardChange,
    SolveParams,
};
use crate::server::{read_line_bounded, salvage_id, LineRead};
use crate::shard::{HashRing, DEFAULT_VNODES};
use crate::trace::next_trace_id;

/// One backend shard: its ring name and dial address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Ring name (what graph names are hashed against). Renaming a shard
    /// reshards it — keep names stable across restarts.
    pub name: String,
    /// `host:port` of the backend `mwc-server`.
    pub addr: String,
}

impl ShardSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, addr: impl Into<String>) -> ShardSpec {
        ShardSpec {
            name: name.into(),
            addr: addr.into(),
        }
    }
}

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Virtual nodes per shard on the ring (see [`crate::shard`]).
    pub vnodes: usize,
    /// Copies of every graph: each graph name maps to this many distinct
    /// shards (clamped to the shard count). Reads pick among the healthy
    /// replicas and fall through on failure; `load`/`evict` fan out to
    /// all of them. 1 (the default) is classic single-owner sharding.
    pub replicas: usize,
    /// Hard cap on a request line's length, in bytes.
    pub max_line_bytes: usize,
    /// Maximum concurrent client connections (one reader thread each).
    pub max_connections: usize,
    /// Socket poll interval: how quickly idle readers notice shutdown.
    pub poll_interval: Duration,
    /// Consecutive backend failures before a shard is ejected (requests
    /// then fail fast until a reprobe succeeds).
    pub fail_threshold: u32,
    /// How often ejected shards are reprobed with a `ping`.
    pub reprobe_interval: Duration,
    /// Dial timeout for new backend connections.
    pub connect_timeout: Duration,
    /// Read timeout on backend responses — bounds how long a wedged (not
    /// dead) shard can stall a forwarded request before it maps to
    /// `shard_unavailable`. Generous by default: legitimate solves can be
    /// slow.
    pub backend_timeout: Duration,
    /// Idle pooled connections kept per shard; beyond the cap, returned
    /// connections are closed instead of pooled (a client burst must not
    /// pin the backend's whole connection budget).
    pub max_idle_per_shard: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            vnodes: DEFAULT_VNODES,
            replicas: 1,
            max_line_bytes: 4 << 20,
            max_connections: 1024,
            poll_interval: Duration::from_millis(50),
            fail_threshold: 3,
            reprobe_interval: Duration::from_millis(500),
            connect_timeout: Duration::from_secs(1),
            backend_timeout: Duration::from_secs(30),
            max_idle_per_shard: 16,
        }
    }
}

/// Router-side counters (the backends keep their own full metrics; the
/// router only counts what it alone can see).
#[derive(Debug, Default)]
struct RouterMetrics {
    requests_total: AtomicU64,
    /// Requests forwarded to a backend (including fan-out sub-requests).
    forwarded_total: AtomicU64,
    /// Requests answered locally (ping/shard/stats/graphs/shutdown).
    local_total: AtomicU64,
    bad_request_total: AtomicU64,
    /// Requests (or batch entries) failed with `shard_unavailable`.
    shard_unavailable_total: AtomicU64,
    /// Reads answered by a later replica after an earlier one failed.
    read_fallthrough_total: AtomicU64,
    /// Completed `reshard` commands (routing actually flipped).
    reshards_total: AtomicU64,
    /// Graph copies streamed to a gaining shard during reshards.
    migrated_graphs_total: AtomicU64,
    /// Warm solve-cache entries imported by gaining shards.
    streamed_cache_entries_total: AtomicU64,
    connections_total: AtomicU64,
}

/// One backend shard: pooled connections plus health state.
#[derive(Debug)]
struct Backend {
    name: String,
    addr: String,
    /// Idle pooled connections (lockstep request/response each, so a
    /// checked-out connection is exclusively owned for one roundtrip).
    idle: Mutex<Vec<Client>>,
    consecutive_failures: AtomicU32,
    /// Set at `fail_threshold`; cleared by a successful reprobe (or any
    /// successful roundtrip).
    ejected: AtomicBool,
    /// Forwards currently in flight — the load signal the
    /// power-of-two-choices replica pick compares.
    in_flight: AtomicUsize,
    forwarded_total: AtomicU64,
    failed_total: AtomicU64,
}

impl Backend {
    fn new(name: String, addr: String) -> Backend {
        Backend {
            name,
            addr,
            idle: Mutex::new(Vec::new()),
            consecutive_failures: AtomicU32::new(0),
            ejected: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            forwarded_total: AtomicU64::new(0),
            failed_total: AtomicU64::new(0),
        }
    }

    fn healthy(&self) -> bool {
        !self.ejected.load(Ordering::SeqCst)
    }

    fn record_success(&self) {
        self.consecutive_failures.store(0, Ordering::SeqCst);
        self.ejected.store(false, Ordering::SeqCst);
    }

    fn record_failure(&self, threshold: u32) {
        let failures = self.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if failures >= threshold {
            self.ejected.store(true, Ordering::SeqCst);
        }
    }

    fn dial(&self, config: &RouterConfig) -> std::io::Result<Client> {
        let mut last = std::io::Error::new(
            std::io::ErrorKind::AddrNotAvailable,
            format!("{} resolves to no address", self.addr),
        );
        for addr in self.addr.as_str().to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, config.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(config.backend_timeout)).ok();
                    stream.set_write_timeout(Some(Duration::from_secs(10))).ok();
                    return Client::from_stream(stream);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn unavailable(&self, reason: impl Into<String>) -> ServiceError {
        ServiceError::ShardUnavailable {
            shard: self.name.clone(),
            reason: reason.into(),
        }
    }

    /// Forwards one raw request line and returns the backend's raw
    /// response line (trailing newline trimmed). A failure on a *pooled*
    /// connection gets one retry on a fresh dial — the backend may have
    /// closed the connection while it sat idle, which says nothing about
    /// the shard's health. A failure on a connection dialed for this very
    /// request is definitive: retrying would re-execute the request on a
    /// shard already known to be refusing or wedged, and double the stall
    /// a wedged shard can inflict. Definitive failures map to
    /// [`ServiceError::ShardUnavailable`] and count against health.
    fn forward(&self, config: &RouterConfig, line: &str) -> Result<String, ServiceError> {
        if !self.healthy() {
            return Err(self.unavailable(format!(
                "ejected after {} consecutive failures; awaiting reprobe",
                self.consecutive_failures.load(Ordering::SeqCst)
            )));
        }
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        let result = self.forward_inner(config, line);
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        result
    }

    fn forward_inner(&self, config: &RouterConfig, line: &str) -> Result<String, ServiceError> {
        self.forwarded_total.fetch_add(1, Ordering::Relaxed);
        // Bind the pop so the pool guard drops *here* — scrutinee
        // temporaries live for the whole `if let` body, and `give_back`
        // re-locks the pool (a self-deadlock the loopback suite catches).
        let pooled = self.idle.lock().expect("backend pool poisoned").pop();
        if let Some(mut conn) = pooled {
            // A pooled-connection failure is retried below on a fresh
            // dial — the backend may have closed it while it sat idle.
            if let Ok(response) = self.roundtrip(&mut conn, line) {
                self.give_back(config, conn);
                return Ok(response);
            }
        }
        let outcome = match self.dial(config) {
            Ok(mut conn) => match self.roundtrip(&mut conn, line) {
                Ok(response) => {
                    self.give_back(config, conn);
                    return Ok(response);
                }
                Err(e) => e,
            },
            Err(e) => format!("connect: {e}"),
        };
        self.failed_total.fetch_add(1, Ordering::Relaxed);
        self.record_failure(config.fail_threshold);
        Err(self.unavailable(outcome))
    }

    fn roundtrip(&self, conn: &mut Client, line: &str) -> Result<String, String> {
        match conn.roundtrip_line(line) {
            Ok(response) => {
                self.record_success();
                Ok(response.trim_end().to_string())
            }
            // The connection is in an unknown state: the caller drops it.
            Err(e) => Err(e.to_string()),
        }
    }

    /// Returns a healthy connection to the idle pool, bounded by
    /// [`RouterConfig::max_idle_per_shard`] — beyond the cap the
    /// connection is simply closed, so a burst of router clients cannot
    /// permanently pin sockets against the backend (whose own connection
    /// limit would otherwise start refusing dials, including reprobes).
    fn give_back(&self, config: &RouterConfig, conn: Client) {
        let mut idle = self.idle.lock().expect("backend pool poisoned");
        if idle.len() < config.max_idle_per_shard {
            idle.push(conn);
        }
    }

    /// A cheap liveness probe on a fresh connection (used by the reprobe
    /// thread with a short read timeout so probing never lags the loop).
    fn probe(&self, config: &RouterConfig) -> bool {
        let probe_config = RouterConfig {
            backend_timeout: config.connect_timeout.max(Duration::from_millis(250)),
            ..config.clone()
        };
        let Ok(mut conn) = self.dial(&probe_config) else {
            return false;
        };
        match conn.roundtrip_line(r#"{"cmd":"ping"}"#) {
            Ok(response) if response.contains("\"ok\":true") => {
                self.record_success();
                true
            }
            _ => false,
        }
    }

    fn health_json(&self) -> Json {
        Json::obj([
            ("addr", Json::from(self.addr.as_str())),
            ("healthy", Json::Bool(self.healthy())),
            (
                "consecutive_failures",
                Json::from(self.consecutive_failures.load(Ordering::SeqCst) as u64),
            ),
            (
                "in_flight",
                Json::from(self.in_flight.load(Ordering::Relaxed) as u64),
            ),
            (
                "forwarded",
                Json::from(self.forwarded_total.load(Ordering::Relaxed)),
            ),
            (
                "failed",
                Json::from(self.failed_total.load(Ordering::Relaxed)),
            ),
        ])
    }
}

/// One immutable routing epoch: the ring plus the backends lined up with
/// it. `reshard` builds a whole new table and swaps it in atomically;
/// every request snapshots the current table once, so a mid-request flip
/// never mixes epochs. Retained shards keep their [`Backend`] (pools,
/// health, counters) across the swap via the `Arc`.
struct RouteTable {
    ring: HashRing,
    /// Indexed identically to `ring.shards()`.
    backends: Vec<Arc<Backend>>,
}

impl RouteTable {
    /// The replica set serving `graph`, primary first (see
    /// [`HashRing::route_replicas`]).
    fn replicas_for(&self, graph: &str, replicas: usize) -> Vec<Arc<Backend>> {
        self.ring
            .route_replicas(graph, replicas.max(1))
            .into_iter()
            .map(|i| Arc::clone(&self.backends[i]))
            .collect()
    }
}

struct Inner {
    /// The live routing epoch; swapped whole by `reshard`.
    routes: RwLock<Arc<RouteTable>>,
    config: RouterConfig,
    metrics: RouterMetrics,
    shutdown: AtomicBool,
    /// Round-robin cursor: spreads `burn` and seeds the two-choice pick.
    round_robin: AtomicUsize,
    /// Serializes `reshard` commands — concurrent migrations over the
    /// same table would race the flip.
    reshard_gate: Mutex<()>,
}

impl Inner {
    /// Snapshots the current routing epoch (cheap: one `Arc` clone).
    fn table(&self) -> Arc<RouteTable> {
        Arc::clone(&self.routes.read().expect("route table poisoned"))
    }

    /// Orders a replica set for a read: healthy replicas first, with the
    /// front slot decided by power-of-two-choices — two distinct healthy
    /// candidates, the one with fewer forwards in flight wins. Ejected
    /// replicas go last: they fail fast and definitively, which is
    /// exactly what the final fall-through attempt should do.
    fn read_order(&self, candidates: Vec<Arc<Backend>>) -> Vec<Arc<Backend>> {
        let (mut healthy, ejected): (Vec<_>, Vec<_>) =
            candidates.into_iter().partition(|b| b.healthy());
        if healthy.len() >= 2 {
            let seq = self.round_robin.fetch_add(1, Ordering::Relaxed) as u64;
            let n = healthy.len() as u64;
            let a = (seq % n) as usize;
            // A second, distinct candidate from a mixed rehash of the
            // sequence number (no RNG needed for two-choice balance).
            let b = {
                let off = 1 + (seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) % (n - 1);
                ((a as u64 + off) % n) as usize
            };
            let pick = if healthy[b].in_flight.load(Ordering::Relaxed)
                < healthy[a].in_flight.load(Ordering::Relaxed)
            {
                b
            } else {
                a
            };
            healthy.swap(0, pick);
        }
        healthy.extend(ejected);
        healthy
    }

    /// The next healthy backend in round-robin order (for `burn`), or any
    /// backend if all are ejected (the forward will fail with the right
    /// error).
    fn round_robin_backend(&self, table: &RouteTable) -> Arc<Backend> {
        let n = table.backends.len();
        let start = self.round_robin.fetch_add(1, Ordering::Relaxed);
        for off in 0..n {
            let b = &table.backends[(start + off) % n];
            if b.healthy() {
                return Arc::clone(b);
            }
        }
        Arc::clone(&table.backends[start % n])
    }
}

/// A running router: its address and every thread it spawned. Stop it
/// with [`RouterHandle::shutdown`] (or let a protocol `shutdown` command
/// initiate the drain and [`RouterHandle::wait`] for it). Shutting the
/// router down does **not** stop the backend shards.
pub struct RouterHandle {
    inner: Arc<Inner>,
    addr: std::net::SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    reprober: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Binds `addr` and starts routing for `shards` (name + backend address
/// each). Shard names must be unique; the ring is deterministic in the
/// set of names, so every router over the same shards routes identically.
pub fn start(
    shards: Vec<ShardSpec>,
    config: RouterConfig,
    addr: impl ToSocketAddrs,
) -> std::io::Result<RouterHandle> {
    if shards.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "a router needs at least one shard",
        ));
    }
    let mut names: Vec<&str> = shards.iter().map(|s| s.name.as_str()).collect();
    names.sort_unstable();
    if names.windows(2).any(|w| w[0] == w[1]) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "duplicate shard names",
        ));
    }
    let ring = HashRing::new(shards.iter().map(|s| s.name.clone()), config.vnodes.max(1));
    // `ring.shards()` is sorted; line the backends up with it.
    let backends: Vec<Arc<Backend>> = ring
        .shards()
        .iter()
        .map(|name| {
            let spec = shards
                .iter()
                .find(|s| &s.name == name)
                .expect("ring names come from the specs");
            Arc::new(Backend::new(spec.name.clone(), spec.addr.clone()))
        })
        .collect();

    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let inner = Arc::new(Inner {
        routes: RwLock::new(Arc::new(RouteTable { ring, backends })),
        config,
        metrics: RouterMetrics::default(),
        shutdown: AtomicBool::new(false),
        round_robin: AtomicUsize::new(0),
        reshard_gate: Mutex::new(()),
    });

    let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let acceptor = {
        let inner = Arc::clone(&inner);
        let readers = Arc::clone(&readers);
        std::thread::Builder::new()
            .name("mwc-router-acceptor".to_string())
            .spawn(move || acceptor_loop(&inner, &listener, &readers))
            .expect("spawn router acceptor")
    };
    let reprober = {
        let inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("mwc-router-reprobe".to_string())
            .spawn(move || reprobe_loop(&inner))
            .expect("spawn router reprober")
    };

    Ok(RouterHandle {
        inner,
        addr,
        acceptor: Some(acceptor),
        reprober: Some(reprober),
        readers,
    })
}

impl RouterHandle {
    /// The bound address (port resolved if `:0` was requested).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// A snapshot of the routing ring (shard assignment is
    /// `ring().route(graph)`). A clone, not a borrow: `reshard` swaps
    /// the live ring out from under long-lived references.
    pub fn ring(&self) -> HashRing {
        self.inner.table().ring.clone()
    }

    /// The configured replication factor (clamped to the shard count at
    /// routing time).
    pub fn replicas(&self) -> usize {
        self.inner.config.replicas.max(1)
    }

    /// Whether shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Initiates a graceful shutdown and joins every thread. Backends are
    /// left running.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        self.join_all();
    }

    /// Serves until a protocol `shutdown` command arrives, then joins.
    pub fn wait(mut self) {
        while !self.inner.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.join_all();
    }

    fn begin_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    fn join_all(&mut self) {
        // Unblock the acceptor's blocking `accept` with a no-op connect.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(reprober) = self.reprober.take() {
            let _ = reprober.join();
        }
        let readers: Vec<JoinHandle<()>> = self
            .readers
            .lock()
            .expect("router reader registry poisoned")
            .drain(..)
            .collect();
        for r in readers {
            let _ = r.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.begin_shutdown();
            self.join_all();
        }
    }
}

fn acceptor_loop(
    inner: &Arc<Inner>,
    listener: &TcpListener,
    readers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let mut registry = readers.lock().expect("router reader registry poisoned");
        registry.retain(|h| !h.is_finished());
        if registry.len() >= inner.config.max_connections {
            drop(registry);
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let line = error_response(
                &None,
                &ServiceError::TooManyConnections {
                    limit: inner.config.max_connections,
                },
            );
            let _ = stream.write_all(line.as_bytes());
            let _ = stream.write_all(b"\n");
            continue;
        }
        inner
            .metrics
            .connections_total
            .fetch_add(1, Ordering::Relaxed);
        let inner2 = Arc::clone(inner);
        let handle = std::thread::Builder::new()
            .name("mwc-router-conn".to_string())
            .spawn(move || serve_connection(&inner2, stream))
            .expect("spawn router connection reader");
        registry.push(handle);
    }
}

fn reprobe_loop(inner: &Arc<Inner>) {
    // Sleep in poll-sized slices so shutdown joins promptly even with a
    // long reprobe interval.
    let mut since_probe = Duration::ZERO;
    let step = inner.config.poll_interval.max(Duration::from_millis(10));
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(step);
        since_probe += step;
        if since_probe < inner.config.reprobe_interval {
            continue;
        }
        since_probe = Duration::ZERO;
        let table = inner.table();
        for backend in table.backends.iter().filter(|b| !b.healthy()) {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            backend.probe(&inner.config);
        }
    }
}

fn write_raw(out: &Mutex<TcpStream>, line: &str) {
    // One write per response (see the server's `write_line`: two small
    // writes would re-trigger the Nagle/delayed-ACK stall the sockets'
    // nodelay setting avoids).
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    let mut stream = out.lock().expect("router connection write lock poisoned");
    let _ = stream.write_all(&buf);
    let _ = stream.flush();
}

fn serve_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(inner.config.poll_interval));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let out = Mutex::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut reader = std::io::BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match read_line_bounded(
            &mut reader,
            &mut buf,
            inner.config.max_line_bytes,
            &inner.shutdown,
        ) {
            LineRead::Eof | LineRead::Closed => return,
            LineRead::TooLong => {
                inner.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                inner
                    .metrics
                    .bad_request_total
                    .fetch_add(1, Ordering::Relaxed);
                let err = ServiceError::BadRequest(format!(
                    "request line exceeds {} bytes",
                    inner.config.max_line_bytes
                ));
                write_raw(&out, &error_response(&None, &err));
                return; // framing is lost; drop the connection
            }
            LineRead::Line => {}
        }
        let line = match std::str::from_utf8(&buf) {
            Ok(line) => line,
            Err(_) => {
                inner.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                inner
                    .metrics
                    .bad_request_total
                    .fetch_add(1, Ordering::Relaxed);
                let err = ServiceError::BadRequest("request line is not UTF-8".to_string());
                write_raw(&out, &error_response(&None, &err));
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        inner.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
        let request = match parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                inner
                    .metrics
                    .bad_request_total
                    .fetch_add(1, Ordering::Relaxed);
                write_raw(&out, &error_response(&salvage_id(line), &e));
                continue;
            }
        };
        if handle_request(inner, &out, line, request) {
            return; // shutdown requested on this connection
        }
    }
}

/// Handles one parsed request; returns `true` when the connection should
/// close (router shutdown).
fn handle_request(
    inner: &Arc<Inner>,
    out: &Mutex<TcpStream>,
    line: &str,
    request: Request,
) -> bool {
    let id = request.id.clone();
    let metrics = &inner.metrics;
    let replicas = inner.config.replicas.max(1);
    match request.command {
        Command::Ping => {
            metrics.local_total.fetch_add(1, Ordering::Relaxed);
            write_raw(out, &ok_response(&id, vec![("pong", Json::Bool(true))]));
        }
        Command::Shutdown => {
            metrics.local_total.fetch_add(1, Ordering::Relaxed);
            // Flag before acknowledging (see the server's shutdown arm).
            inner.shutdown.store(true, Ordering::SeqCst);
            write_raw(out, &ok_response(&id, vec![("stopping", Json::Bool(true))]));
            return true;
        }
        Command::Shard { graph } => {
            metrics.local_total.fetch_add(1, Ordering::Relaxed);
            write_raw(
                out,
                &ok_response(&id, shard_payload(inner, graph.as_deref())),
            );
        }
        Command::Reshard {
            ref add,
            ref remove,
        } => {
            metrics.local_total.fetch_add(1, Ordering::Relaxed);
            match handle_reshard(inner, add.as_ref(), remove.as_deref()) {
                Ok(payload) => write_raw(out, &ok_response(&id, payload)),
                Err(e) => write_raw(out, &error_response(&id, &e)),
            }
        }
        Command::Stats => {
            metrics.local_total.fetch_add(1, Ordering::Relaxed);
            write_raw(out, &ok_response(&id, vec![("stats", merged_stats(inner))]));
        }
        Command::Graphs => {
            metrics.local_total.fetch_add(1, Ordering::Relaxed);
            write_raw(out, &ok_response(&id, merged_graphs(inner)));
        }
        Command::Metrics => {
            metrics.local_total.fetch_add(1, Ordering::Relaxed);
            write_raw(
                out,
                &ok_response(&id, vec![("text", Json::Str(router_prometheus(inner)))]),
            );
        }
        Command::Slowlog { limit } => {
            metrics.local_total.fetch_add(1, Ordering::Relaxed);
            write_raw(out, &ok_response(&id, merged_slowlog(inner, limit)));
        }
        Command::Solve { ref params, .. } if params.trace => {
            let table = inner.table();
            let candidates = inner.read_order(table.replicas_for(&params.graph, replicas));
            relay_read_traced(inner, out, &candidates, line, &id, params);
        }
        Command::Solve { ref params, .. } => {
            let table = inner.table();
            let candidates = inner.read_order(table.replicas_for(&params.graph, replicas));
            relay_read(inner, out, &candidates, line, &id);
        }
        Command::CacheExport { ref name } => {
            let table = inner.table();
            let candidates = inner.read_order(table.replicas_for(name, replicas));
            relay_read(inner, out, &candidates, line, &id);
        }
        Command::Load { ref name, .. } => {
            let table = inner.table();
            relay_write(inner, out, &table.replicas_for(name, replicas), line, &id);
        }
        Command::Evict { ref name } => {
            let table = inner.table();
            relay_write(inner, out, &table.replicas_for(name, replicas), line, &id);
        }
        Command::Burn { .. } => {
            let table = inner.table();
            let backend = inner.round_robin_backend(&table);
            relay_read(inner, out, &[backend], line, &id);
        }
        Command::Batch { params, queries } => {
            handle_batch(inner, out, &id, &params, &queries);
        }
    }
    false
}

/// Forwards `line` to the first answering replica (candidates in
/// [`Inner::read_order`]) and relays its response line verbatim (ids
/// pass through untouched). A transport failure *falls through* to the
/// next replica; only when every copy failed does the client see one
/// synthesized `shard_unavailable`.
fn relay_read(
    inner: &Arc<Inner>,
    out: &Mutex<TcpStream>,
    candidates: &[Arc<Backend>],
    line: &str,
    id: &Option<Json>,
) {
    inner
        .metrics
        .forwarded_total
        .fetch_add(1, Ordering::Relaxed);
    let mut last: Option<ServiceError> = None;
    for (attempt, backend) in candidates.iter().enumerate() {
        match backend.forward(&inner.config, line) {
            Ok(response) => {
                if attempt > 0 {
                    inner
                        .metrics
                        .read_fallthrough_total
                        .fetch_add(attempt as u64, Ordering::Relaxed);
                }
                write_raw(out, &response);
                return;
            }
            Err(e) => last = Some(e),
        }
    }
    inner
        .metrics
        .shard_unavailable_total
        .fetch_add(1, Ordering::Relaxed);
    let err = last.expect("a replica set is never empty");
    write_raw(out, &error_response(id, &err));
}

/// Forwards a traced `solve` with the same replica fall-through as
/// [`relay_read`]: pins the trace id (generated here when the client did
/// not send one) into the forwarded line so the shard's spans carry the
/// same id, then nests the answering shard's span tree under
/// router-built `route`/`backend_rtt` spans. Span offsets inside the
/// shard's subtree are relative to the *shard's* read instant (clocks
/// are not synchronized across processes); durations compose — the
/// shard's root is ≤ `backend_rtt`, which is ≤ `route`.
fn relay_read_traced(
    inner: &Arc<Inner>,
    out: &Mutex<TcpStream>,
    candidates: &[Arc<Backend>],
    line: &str,
    id: &Option<Json>,
    params: &SolveParams,
) {
    inner
        .metrics
        .forwarded_total
        .fetch_add(1, Ordering::Relaxed);
    let t0 = Instant::now();
    let trace_id = params.trace_id.clone().unwrap_or_else(next_trace_id);
    let fwd = match crate::json::parse(line) {
        Ok(Json::Obj(mut fields)) => {
            fields.insert("trace_id".to_string(), Json::from(trace_id.as_str()));
            Json::Obj(fields).to_string()
        }
        // parse_request already accepted the line; only reachable if the
        // two parsers disagree — forward untouched rather than fail.
        _ => line.to_string(),
    };
    let mut last: Option<ServiceError> = None;
    for (attempt, backend) in candidates.iter().enumerate() {
        let t_fwd = Instant::now();
        match backend.forward(&inner.config, &fwd) {
            Ok(response) => {
                if attempt > 0 {
                    inner
                        .metrics
                        .read_fallthrough_total
                        .fetch_add(attempt as u64, Ordering::Relaxed);
                }
                let rtt = t_fwd.elapsed();
                write_raw(
                    out,
                    &wrap_routed_trace(&response, &trace_id, backend, t0, t_fwd, rtt),
                );
                return;
            }
            Err(e) => last = Some(e),
        }
    }
    inner
        .metrics
        .shard_unavailable_total
        .fetch_add(1, Ordering::Relaxed);
    let err = last.expect("a replica set is never empty");
    write_raw(out, &error_response(id, &err));
}

/// Fans a write (`load`/`evict`) out to *every* replica concurrently and
/// reports per-replica acks. The response keeps the first successful
/// backend's payload verbatim (so single-replica deployments see exactly
/// the old shape) plus a `"replicas"` ack array; the request fails only
/// when every replica refused it.
fn relay_write(
    inner: &Arc<Inner>,
    out: &Mutex<TcpStream>,
    replicas: &[Arc<Backend>],
    line: &str,
    id: &Option<Json>,
) {
    inner
        .metrics
        .forwarded_total
        .fetch_add(replicas.len() as u64, Ordering::Relaxed);
    let outcomes: Vec<(&Arc<Backend>, Result<String, ServiceError>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = replicas
                .iter()
                .map(|backend| scope.spawn(move || (backend, backend.forward(&inner.config, line))))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("write fan-out worker panicked"))
                .collect()
        });
    let mut acks: Vec<Json> = Vec::new();
    let mut base: Option<Json> = None; // first successful payload
    let mut first_error: Option<Json> = None;
    for (backend, outcome) in outcomes {
        let verdict = outcome.map_err(|e| error_json(&e)).and_then(|response| {
            match crate::json::parse(&response) {
                Ok(v) if v.get("ok").and_then(Json::as_bool) == Some(true) => Ok(v),
                Ok(v) => Err(v.get("error").cloned().unwrap_or(Json::Null)),
                Err(e) => Err(error_json(
                    &backend.unavailable(format!("unparseable backend response: {e}")),
                )),
            }
        });
        match verdict {
            Ok(v) => {
                let mut ack = vec![
                    ("shard", Json::from(backend.name.as_str())),
                    ("ok", Json::Bool(true)),
                ];
                if let Some(imported) = v.get("cache_imported") {
                    ack.push(("cache_imported", imported.clone()));
                }
                acks.push(Json::obj(ack));
                if base.is_none() {
                    base = Some(v);
                }
            }
            Err(err) => {
                inner
                    .metrics
                    .shard_unavailable_total
                    .fetch_add(1, Ordering::Relaxed);
                acks.push(Json::obj([
                    ("shard", Json::from(backend.name.as_str())),
                    ("ok", Json::Bool(false)),
                    ("error", err.clone()),
                ]));
                if first_error.is_none() {
                    first_error = Some(err);
                }
            }
        }
    }
    match base {
        Some(Json::Obj(mut fields)) => {
            // The backend already echoed the client's id (the line went
            // through verbatim); just attach the ack list.
            fields.insert("replicas".to_string(), Json::Arr(acks));
            write_raw(out, &Json::Obj(fields).to_string());
        }
        _ => {
            let err = first_error.expect("a replica set is never empty");
            let mut fields: Vec<(&'static str, Json)> = vec![
                ("ok", Json::Bool(false)),
                ("error", err),
                ("replicas", Json::Arr(acks)),
            ];
            if let Some(v) = id {
                fields.push(("id", v.clone()));
            }
            write_raw(out, &Json::obj(fields).to_string());
        }
    }
}

/// The `reshard` control command: applies an `add` and/or `remove` to
/// the shard set, migrates every affected graph *before* flipping
/// routing, then drops the copies no longer in any replica set.
///
/// Migration streams two things per gaining shard, straight between
/// backends: the graph's source spec and its warm solve cache (the old
/// owner's `cache_export` feeds the new owner's seeded `load`). Routing
/// flips only after every gaining copy acked its load, so a reshard
/// never drops a graph below R−1 serving copies and the new owner
/// answers its first solve from cache, not cold.
///
/// Failure contract: a gaining shard that cannot take a copy (while a
/// healthy source exists) aborts the whole reshard with
/// `shard_unavailable` — the old table keeps serving untouched. A graph
/// with *no* healthy source (e.g. removing a dead single-replica owner)
/// cannot be saved; it is reported under `"lost"` and routing still
/// flips, so the operator can re-`load` it.
///
/// Writes racing the migration window land on the *old* replica set; a
/// graph loaded mid-reshard may need a re-`load` after the flip. The
/// gate serializes reshards themselves.
fn handle_reshard(
    inner: &Arc<Inner>,
    add: Option<&ShardChange>,
    remove: Option<&str>,
) -> Result<Vec<(&'static str, Json)>, ServiceError> {
    let _gate = inner.reshard_gate.lock().expect("reshard gate poisoned");
    let old = inner.table();

    // The new shard set: current names ± the requested change.
    let mut specs: Vec<(String, String)> = old
        .backends
        .iter()
        .map(|b| (b.name.clone(), b.addr.clone()))
        .collect();
    if let Some(name) = remove {
        let before = specs.len();
        specs.retain(|(n, _)| n != name);
        if specs.len() == before {
            return Err(ServiceError::BadRequest(format!(
                "no shard named {name:?} on the ring"
            )));
        }
    }
    if let Some(change) = add {
        if specs.iter().any(|(n, _)| *n == change.name) {
            return Err(ServiceError::BadRequest(format!(
                "shard {:?} is already on the ring",
                change.name
            )));
        }
        specs.push((change.name.clone(), change.addr.clone()));
    }
    if specs.is_empty() {
        return Err(ServiceError::BadRequest(
            "reshard would leave an empty ring".to_string(),
        ));
    }

    let ring = HashRing::new(
        specs.iter().map(|(n, _)| n.clone()),
        inner.config.vnodes.max(1),
    );
    let backends: Vec<Arc<Backend>> = ring
        .shards()
        .iter()
        .map(|name| {
            // Retained shards keep their Backend: pools, health state,
            // and counters survive the flip.
            old.backends
                .iter()
                .find(|b| &b.name == name)
                .cloned()
                .unwrap_or_else(|| {
                    let addr = specs
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, a)| a.clone())
                        .expect("ring names come from the specs");
                    Arc::new(Backend::new(name.clone(), addr))
                })
        })
        .collect();
    let new = Arc::new(RouteTable { ring, backends });

    // Every graph the old fleet serves (replica copies dedupe by name).
    let mut graphs: Vec<String> = Vec::new();
    for (_, outcome) in fan_out_all(inner, &old, r#"{"cmd":"graphs"}"#) {
        let Ok(response) = outcome else { continue };
        let listed = crate::json::parse(&response)
            .ok()
            .and_then(|v| v.get("graphs").cloned());
        if let Some(Json::Arr(entries)) = listed {
            for e in &entries {
                if let Some(name) = e.get("name").and_then(Json::as_str) {
                    graphs.push(name.to_string());
                }
            }
        }
    }
    graphs.sort_unstable();
    graphs.dedup();

    let r = inner.config.replicas.max(1);
    let mut migrated: Vec<Json> = Vec::new();
    let mut lost: Vec<Json> = Vec::new();
    let mut migrated_graph_count = 0u64;
    let mut streamed_entries = 0u64;
    for graph in &graphs {
        let old_set = old.replicas_for(graph, r);
        let new_set = new.replicas_for(graph, r);
        let gaining: Vec<&Arc<Backend>> = new_set
            .iter()
            .filter(|nb| old_set.iter().all(|ob| ob.name != nb.name))
            .collect();
        if gaining.is_empty() {
            continue;
        }

        // Stream source spec + warm cache out of a surviving copy.
        let export_line = Json::obj([
            ("cmd", Json::from("cache_export")),
            ("name", Json::from(graph.as_str())),
        ])
        .to_string();
        let export = old_set.iter().filter(|b| b.healthy()).find_map(|b| {
            let response = b.forward(&inner.config, &export_line).ok()?;
            let v = crate::json::parse(&response).ok()?;
            (v.get("ok").and_then(Json::as_bool) == Some(true)).then_some(v)
        });
        let Some(doc) = export else {
            lost.push(Json::obj([
                ("graph", Json::from(graph.as_str())),
                ("reason", Json::from("no healthy replica to stream from")),
            ]));
            continue;
        };
        let source = doc
            .get("source")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let entries = match doc.get("entries") {
            Some(Json::Arr(seeds)) => seeds.clone(),
            _ => Vec::new(),
        };
        let load_line = Json::obj([
            ("cmd", Json::from("load")),
            ("name", Json::from(graph.as_str())),
            ("source", Json::from(source.as_str())),
            ("cache", Json::Arr(entries)),
        ])
        .to_string();
        for nb in &gaining {
            let outcome = nb
                .forward(&inner.config, &load_line)
                .map_err(|e| e.to_string())
                .and_then(|response| {
                    let v = crate::json::parse(&response).map_err(|e| e.to_string())?;
                    if v.get("ok").and_then(Json::as_bool) == Some(true) {
                        Ok(v)
                    } else {
                        Err(v
                            .get("error")
                            .and_then(|e| e.get("message"))
                            .and_then(Json::as_str)
                            .unwrap_or("backend refused the load")
                            .to_string())
                    }
                });
            match outcome {
                Ok(v) => {
                    let imported = v.get("cache_imported").and_then(Json::as_u64).unwrap_or(0);
                    streamed_entries += imported;
                    migrated.push(Json::obj([
                        ("graph", Json::from(graph.as_str())),
                        ("to", Json::from(nb.name.as_str())),
                        ("cache_entries", Json::from(imported)),
                    ]));
                }
                // A healthy copy exists but the gaining shard cannot
                // take it: abort without flipping — the old table keeps
                // serving every graph at full strength.
                Err(reason) => {
                    return Err(ServiceError::ShardUnavailable {
                        shard: nb.name.clone(),
                        reason: format!("reshard aborted migrating {graph:?}: {reason}"),
                    })
                }
            }
        }
        migrated_graph_count += 1;
    }

    // Flip. Requests snapshot the table once each, so in-flight reads
    // finish on the old epoch while new ones route on the new — and the
    // gaining copies are already loaded and warm.
    *inner.routes.write().expect("route table poisoned") = Arc::clone(&new);
    inner.metrics.reshards_total.fetch_add(1, Ordering::Relaxed);
    inner
        .metrics
        .migrated_graphs_total
        .fetch_add(migrated_graph_count, Ordering::Relaxed);
    inner
        .metrics
        .streamed_cache_entries_total
        .fetch_add(streamed_entries, Ordering::Relaxed);

    // Drop the copies no longer in any replica set (best effort, after
    // the flip: a failed evict strands memory, never correctness).
    let mut evicted_copies = 0u64;
    for graph in &graphs {
        let new_set = new.replicas_for(graph, r);
        for ob in old.replicas_for(graph, r) {
            if new_set.iter().any(|nb| nb.name == ob.name) || !ob.healthy() {
                continue;
            }
            let evict_line = Json::obj([
                ("cmd", Json::from("evict")),
                ("name", Json::from(graph.as_str())),
            ])
            .to_string();
            if ob.forward(&inner.config, &evict_line).is_ok() {
                evicted_copies += 1;
            }
        }
    }

    Ok(vec![
        ("resharded", Json::Bool(true)),
        (
            "shards",
            Json::Arr(
                new.ring
                    .shards()
                    .iter()
                    .map(|s| Json::from(s.as_str()))
                    .collect(),
            ),
        ),
        ("graphs", Json::from(graphs.len() as u64)),
        ("migrated", Json::Arr(migrated)),
        ("streamed_cache_entries", Json::from(streamed_entries)),
        ("evicted_copies", Json::from(evicted_copies)),
        ("lost", Json::Arr(lost)),
    ])
}

/// Rewrites a traced backend response: the shard's span tree (if any) is
/// re-rooted under the router's `route` → `backend_rtt` spans, keeping
/// every other response field (id included) untouched. Responses that do
/// not parse or carry no trace relay verbatim.
fn wrap_routed_trace(
    response: &str,
    trace_id: &str,
    backend: &Backend,
    t0: Instant,
    t_fwd: Instant,
    rtt: Duration,
) -> String {
    let Ok(Json::Obj(mut fields)) = crate::json::parse(response) else {
        return response.to_string();
    };
    let shard_trace = fields.remove("trace");
    let (shard_root, dropped) = match &shard_trace {
        Some(t) => (
            t.get("root").cloned().unwrap_or(Json::Null),
            t.get("dropped").and_then(Json::as_u64).unwrap_or(0),
        ),
        None => (Json::Null, 0),
    };
    let mut rtt_children = Vec::new();
    if !matches!(shard_root, Json::Null) {
        rtt_children.push(shard_root);
    }
    let rtt_node = Json::obj([
        ("name", Json::from("backend_rtt")),
        (
            "start_us",
            Json::from(t_fwd.duration_since(t0).as_micros() as u64),
        ),
        ("dur_us", Json::from(rtt.as_micros() as u64)),
        ("shard", Json::from(backend.name.as_str())),
        ("children", Json::Arr(rtt_children)),
    ]);
    let root = Json::obj([
        ("name", Json::from("route")),
        ("start_us", Json::from(0u64)),
        ("dur_us", Json::from(t0.elapsed().as_micros() as u64)),
        ("children", Json::Arr(vec![rtt_node])),
    ]);
    fields.insert(
        "trace".to_string(),
        Json::obj([
            ("trace_id", Json::from(trace_id)),
            ("dropped", Json::from(dropped)),
            ("root", root),
        ]),
    );
    Json::Obj(fields).to_string()
}

/// Fans `slowlog` out to every shard and merges the rings: entries are
/// annotated with their shard, ordered slowest-first, and capped at
/// `limit` after the merge (each shard also applied it, bounding the
/// transfer). Unreachable shards are listed, so a partial merge is
/// visibly partial.
fn merged_slowlog(inner: &Arc<Inner>, limit: Option<usize>) -> Vec<(&'static str, Json)> {
    let line = match limit {
        Some(l) => format!(r#"{{"cmd":"slowlog","limit":{l}}}"#),
        None => r#"{"cmd":"slowlog"}"#.to_string(),
    };
    let table = inner.table();
    let mut entries: Vec<Json> = Vec::new();
    let mut unavailable: Vec<Json> = Vec::new();
    for (backend, outcome) in fan_out_all(inner, &table, &line) {
        match outcome {
            Ok(response) => {
                let listed = crate::json::parse(&response)
                    .ok()
                    .and_then(|v| v.get("entries").cloned());
                if let Some(Json::Arr(es)) = listed {
                    for mut e in es {
                        if let Json::Obj(f) = &mut e {
                            f.insert("shard".to_string(), Json::from(backend.name.as_str()));
                        }
                        entries.push(e);
                    }
                }
            }
            // Merges degrade, they don't fail: the response still
            // succeeds, so the client-facing shard_unavailable counter
            // is left alone.
            Err(_) => {
                unavailable.push(Json::from(backend.name.as_str()));
            }
        }
    }
    entries.sort_by(|a, b| {
        let ms = |e: &Json| e.get("total_ms").and_then(Json::as_f64).unwrap_or(0.0);
        ms(b)
            .partial_cmp(&ms(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    if let Some(l) = limit {
        entries.truncate(l);
    }
    vec![
        ("entries", Json::Arr(entries)),
        ("shards_unavailable", Json::Arr(unavailable)),
    ]
}

/// Prometheus text exposition of the router's own counters and per-shard
/// health (the shards serve their full exposition themselves on their
/// `metrics` command).
fn router_prometheus(inner: &Arc<Inner>) -> String {
    let m = &inner.metrics;
    let mut out = String::new();
    let mut counter = |name: &str, help: &str, v: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
        ));
    };
    counter(
        "mwc_router_requests_total",
        "Requests read by the router.",
        m.requests_total.load(Ordering::Relaxed),
    );
    counter(
        "mwc_router_forwarded_total",
        "Requests forwarded to a backend shard.",
        m.forwarded_total.load(Ordering::Relaxed),
    );
    counter(
        "mwc_router_local_total",
        "Requests answered by the router itself.",
        m.local_total.load(Ordering::Relaxed),
    );
    counter(
        "mwc_router_bad_request_total",
        "Requests rejected as malformed.",
        m.bad_request_total.load(Ordering::Relaxed),
    );
    counter(
        "mwc_router_shard_unavailable_total",
        "Requests or batch entries failed with shard_unavailable.",
        m.shard_unavailable_total.load(Ordering::Relaxed),
    );
    counter(
        "mwc_router_read_fallthrough_total",
        "Reads answered by a later replica after an earlier one failed.",
        m.read_fallthrough_total.load(Ordering::Relaxed),
    );
    counter(
        "mwc_router_reshards_total",
        "Completed reshard commands (routing flipped).",
        m.reshards_total.load(Ordering::Relaxed),
    );
    counter(
        "mwc_router_migrated_graphs_total",
        "Graphs streamed to gaining shards during reshards.",
        m.migrated_graphs_total.load(Ordering::Relaxed),
    );
    counter(
        "mwc_router_streamed_cache_entries_total",
        "Warm solve-cache entries imported by gaining shards.",
        m.streamed_cache_entries_total.load(Ordering::Relaxed),
    );
    counter(
        "mwc_router_connections_total",
        "Client connections accepted.",
        m.connections_total.load(Ordering::Relaxed),
    );
    let table = inner.table();
    out.push_str("# HELP mwc_router_shard_healthy Shard health (1 = accepting, 0 = ejected).\n");
    out.push_str("# TYPE mwc_router_shard_healthy gauge\n");
    for b in &table.backends {
        out.push_str(&format!(
            "mwc_router_shard_healthy{{shard=\"{}\"}} {}\n",
            b.name,
            u64::from(b.healthy())
        ));
    }
    out.push_str("# HELP mwc_router_shard_forwarded_total Requests forwarded per shard.\n");
    out.push_str("# TYPE mwc_router_shard_forwarded_total counter\n");
    for b in &table.backends {
        out.push_str(&format!(
            "mwc_router_shard_forwarded_total{{shard=\"{}\"}} {}\n",
            b.name,
            b.forwarded_total.load(Ordering::Relaxed)
        ));
    }
    out.push_str("# HELP mwc_router_shard_failed_total Forward failures per shard.\n");
    out.push_str("# TYPE mwc_router_shard_failed_total counter\n");
    for b in &table.backends {
        out.push_str(&format!(
            "mwc_router_shard_failed_total{{shard=\"{}\"}} {}\n",
            b.name,
            b.failed_total.load(Ordering::Relaxed)
        ));
    }
    out
}

/// The `shard` introspection payload: ring shape (replica factor
/// included), per-shard health, and (when asked) the replica assignment
/// of one graph name.
fn shard_payload(inner: &Arc<Inner>, graph: Option<&str>) -> Vec<(&'static str, Json)> {
    let table = inner.table();
    let shards: Vec<Json> = table
        .backends
        .iter()
        .map(|b| {
            let mut health = b.health_json();
            if let Json::Obj(fields) = &mut health {
                fields.insert("name".to_string(), Json::from(b.name.as_str()));
            }
            health
        })
        .collect();
    let mut payload = vec![
        (
            "ring",
            Json::obj([
                ("shards", Json::from(table.ring.len())),
                ("vnodes", Json::from(table.ring.vnodes())),
                ("replicas", Json::from(inner.config.replicas.max(1))),
            ]),
        ),
        ("shards", Json::Arr(shards)),
    ];
    if let Some(graph) = graph {
        let replica_names: Vec<Json> = table
            .replicas_for(graph, inner.config.replicas)
            .iter()
            .map(|b| Json::from(b.name.as_str()))
            .collect();
        payload.push((
            "assignment",
            Json::obj([
                ("graph", Json::from(graph)),
                ("shard", Json::from(table.ring.route(graph))),
                ("replicas", Json::Arr(replica_names)),
            ]),
        ));
    }
    payload
}

/// Sums the counter fields the aggregate section tracks across shards.
fn sum_into(totals: &mut Vec<(String, f64)>, section: &Json, fields: &[&str], prefix: &str) {
    for field in fields {
        if let Some(x) = section.get(field).and_then(Json::as_f64) {
            let key = if prefix.is_empty() {
                (*field).to_string()
            } else {
                format!("{prefix}.{field}")
            };
            match totals.iter_mut().find(|(k, _)| *k == key) {
                Some((_, total)) => *total += x,
                None => totals.push((key, x)),
            }
        }
    }
}

/// Forwards `line` to every backend of `table` concurrently (one scoped
/// thread per shard, the same shape as the batch fan-out) so one wedged
/// shard costs its own timeout, not a serial sum across the fleet.
/// Results keep the backend order.
fn fan_out_all<'a>(
    inner: &Arc<Inner>,
    table: &'a RouteTable,
    line: &str,
) -> Vec<(&'a Arc<Backend>, Result<String, ServiceError>)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = table
            .backends
            .iter()
            .map(|backend| scope.spawn(move || (backend, backend.forward(&inner.config, line))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fan-out worker panicked"))
            .collect()
    })
}

/// Fans `stats` out to every shard and merges: `aggregate` (summed
/// counters), `shards` (each backend's own document, or an
/// `unavailable` marker), and `router` (the router's own counters and
/// per-shard health).
fn merged_stats(inner: &Arc<Inner>) -> Json {
    let table = inner.table();
    let mut per_shard: Vec<(String, Json)> = Vec::new();
    let mut totals: Vec<(String, f64)> = Vec::new();
    for (backend, outcome) in fan_out_all(inner, &table, r#"{"cmd":"stats"}"#) {
        match outcome {
            Ok(response) => {
                let stats = crate::json::parse(&response)
                    .ok()
                    .and_then(|v| v.get("stats").cloned())
                    .unwrap_or(Json::Null);
                if let Some(requests) = stats.get("requests") {
                    sum_into(
                        &mut totals,
                        requests,
                        &[
                            "total",
                            "ok",
                            "error",
                            "overloaded",
                            "bad_request",
                            "queue_deadline",
                        ],
                        "requests",
                    );
                }
                if let Some(cache) = stats.get("solve_cache") {
                    sum_into(
                        &mut totals,
                        cache,
                        &[
                            "hits",
                            "misses",
                            "evictions",
                            "expired",
                            "entries",
                            "bytes_used",
                        ],
                        "solve_cache",
                    );
                }
                if let Some(coalesce) = stats.get("coalesce") {
                    sum_into(
                        &mut totals,
                        coalesce,
                        &[
                            "enqueued",
                            "bypassed",
                            "overflow",
                            "expired",
                            "aborted",
                            "flush_total",
                            "flush_window",
                            "flush_lanes",
                            "flush_drain",
                            "coalesced_requests",
                            "group_requests",
                            "cache_hits",
                            "deduped",
                            "executed",
                            "shared_sweeps",
                            "shared_lanes",
                            "shared_roots",
                        ],
                        "coalesce",
                    );
                }
                sum_into(&mut totals, &stats, &["connections"], "");
                per_shard.push((backend.name.clone(), stats));
            }
            // A merge marks the shard and moves on — the stats request
            // itself succeeds, so this is not a shard_unavailable error.
            Err(e) => {
                per_shard.push((
                    backend.name.clone(),
                    Json::obj([("unavailable", Json::Bool(true)), ("error", error_json(&e))]),
                ));
            }
        }
    }
    // Rebuild the dotted keys into nested objects.
    let mut aggregate: std::collections::BTreeMap<String, Json> = Default::default();
    for (key, value) in totals {
        match key.split_once('.') {
            None => {
                aggregate.insert(key, Json::Num(value));
            }
            Some((outer, inner_key)) => {
                let section = aggregate
                    .entry(outer.to_string())
                    .or_insert_with(|| Json::Obj(Default::default()));
                if let Json::Obj(fields) = section {
                    fields.insert(inner_key.to_string(), Json::Num(value));
                }
            }
        }
    }
    let m = &inner.metrics;
    let load = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed));
    let router = Json::obj([
        (
            "requests",
            Json::obj([
                ("total", load(&m.requests_total)),
                ("forwarded", load(&m.forwarded_total)),
                ("local", load(&m.local_total)),
                ("bad_request", load(&m.bad_request_total)),
                ("shard_unavailable", load(&m.shard_unavailable_total)),
                ("read_fallthrough", load(&m.read_fallthrough_total)),
            ]),
        ),
        ("connections", load(&m.connections_total)),
        ("replicas", Json::from(inner.config.replicas.max(1))),
        (
            "reshard",
            Json::obj([
                ("completed", load(&m.reshards_total)),
                ("migrated_graphs", load(&m.migrated_graphs_total)),
                (
                    "streamed_cache_entries",
                    load(&m.streamed_cache_entries_total),
                ),
            ]),
        ),
        (
            "shards",
            Json::Obj(
                table
                    .backends
                    .iter()
                    .map(|b| (b.name.clone(), b.health_json()))
                    .collect(),
            ),
        ),
    ]);
    Json::obj([
        ("router", router),
        ("aggregate", Json::Obj(aggregate)),
        ("shards", Json::Obj(per_shard.into_iter().collect())),
    ])
}

/// Fans `graphs` out and merges the listings. Replica copies of the same
/// graph collapse into one entry, annotated with `shard` (the ring's
/// primary owner) and `replicas` (every shard that reported a copy);
/// unreachable shards are listed in `shards_unavailable` so a partial
/// answer is visibly partial.
fn merged_graphs(inner: &Arc<Inner>) -> Vec<(&'static str, Json)> {
    let table = inner.table();
    // (name, first-reported entry, shards holding a copy)
    let mut merged: Vec<(String, Json, Vec<Json>)> = Vec::new();
    let mut unavailable: Vec<Json> = Vec::new();
    for (backend, outcome) in fan_out_all(inner, &table, r#"{"cmd":"graphs"}"#) {
        match outcome {
            Ok(response) => {
                let listed = crate::json::parse(&response)
                    .ok()
                    .and_then(|v| v.get("graphs").cloned());
                if let Some(Json::Arr(entries)) = listed {
                    for entry in entries {
                        let name = entry
                            .get("name")
                            .and_then(Json::as_str)
                            .unwrap_or("")
                            .to_string();
                        match merged.iter_mut().find(|(n, _, _)| *n == name) {
                            Some((_, _, holders)) => {
                                holders.push(Json::from(backend.name.as_str()))
                            }
                            None => {
                                merged.push((name, entry, vec![Json::from(backend.name.as_str())]))
                            }
                        }
                    }
                }
            }
            // Same degrade-don't-fail contract as the stats merge.
            Err(_) => {
                unavailable.push(Json::from(backend.name.as_str()));
            }
        }
    }
    merged.sort_by(|a, b| a.0.cmp(&b.0));
    let graphs: Vec<Json> = merged
        .into_iter()
        .map(|(name, mut entry, holders)| {
            if let Json::Obj(fields) = &mut entry {
                fields.insert("shard".to_string(), Json::from(table.ring.route(&name)));
                fields.insert("replicas".to_string(), Json::Arr(holders));
            }
            entry
        })
        .collect();
    vec![
        ("graphs", Json::Arr(graphs)),
        ("shards_unavailable", Json::Arr(unavailable)),
    ]
}

/// One executed sub-batch: the backend it ran on, the original entry
/// indices it carried, and the parsed outcome.
type SubBatchOutcome = (Arc<Backend>, Vec<usize>, Result<Json, ServiceError>);

/// Splits a batch by serving shard (each entry picks a replica of its
/// graph, two-choice like single solves), executes the per-shard
/// sub-batches concurrently, and reassembles the replies in the original
/// request order. A sub-batch lost to a transport failure *falls
/// through*: its entries are regrouped onto each graph's next untried
/// replica and re-sent, so one dying shard costs latency, not answers —
/// `shard_unavailable` lands in an entry's slot only after every replica
/// of its graph failed.
fn handle_batch(
    inner: &Arc<Inner>,
    out: &Mutex<TcpStream>,
    id: &Option<Json>,
    params: &SolveParams,
    queries: &[crate::protocol::BatchEntry],
) {
    let table = inner.table();
    let replicas = inner.config.replicas.max(1);
    let mut slots: Vec<Option<Json>> = vec![None; queries.len()];
    // Backends already tried (and failed) per entry.
    let mut tried: Vec<Vec<String>> = vec![Vec::new(); queries.len()];
    let mut pending: Vec<usize> = (0..queries.len()).collect();
    while !pending.is_empty() {
        // Assign every unresolved entry its next untried replica; an
        // entry with none left gets its terminal shard_unavailable.
        let mut groups: Vec<(Arc<Backend>, Vec<usize>)> = Vec::new();
        let mut next_pending: Vec<usize> = Vec::new();
        for &i in &pending {
            let graph = queries[i].graph_name(&params.graph);
            let ordered = inner.read_order(table.replicas_for(graph, replicas));
            match ordered
                .into_iter()
                .find(|b| !tried[i].iter().any(|t| t == &b.name))
            {
                Some(backend) => match groups.iter_mut().find(|(b, _)| b.name == backend.name) {
                    Some((_, idxs)) => idxs.push(i),
                    None => groups.push((backend, vec![i])),
                },
                None => {
                    inner
                        .metrics
                        .shard_unavailable_total
                        .fetch_add(1, Ordering::Relaxed);
                    slots[i] = Some(Json::obj([(
                        "error",
                        error_json(&ServiceError::ShardUnavailable {
                            shard: table.ring.route(graph).to_string(),
                            reason: "every replica failed".to_string(),
                        }),
                    )]));
                }
            }
        }
        if groups.is_empty() {
            break;
        }
        inner
            .metrics
            .forwarded_total
            .fetch_add(groups.len() as u64, Ordering::Relaxed);
        let group_results: Vec<SubBatchOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .map(|(backend, idxs)| {
                    let config = &inner.config;
                    scope.spawn(move || {
                        let sub = sub_batch_line(params, queries, &idxs);
                        let outcome = backend.forward(config, &sub).and_then(|response| {
                            crate::json::parse(&response).map_err(|e| {
                                backend.unavailable(format!("unparseable backend response: {e}"))
                            })
                        });
                        (backend, idxs, outcome)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch fan-out worker panicked"))
                .collect()
        });
        for (backend, idxs, outcome) in group_results {
            match outcome {
                Ok(response) if response.get("ok").and_then(Json::as_bool) == Some(true) => {
                    let reports = response.get("reports").and_then(Json::as_array);
                    for (slot, i) in idxs.iter().enumerate() {
                        slots[*i] = Some(match reports.and_then(|r| r.get(slot)) {
                            Some(report) => report.clone(),
                            None => Json::obj([(
                                "error",
                                error_json(&ServiceError::BadRequest(
                                    "backend reply missing report slots".to_string(),
                                )),
                            )]),
                        });
                    }
                }
                Ok(response) => {
                    // The whole sub-batch was *refused* (e.g.
                    // overloaded): a definitive backend verdict, not a
                    // transport failure — surface it per entry, in
                    // place, without burning the other replicas.
                    let err = response.get("error").cloned().unwrap_or_else(|| {
                        error_json(&ServiceError::BadRequest(
                            "backend reply carried no error".to_string(),
                        ))
                    });
                    for &i in &idxs {
                        slots[i] = Some(Json::obj([("error", err.clone())]));
                    }
                }
                Err(_) => {
                    // Transport failure: fall through — each entry goes
                    // back in the pot for its next untried replica.
                    inner
                        .metrics
                        .read_fallthrough_total
                        .fetch_add(idxs.len() as u64, Ordering::Relaxed);
                    for i in idxs {
                        tried[i].push(backend.name.clone());
                        next_pending.push(i);
                    }
                }
            }
        }
        pending = next_pending;
    }
    let reports: Vec<Json> = slots.into_iter().flatten().collect();
    let solved = reports.iter().filter(|r| r.get("error").is_none()).count() as u64;
    let graph = if params.graph.is_empty() {
        Json::Null
    } else {
        Json::from(params.graph.as_str())
    };
    write_raw(
        out,
        &ok_response(
            id,
            vec![
                ("graph", graph),
                ("solved", Json::from(solved)),
                ("reports", Json::Arr(reports)),
            ],
        ),
    );
}

/// Builds the backend request line for one shard's slice of a batch.
/// Every entry names its graph explicitly (no top-level default), and the
/// router's own sequence number rides as the id.
fn sub_batch_line(
    params: &SolveParams,
    queries: &[crate::protocol::BatchEntry],
    idxs: &[usize],
) -> String {
    let mut fields: Vec<(&'static str, Json)> = vec![
        ("cmd", Json::from("batch")),
        ("solver", Json::from(params.solver.as_str())),
    ];
    if let Some(d) = params.deadline_ms {
        fields.push(("deadline_ms", Json::from(d)));
    }
    if let Some(m) = params.max_size {
        fields.push(("max_size", Json::from(m)));
    }
    if params.no_cache {
        fields.push(("no_cache", Json::Bool(true)));
    }
    let entries: Vec<Json> = idxs
        .iter()
        .map(|&i| {
            let entry = &queries[i];
            Json::obj([
                ("graph", Json::from(entry.graph_name(&params.graph))),
                (
                    "q",
                    Json::Arr(entry.q.iter().map(|&v| Json::from(u64::from(v))).collect()),
                ),
            ])
        })
        .collect();
    fields.push(("queries", Json::Arr(entries)));
    Json::obj(fields).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = RouterConfig::default();
        assert_eq!(c.vnodes, DEFAULT_VNODES);
        assert!(c.fail_threshold >= 1);
        assert!(c.reprobe_interval > Duration::ZERO);
        assert_eq!(c.replicas, 1, "classic single-owner routing by default");
    }

    #[test]
    fn replicas_for_clamps_and_returns_distinct_backends() {
        let ring = HashRing::new(&["a".to_string(), "b".to_string(), "c".to_string()], 64);
        let backends = vec![
            Arc::new(Backend::new("a".into(), "127.0.0.1:1".into())),
            Arc::new(Backend::new("b".into(), "127.0.0.1:2".into())),
            Arc::new(Backend::new("c".into(), "127.0.0.1:3".into())),
        ];
        let table = RouteTable { ring, backends };
        for want in [1usize, 2, 3, 7] {
            let picked = table.replicas_for("some-graph", want);
            assert_eq!(picked.len(), want.min(3));
            let mut names: Vec<&str> = picked.iter().map(|b| b.name.as_str()).collect();
            assert_eq!(names[0], table.ring.route("some-graph"), "primary first");
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), picked.len(), "replicas are distinct shards");
        }
    }

    #[test]
    fn start_rejects_empty_and_duplicate_shards() {
        assert!(start(Vec::new(), RouterConfig::default(), "127.0.0.1:0").is_err());
        let dup = vec![
            ShardSpec::new("a", "127.0.0.1:1"),
            ShardSpec::new("a", "127.0.0.1:2"),
        ];
        assert!(start(dup, RouterConfig::default(), "127.0.0.1:0").is_err());
    }

    #[test]
    fn sub_batch_lines_parse_back() {
        let params = SolveParams {
            graph: "default".into(),
            solver: "ws-q".into(),
            deadline_ms: Some(250),
            max_size: None,
            no_cache: true,
            trace: false,
            trace_id: None,
        };
        let queries = vec![
            crate::protocol::BatchEntry {
                graph: None,
                q: vec![0, 1],
            },
            crate::protocol::BatchEntry {
                graph: Some("other".into()),
                q: vec![2, 3],
            },
        ];
        let line = sub_batch_line(&params, &queries, &[1, 0]);
        let parsed = parse_request(&line).unwrap();
        match parsed.command {
            Command::Batch {
                params: p,
                queries: qs,
            } => {
                assert_eq!(p.solver, "ws-q");
                assert_eq!(p.deadline_ms, Some(250));
                assert!(p.no_cache);
                // Index order is preserved and graphs are explicit.
                assert_eq!(qs[0].graph.as_deref(), Some("other"));
                assert_eq!(qs[0].q, vec![2, 3]);
                assert_eq!(qs[1].graph.as_deref(), Some("default"));
                assert_eq!(qs[1].q, vec![0, 1]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn backend_health_transitions() {
        let b = Backend::new("s0".into(), "127.0.0.1:1".into());
        assert!(b.healthy());
        b.record_failure(3);
        b.record_failure(3);
        assert!(b.healthy(), "below the threshold");
        b.record_failure(3);
        assert!(!b.healthy(), "ejected at the threshold");
        b.record_success();
        assert!(b.healthy(), "success restores immediately");
        assert_eq!(b.consecutive_failures.load(Ordering::SeqCst), 0);
    }
}
