//! The epoll transport: one nonblocking event-loop thread serving every
//! connection, in place of the threaded transport's reader-per-connection.
//!
//! # Shape
//!
//! ```text
//!                 ┌───────────────── event loop (1 thread) ─────────────────┐
//!  accept ───────▶│ connection table: token → {read buf, write buf, seqs}   │
//!  readable ─────▶│ reassemble newline frames across partial reads          │
//!                 │   control cmds → answered inline                        │
//!                 │   data cmds    → admission queue (seq attached)         │
//!  eventfd ──────▶│ drain completion mailbox → sequence → write buffers     │
//!  writable ─────▶│ flush write buffers (single write, TCP_NODELAY)         │
//!                 └──────────────────────────────────────────────────────────┘
//!                        ▲ completions              │ jobs
//!                        └────── worker pool ◀──────┘
//! ```
//!
//! * **Pipelining** — every request line gets a per-connection sequence
//!   number at parse time; responses are flushed strictly in that order,
//!   whatever order workers (or coalescing windows) finish in. A client
//!   may keep any number of requests in flight and match responses by
//!   `id` — order makes the matching trivial.
//! * **Readiness** — level-triggered epoll. Read interest is armed while
//!   the connection is serveable; write interest only while its write
//!   buffer is non-empty (the classic LT pattern, no spurious wakeups).
//! * **Backpressure** — each connection's write buffer is bounded by
//!   [`ServerConfig::max_write_buffer`](crate::server::ServerConfig):
//!   reading from the connection pauses at half the cap, and a client
//!   that still lets the backlog cross the cap (it is not reading its
//!   responses) is disconnected rather than buffered without bound.
//! * **Wakeup** — workers publish `(token, seq, line)` completions into
//!   a mailbox and signal an eventfd, which re-arms write interest from
//!   the loop thread; workers never touch sockets or epoll state.
//! * **Drain** — on shutdown the loop stops accepting, parks no new
//!   work, and exits once every admitted job's response has been flushed
//!   (a bounded grace period caps how long unreachable clients can hold
//!   the drain hostage).
//!
//! The response path keeps the single-write + `TCP_NODELAY` discipline:
//! responses ready at the same time leave in one `write`, so the Nagle/
//! delayed-ACK ~40 ms interaction cannot re-enter through this
//! transport.

use std::collections::{BTreeMap, HashMap};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::error::ServiceError;
use crate::net::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::protocol::{error_response, parse_request, Command};
use crate::server::{
    admit, bad_utf8_response, control_response, salvage_id, shutdown_ack, too_long_response, Inner,
    ResponseSink, Transport,
};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// How long a finished drain waits for unreachable clients to accept
/// their last bytes before abandoning them.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// One worker-produced response, addressed by connection token and the
/// per-connection sequence number the request was assigned at parse.
struct Completion {
    token: u64,
    seq: u64,
    line: String,
}

/// State shared between the loop thread and the worker pool: the
/// completion mailbox, its eventfd doorbell, and the count of admitted
/// jobs whose completions the loop has not yet collected (the drain
/// barrier).
pub(crate) struct LoopShared {
    completions: Mutex<Vec<Completion>>,
    wake: EventFd,
    outstanding: AtomicU64,
}

impl LoopShared {
    pub(crate) fn new() -> std::io::Result<Arc<LoopShared>> {
        Ok(Arc::new(LoopShared {
            completions: Mutex::new(Vec::new()),
            wake: EventFd::new()?,
            outstanding: AtomicU64::new(0),
        }))
    }

    /// Publishes a worker's response line and rings the loop's doorbell.
    /// Called from worker threads via `write_line` (which has already
    /// counted ok/error totals); never blocks beyond the mailbox mutex.
    pub(crate) fn complete(&self, token: u64, seq: u64, line: &str) {
        self.completions
            .lock()
            .expect("completion mailbox poisoned")
            .push(Completion {
                token,
                seq,
                line: line.to_string(),
            });
        self.wake.signal();
    }
}

struct Conn {
    stream: TcpStream,
    /// Partial-frame reassembly: bytes read but not yet newline-framed.
    read_buf: Vec<u8>,
    /// Bytes queued for the socket; `out_cursor` marks how far the
    /// kernel has accepted them.
    out_buf: Vec<u8>,
    out_cursor: usize,
    /// Completed responses waiting for earlier sequence numbers.
    ready: BTreeMap<u64, String>,
    /// Next sequence number to assign to an incoming request line.
    next_seq: u64,
    /// Next sequence number to append to `out_buf`.
    next_flush: u64,
    /// Interest set currently registered with epoll.
    interest: u32,
    read_closed: bool,
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            out_buf: Vec::new(),
            out_cursor: 0,
            ready: BTreeMap::new(),
            next_seq: 0,
            next_flush: 0,
            interest: EPOLLIN | EPOLLRDHUP,
            read_closed: false,
            close_after_flush: false,
        }
    }

    fn backlog(&self) -> usize {
        self.out_buf.len() - self.out_cursor
    }

    /// Every assigned request has been answered and every answer written.
    fn fully_flushed(&self) -> bool {
        self.backlog() == 0 && self.next_flush == self.next_seq
    }
}

struct EventLoop<'a> {
    inner: &'a Arc<Inner>,
    shared: &'a Arc<LoopShared>,
    epoll: Epoll,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    scratch: Vec<u8>,
}

/// The epoll transport's thread body (spawned by `server::start`).
pub(crate) fn run(inner: &Arc<Inner>, listener: TcpListener, shared: &Arc<LoopShared>) {
    debug_assert_eq!(inner.config.transport, Transport::Epoll);
    if let Err(e) = serve(inner, listener, shared) {
        // Setup failure (epoll_create, registration) is unrecoverable
        // for this transport; leave a trace rather than dying silently.
        eprintln!("mwc-server: epoll event loop failed: {e}");
        inner.begin_shutdown();
    }
}

fn serve(
    inner: &Arc<Inner>,
    listener: TcpListener,
    shared: &Arc<LoopShared>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)?;
    epoll.add(shared.wake.raw(), TOKEN_WAKE, EPOLLIN)?;
    let mut el = EventLoop {
        inner,
        shared,
        epoll,
        listener: Some(listener),
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        scratch: vec![0u8; 64 << 10],
    };
    let mut events = vec![EpollEvent { events: 0, data: 0 }; 1024];
    // The wait timeout doubles as the shutdown poll, exactly like the
    // threaded transport's reader poll interval.
    let poll_ms = inner.config.poll_interval.as_millis().clamp(1, 1000) as i32;
    let mut accepting = true;
    let mut flush_deadline: Option<Instant> = None;
    loop {
        let n = el.epoll.wait(&mut events, poll_ms)?;
        el.inner
            .metrics
            .loop_wakeups
            .fetch_add(1, Ordering::Relaxed);
        if n > 0 {
            el.inner
                .metrics
                .loop_events
                .fetch_add(n as u64, Ordering::Relaxed);
        }
        for ev in &events[..n] {
            let token = { ev.data };
            let bits = { ev.events };
            match token {
                TOKEN_LISTENER => el.accept_ready(),
                TOKEN_WAKE => el.shared.wake.drain(),
                _ => el.conn_event(token, bits),
            }
        }
        el.drain_completions();
        if el.inner.shutdown.load(Ordering::SeqCst) {
            if accepting {
                accepting = false;
                // Stop accepting (the listener closes, so late dials are
                // refused at the TCP level, as when the threaded acceptor
                // exits) and schedule every connection to close once its
                // in-flight responses have flushed.
                if let Some(l) = el.listener.take() {
                    el.epoll.delete(l.as_raw_fd());
                }
                let tokens: Vec<u64> = el.conns.keys().copied().collect();
                for token in tokens {
                    if let Some(conn) = el.conns.get_mut(&token) {
                        conn.close_after_flush = true;
                    }
                    el.pump(token);
                }
            }
            // Admitted work drains through the workers; once their
            // completions are all collected, only unflushed bytes keep
            // connections (and the loop) alive.
            if el.shared.outstanding.load(Ordering::SeqCst) == 0 {
                let done: Vec<u64> = el
                    .conns
                    .iter()
                    .filter(|(_, c)| c.fully_flushed())
                    .map(|(t, _)| *t)
                    .collect();
                for token in done {
                    el.drop_conn(token);
                }
                if el.conns.is_empty() {
                    return Ok(());
                }
                let deadline = *flush_deadline.get_or_insert_with(|| Instant::now() + DRAIN_GRACE);
                if Instant::now() >= deadline {
                    let tokens: Vec<u64> = el.conns.keys().copied().collect();
                    for token in tokens {
                        el.drop_conn(token); // abandon unreachable clients
                    }
                    return Ok(());
                }
            }
        }
    }
}

impl EventLoop<'_> {
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.inner.shutdown.load(Ordering::SeqCst) {
                        continue; // dropped: the drain is in progress
                    }
                    if self.conns.len() >= self.inner.config.max_connections {
                        self.refuse(stream);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .epoll
                        .add(stream.as_raw_fd(), token, EPOLLIN | EPOLLRDHUP)
                        .is_err()
                    {
                        continue;
                    }
                    // The connection table is the authoritative source of
                    // the live-connections gauge in this transport.
                    self.inner
                        .metrics
                        .connections_total
                        .fetch_add(1, Ordering::Relaxed);
                    self.inner
                        .metrics
                        .connections_live
                        .fetch_add(1, Ordering::Relaxed);
                    self.conns.insert(token, Conn::new(stream));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(_) => {
                    // A persistent accept error (e.g. EMFILE) must not
                    // busy-spin: back off briefly, like the threaded
                    // acceptor.
                    std::thread::sleep(Duration::from_millis(10));
                    return;
                }
            }
        }
    }

    /// One `overloaded` error line on a connection beyond the limit,
    /// then close — identical to the threaded acceptor's refusal.
    fn refuse(&self, mut stream: TcpStream) {
        self.inner
            .metrics
            .overload_total
            .fetch_add(1, Ordering::Relaxed);
        self.inner
            .metrics
            .error_total
            .fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
        let line = error_response(
            &None,
            &ServiceError::TooManyConnections {
                limit: self.inner.config.max_connections,
            },
        );
        let mut buf = line.into_bytes();
        buf.push(b'\n');
        let _ = stream.write_all(&buf);
    }

    fn conn_event(&mut self, token: u64, bits: u32) {
        if !self.conns.contains_key(&token) {
            return; // stale readiness for a dropped connection
        }
        if bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
            self.handle_readable(token);
        }
        if bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0 {
            self.pump(token);
        }
    }

    fn handle_readable(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.read_closed || conn.close_after_flush {
                return;
            }
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    // A trailing line without its newline still counts
                    // (the threaded reader serves it the same way).
                    self.process_buffered(token, true);
                    self.pump(token);
                    return;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&self.scratch[..n]);
                    self.process_buffered(token, false);
                    // Backpressure: a connection with a large unwritten
                    // backlog stops being read until it drains (level-
                    // triggered epoll re-reports the pending bytes).
                    let Some(conn) = self.conns.get(&token) else {
                        return;
                    };
                    if conn.close_after_flush
                        || conn.backlog() >= self.inner.config.max_write_buffer / 2
                    {
                        self.update_interest(token);
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_conn(token);
                    return;
                }
            }
        }
    }

    /// Splits the connection's read buffer into complete lines and
    /// handles each; `eof` additionally serves a trailing newline-free
    /// line. Lines after a `shutdown` (or any close-marking request) on
    /// the same connection are discarded — framing intent is gone.
    fn process_buffered(&mut self, token: u64, eof: bool) {
        let max = self.inner.config.max_line_bytes;
        let buf = match self.conns.get_mut(&token) {
            Some(c) => std::mem::take(&mut c.read_buf),
            None => return,
        };
        let mut start = 0;
        loop {
            let Some(conn) = self.conns.get(&token) else {
                return;
            };
            if conn.close_after_flush {
                return; // remainder discarded
            }
            let rest = &buf[start..];
            match rest.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if pos > max {
                        self.reject_too_long(token);
                        return;
                    }
                    let line = rest[..pos].to_vec();
                    start += pos + 1;
                    self.handle_line(token, &line);
                }
                None => {
                    if rest.len() > max {
                        self.reject_too_long(token);
                        return;
                    }
                    if eof && !rest.is_empty() {
                        let line = rest.to_vec();
                        start = buf.len();
                        self.handle_line(token, &line);
                    }
                    break;
                }
            }
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            if !conn.close_after_flush {
                conn.read_buf = buf;
                conn.read_buf.drain(..start);
            }
        }
    }

    /// A line crossed `max_line_bytes`: answer `bad_request` and close
    /// once flushed — framing is lost, exactly like the threaded path.
    fn reject_too_long(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.close_after_flush = true;
        self.inner
            .metrics
            .requests_total
            .fetch_add(1, Ordering::Relaxed);
        let line = too_long_response(self.inner);
        self.complete_local(token, seq, line, false);
    }

    fn assign_seq(&mut self, token: u64) -> u64 {
        let conn = self.conns.get_mut(&token).expect("seq for live conn");
        let seq = conn.next_seq;
        conn.next_seq += 1;
        seq
    }

    fn handle_line(&mut self, token: u64, bytes: &[u8]) {
        let line = match std::str::from_utf8(bytes) {
            Ok(l) => l,
            Err(_) => {
                self.inner
                    .metrics
                    .requests_total
                    .fetch_add(1, Ordering::Relaxed);
                let resp = bad_utf8_response(self.inner);
                let seq = self.assign_seq(token);
                self.complete_local(token, seq, resp, false);
                return;
            }
        };
        if line.trim().is_empty() {
            return;
        }
        self.inner
            .metrics
            .requests_total
            .fetch_add(1, Ordering::Relaxed);
        let request = match parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                self.inner
                    .metrics
                    .bad_request_total
                    .fetch_add(1, Ordering::Relaxed);
                let resp = error_response(&salvage_id(line), &e);
                let seq = self.assign_seq(token);
                self.complete_local(token, seq, resp, false);
                return;
            }
        };
        let seq = self.assign_seq(token);
        if matches!(request.command, Command::Shutdown) {
            // Flag first, then acknowledge — and the ack is sequenced
            // after this connection's earlier pipelined responses, so a
            // client that pipelines solves before `shutdown` sees every
            // answer, then the ack, then EOF.
            self.inner.begin_shutdown();
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.close_after_flush = true;
            }
            self.complete_local(token, seq, shutdown_ack(&request.id), true);
            return;
        }
        if let Some((resp, ok)) = control_response(self.inner, &request) {
            self.complete_local(token, seq, resp, ok);
            return;
        }
        // Data plane: sequence number travels with the sink; the worker's
        // `write_line` lands in the mailbox and the loop restores order.
        if let Some(conn) = self.conns.get(&token) {
            self.inner
                .metrics
                .pipeline_peak
                .fetch_max(conn.next_seq - conn.next_flush, Ordering::Relaxed);
        }
        self.shared.outstanding.fetch_add(1, Ordering::SeqCst);
        let sink = ResponseSink::Event {
            shared: Arc::clone(self.shared),
            token,
            seq,
        };
        if let Some((resp, ok)) = admit(self.inner, request, sink, Instant::now()) {
            self.shared.outstanding.fetch_sub(1, Ordering::SeqCst);
            self.complete_local(token, seq, resp, ok);
        }
    }

    /// A response produced on the loop thread itself (control plane,
    /// admission rejections, framing errors): counted like `write_line`
    /// counts, then sequenced.
    fn complete_local(&mut self, token: u64, seq: u64, line: String, ok: bool) {
        if ok {
            self.inner.metrics.ok_total.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner
                .metrics
                .error_total
                .fetch_add(1, Ordering::Relaxed);
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.ready.insert(seq, line);
        }
        self.pump(token);
    }

    /// Collects worker completions. Completions for connections that
    /// died in the meantime are discarded (their job already ran — only
    /// the response has nowhere to go), but still release the drain
    /// barrier.
    fn drain_completions(&mut self) {
        let batch: Vec<Completion> = {
            let mut mailbox = self
                .shared
                .completions
                .lock()
                .expect("completion mailbox poisoned");
            std::mem::take(&mut mailbox)
        };
        if batch.is_empty() {
            return;
        }
        let mut touched: Vec<u64> = Vec::with_capacity(batch.len());
        for c in batch {
            self.shared.outstanding.fetch_sub(1, Ordering::SeqCst);
            if let Some(conn) = self.conns.get_mut(&c.token) {
                conn.ready.insert(c.seq, c.line);
                touched.push(c.token);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for token in touched {
            self.pump(token);
        }
    }

    /// Moves contiguous completed responses into the write buffer,
    /// flushes as much as the socket accepts, and settles the
    /// connection's fate: slow-client cap, close-after-flush, interest
    /// re-arming.
    fn pump(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while let Some(line) = conn.ready.remove(&conn.next_flush) {
            conn.out_buf.extend_from_slice(line.as_bytes());
            conn.out_buf.push(b'\n');
            conn.next_flush += 1;
        }
        let mut dead = false;
        if conn.backlog() > 0 {
            let t = Instant::now();
            loop {
                match conn.stream.write(&conn.out_buf[conn.out_cursor..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.out_cursor += n;
                        if conn.out_cursor == conn.out_buf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            self.inner.metrics.record_stage("write", t.elapsed());
            if conn.out_cursor == conn.out_buf.len() {
                conn.out_buf.clear();
                conn.out_cursor = 0;
            } else if conn.out_cursor > 64 << 10 {
                // Reclaim written bytes without quadratic shifting on
                // every partial write.
                conn.out_buf.drain(..conn.out_cursor);
                conn.out_cursor = 0;
            }
        }
        if dead {
            self.drop_conn(token);
            return;
        }
        let conn = self.conns.get(&token).expect("conn vanished mid-pump");
        if conn.backlog() > self.inner.config.max_write_buffer {
            // The client is not reading its responses; cut it loose
            // instead of buffering without bound.
            self.inner
                .metrics
                .slow_client_disconnects
                .fetch_add(1, Ordering::Relaxed);
            self.drop_conn(token);
            return;
        }
        if conn.fully_flushed() && (conn.close_after_flush || conn.read_closed) {
            self.drop_conn(token);
            return;
        }
        self.update_interest(token);
    }

    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let backlog = conn.backlog();
        let mut want = 0u32;
        let pause_reads = conn.read_closed
            || conn.close_after_flush
            || backlog >= self.inner.config.max_write_buffer / 2;
        if !pause_reads {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        if backlog > 0 {
            want |= EPOLLOUT;
        }
        if want != conn.interest
            && self
                .epoll
                .modify(conn.stream.as_raw_fd(), token, want)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    fn drop_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.epoll.delete(conn.stream.as_raw_fd());
            self.inner
                .metrics
                .connections_live
                .fetch_sub(1, Ordering::Relaxed);
        }
    }
}
