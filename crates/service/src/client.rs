//! A blocking protocol client: one TCP connection, request/response in
//! lockstep. Used by the `mwc-client` binary, the load generator, and
//! the integration tests.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use mwc_graph::NodeId;

use crate::json::{parse, Json};

/// A server-reported error: the wire `code`, its human message, and the
/// server's own verdict on whether retrying could help.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Stable machine-readable code (`overloaded`, `unknown_graph`, …).
    pub code: String,
    /// Human-oriented description.
    pub message: String,
    /// The wire `retryable` flag: `true` for transient conditions
    /// (backpressure, eviction races, shard failover) where the same
    /// request may succeed if re-sent, `false` for deterministic
    /// rejections.
    pub retryable: bool,
}

impl WireError {
    /// Decodes a wire error object (`{"code": ..., "message": ...,
    /// "retryable": ...}`). Pre-v1 servers omit `retryable`; for those
    /// the known transient codes are recognised as a fallback so retry
    /// loops keep working against old binaries.
    fn from_json(err: &Json) -> Self {
        let code = err
            .get("code")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let retryable = err
            .get("retryable")
            .and_then(Json::as_bool)
            .unwrap_or(matches!(
                code.as_str(),
                "overloaded" | "too_many_connections" | "graph_evicted" | "shard_unavailable"
            ));
        WireError {
            retryable,
            message: err
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            code,
        }
    }

    /// Whether the server marked this failure transient — the typed
    /// replacement for string-matching on [`WireError::code`].
    pub fn is_retryable(&self) -> bool {
        self.retryable
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(std::io::Error),
    /// The server's response line was not a valid protocol response.
    Protocol(String),
    /// The server answered with `"ok": false`.
    Server(WireError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Convenience alias for client results.
pub type Result<T> = std::result::Result<T, ClientError>;

/// The client-side view of a [`SolveReport`](mwc_core::SolveReport), as
/// decoded from the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireReport {
    /// Solver registry name.
    pub solver: String,
    /// Connector vertex set (sorted, as the server's `Connector` keeps it).
    pub connector: Vec<NodeId>,
    /// Exact Wiener index of the connector.
    pub wiener_index: u64,
    /// Server-side solve seconds.
    pub seconds: f64,
    /// Candidates inspected.
    pub candidates: u64,
    /// Optimality certificate, when the solver provides one.
    pub optimal: Option<bool>,
}

impl WireReport {
    /// Decodes the `"report"` wire object.
    pub fn from_json(v: &Json) -> Result<WireReport> {
        let get = |k: &str| {
            v.get(k)
                .ok_or_else(|| ClientError::Protocol(format!("report missing {k:?}")))
        };
        let connector = get("connector")?
            .as_array()
            .ok_or_else(|| ClientError::Protocol("connector must be an array".into()))?
            .iter()
            .map(|x| {
                x.as_u64()
                    .and_then(|id| NodeId::try_from(id).ok())
                    .ok_or_else(|| ClientError::Protocol("bad vertex id in connector".into()))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(WireReport {
            solver: get("solver")?
                .as_str()
                .ok_or_else(|| ClientError::Protocol("solver must be a string".into()))?
                .to_string(),
            connector,
            wiener_index: get("wiener_index")?
                .as_u64()
                .ok_or_else(|| ClientError::Protocol("bad wiener_index".into()))?,
            seconds: get("seconds")?
                .as_f64()
                .ok_or_else(|| ClientError::Protocol("bad seconds".into()))?,
            candidates: get("candidates")?.as_u64().unwrap_or(0),
            optimal: match get("optimal")? {
                Json::Null => None,
                Json::Bool(b) => Some(*b),
                _ => return Err(ClientError::Protocol("bad optimal".into())),
            },
        })
    }
}

/// One cataloged graph, as listed by the `graphs` command.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphInfo {
    /// Catalog name.
    pub name: String,
    /// Source spec it was loaded from.
    pub source: String,
    /// Vertex count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Whether the graph carries edge weights (weighted distances and
    /// Wiener indices in every report).
    pub weighted: bool,
    /// Registered solver names (sorted).
    pub solvers: Vec<String>,
}

/// A blocking connection to an `mwc-server` (or an `mwc-router`, which
/// speaks the same protocol — see [`RouterClient`] for the retrying
/// wrapper suited to a sharded deployment).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.writer.peer_addr().ok())
            .finish()
    }
}

impl Client {
    /// Connects to the server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream).map_err(ClientError::Io)
    }

    /// Wraps an already-connected stream (the router's backend pool dials
    /// with its own connect timeout and then builds a client here).
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Client> {
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_id: 0,
        })
    }

    /// Sets the socket read timeout (shared by all reads on this
    /// connection). The router uses it to bound how long a dead backend
    /// can stall a forwarded request.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Sends one raw request line and returns the raw response line.
    pub fn roundtrip_line(&mut self, line: &str) -> Result<String> {
        // One write per request: a single packet on the wire instead of a
        // line/newline pair of tiny segments.
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.writer.write_all(&buf)?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed before a response arrived".into(),
            ));
        }
        Ok(response)
    }

    /// Sends a request object (an `id` is attached automatically) and
    /// returns the decoded success payload, or the server's error.
    pub fn request(&mut self, mut fields: Vec<(&'static str, Json)>) -> Result<Json> {
        self.next_id += 1;
        let id = self.next_id;
        fields.push(("id", Json::from(id)));
        let response = self.roundtrip_line(&Json::obj(fields).to_string())?;
        let v = parse(response.trim())
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        if v.get("id").and_then(Json::as_u64) != Some(id) {
            return Err(ClientError::Protocol(format!(
                "response id mismatch (want {id}): {}",
                response.trim()
            )));
        }
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(v),
            Some(false) => {
                let err = v.get("error").cloned().unwrap_or(Json::Null);
                Err(ClientError::Server(WireError::from_json(&err)))
            }
            None => Err(ClientError::Protocol(format!(
                "response missing \"ok\": {}",
                response.trim()
            ))),
        }
    }

    fn solve_fields(
        cmd: &'static str,
        graph: &str,
        solver: &str,
        deadline_ms: Option<u64>,
        max_size: Option<usize>,
        no_cache: bool,
    ) -> Vec<(&'static str, Json)> {
        let mut fields = vec![
            ("cmd", Json::from(cmd)),
            ("graph", Json::from(graph)),
            ("solver", Json::from(solver)),
        ];
        if let Some(d) = deadline_ms {
            fields.push(("deadline_ms", Json::from(d)));
        }
        if let Some(m) = max_size {
            fields.push(("max_size", Json::from(m)));
        }
        if no_cache {
            fields.push(("no_cache", Json::Bool(true)));
        }
        fields
    }

    /// Solves one query.
    pub fn solve(
        &mut self,
        graph: &str,
        solver: &str,
        q: &[NodeId],
        deadline_ms: Option<u64>,
        max_size: Option<usize>,
    ) -> Result<WireReport> {
        self.solve_opts(graph, solver, q, deadline_ms, max_size, false)
    }

    /// Like [`Client::solve`], additionally controlling the server-side
    /// solve cache: `no_cache = true` forces a fresh, unstored solve.
    pub fn solve_opts(
        &mut self,
        graph: &str,
        solver: &str,
        q: &[NodeId],
        deadline_ms: Option<u64>,
        max_size: Option<usize>,
        no_cache: bool,
    ) -> Result<WireReport> {
        let mut fields =
            Self::solve_fields("solve", graph, solver, deadline_ms, max_size, no_cache);
        fields.push((
            "q",
            Json::Arr(q.iter().map(|&v| Json::from(u64::from(v))).collect()),
        ));
        let v = self.request(fields)?;
        WireReport::from_json(
            v.get("report")
                .ok_or_else(|| ClientError::Protocol("response missing report".into()))?,
        )
    }

    /// Like [`Client::solve_opts`], additionally asking the server to
    /// trace the request: returns the report together with the inline
    /// span tree (`None` only if the server elided it). Pretty-print the
    /// tree with [`crate::trace::render_span_tree`].
    #[allow(clippy::too_many_arguments)]
    pub fn solve_traced(
        &mut self,
        graph: &str,
        solver: &str,
        q: &[NodeId],
        deadline_ms: Option<u64>,
        max_size: Option<usize>,
        no_cache: bool,
    ) -> Result<(WireReport, Option<Json>)> {
        let mut fields =
            Self::solve_fields("solve", graph, solver, deadline_ms, max_size, no_cache);
        fields.push(("trace", Json::Bool(true)));
        fields.push((
            "q",
            Json::Arr(q.iter().map(|&v| Json::from(u64::from(v))).collect()),
        ));
        let v = self.request(fields)?;
        let report = WireReport::from_json(
            v.get("report")
                .ok_or_else(|| ClientError::Protocol("response missing report".into()))?,
        )?;
        Ok((report, v.get("trace").cloned()))
    }

    /// Solves a batch; per-query failures come back in place.
    pub fn batch(
        &mut self,
        graph: &str,
        solver: &str,
        queries: &[Vec<NodeId>],
        deadline_ms: Option<u64>,
        max_size: Option<usize>,
    ) -> Result<Vec<std::result::Result<WireReport, WireError>>> {
        self.batch_opts(graph, solver, queries, deadline_ms, max_size, false)
    }

    /// Like [`Client::batch`], additionally controlling the server-side
    /// solve cache.
    pub fn batch_opts(
        &mut self,
        graph: &str,
        solver: &str,
        queries: &[Vec<NodeId>],
        deadline_ms: Option<u64>,
        max_size: Option<usize>,
        no_cache: bool,
    ) -> Result<Vec<std::result::Result<WireReport, WireError>>> {
        let mut fields =
            Self::solve_fields("batch", graph, solver, deadline_ms, max_size, no_cache);
        fields.push((
            "queries",
            Json::Arr(
                queries
                    .iter()
                    .map(|q| Json::Arr(q.iter().map(|&v| Json::from(u64::from(v))).collect()))
                    .collect(),
            ),
        ));
        let v = self.request(fields)?;
        let reports = v
            .get("reports")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("response missing reports".into()))?;
        reports
            .iter()
            .map(|r| match r.get("error") {
                Some(e) => Ok(Err(WireError::from_json(e))),
                None => WireReport::from_json(r).map(Ok),
            })
            .collect()
    }

    /// Fetches the metrics snapshot.
    pub fn stats(&mut self) -> Result<Json> {
        let v = self.request(vec![("cmd", Json::from("stats"))])?;
        v.get("stats")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("response missing stats".into()))
    }

    /// Fetches the Prometheus text exposition (`metrics` command).
    pub fn metrics_text(&mut self) -> Result<String> {
        let v = self.request(vec![("cmd", Json::from("metrics"))])?;
        v.get("text")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("response missing text".into()))
    }

    /// Fetches the newest slow-query entries (`slowlog` command), newest
    /// first; `limit` caps the count.
    pub fn slowlog(&mut self, limit: Option<usize>) -> Result<Vec<Json>> {
        let mut fields = vec![("cmd", Json::from("slowlog"))];
        if let Some(l) = limit {
            fields.push(("limit", Json::from(l)));
        }
        let v = self.request(fields)?;
        v.get("entries")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .ok_or_else(|| ClientError::Protocol("response missing entries".into()))
    }

    /// Lists cataloged graphs.
    pub fn graphs(&mut self) -> Result<Vec<GraphInfo>> {
        let v = self.request(vec![("cmd", Json::from("graphs"))])?;
        let arr = v
            .get("graphs")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("response missing graphs".into()))?;
        arr.iter()
            .map(|g| {
                Ok(GraphInfo {
                    name: g
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    source: g
                        .get("source")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    nodes: g.get("nodes").and_then(Json::as_u64).unwrap_or(0) as usize,
                    edges: g.get("edges").and_then(Json::as_u64).unwrap_or(0) as usize,
                    weighted: g.get("weighted").and_then(Json::as_bool).unwrap_or(false),
                    solvers: g
                        .get("solvers")
                        .and_then(Json::as_array)
                        .map(|s| {
                            s.iter()
                                .filter_map(Json::as_str)
                                .map(str::to_string)
                                .collect()
                        })
                        .unwrap_or_default(),
                })
            })
            .collect()
    }

    /// Loads a graph into the server's catalog.
    pub fn load(&mut self, name: &str, source: &str) -> Result<(usize, usize)> {
        let v = self.request(vec![
            ("cmd", Json::from("load")),
            ("name", Json::from(name)),
            ("source", Json::from(source)),
        ])?;
        Ok((
            v.get("nodes").and_then(Json::as_u64).unwrap_or(0) as usize,
            v.get("edges").and_then(Json::as_u64).unwrap_or(0) as usize,
        ))
    }

    /// Evicts a graph; `true` if it was loaded.
    pub fn evict(&mut self, name: &str) -> Result<bool> {
        let v = self.request(vec![
            ("cmd", Json::from("evict")),
            ("name", Json::from(name)),
        ])?;
        Ok(v.get("evicted").and_then(Json::as_bool).unwrap_or(false))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        self.request(vec![("cmd", Json::from("ping"))]).map(|_| ())
    }

    /// Burns worker CPU (testing/calibration).
    pub fn burn(&mut self, ms: u64) -> Result<()> {
        self.request(vec![("cmd", Json::from("burn")), ("ms", Json::from(ms))])
            .map(|_| ())
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<()> {
        self.request(vec![("cmd", Json::from("shutdown"))])
            .map(|_| ())
    }

    /// Converts this lockstep client into a [`PipelinedClient`] on the
    /// same connection (no responses may be outstanding — lockstep use
    /// guarantees that).
    pub fn into_pipelined(self) -> PipelinedClient {
        PipelinedClient {
            reader: self.reader,
            writer: self.writer,
            next_id: self.next_id,
            pending: Vec::new(),
        }
    }
}

/// A pipelining protocol client: many requests in flight on one
/// connection, responses matched by `id`.
///
/// The epoll transport answers pipelined requests strictly in request
/// order; the threaded transport serves one request at a time per
/// connection, so pipelined requests queue server-side and *also* come
/// back in order. Either way, send K requests with
/// [`PipelinedClient::send_raw`] / [`PipelinedClient::send`] and collect
/// each response with [`PipelinedClient::recv_until`] — responses that
/// arrive before the one asked for are buffered, so collection order is
/// free.
///
/// Used by the loadgen's open-loop `--connections` mode and the
/// transport tests; [`RouterClient`] stays lockstep.
pub struct PipelinedClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    /// Responses read while waiting for a different id.
    pending: Vec<Json>,
}

impl fmt::Debug for PipelinedClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelinedClient")
            .field("peer", &self.writer.peer_addr().ok())
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl PipelinedClient {
    /// Connects to the server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<PipelinedClient> {
        Ok(Client::connect(addr)?.into_pipelined())
    }

    /// Sends one raw request line without waiting for its response.
    pub fn send_raw(&mut self, line: &str) -> Result<()> {
        // Single write per request, like the lockstep client.
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.writer.write_all(&buf)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Sends a request object, attaching a fresh `id`, and returns that
    /// id for a later [`PipelinedClient::recv_until`].
    pub fn send(&mut self, mut fields: Vec<(&'static str, Json)>) -> Result<u64> {
        self.next_id += 1;
        let id = self.next_id;
        fields.push(("id", Json::from(id)));
        self.send_raw(&Json::obj(fields).to_string())?;
        Ok(id)
    }

    /// Sends a `solve` without waiting; pair with
    /// [`PipelinedClient::recv_until`].
    pub fn send_solve(
        &mut self,
        graph: &str,
        solver: &str,
        q: &[NodeId],
        deadline_ms: Option<u64>,
    ) -> Result<u64> {
        let mut fields = vec![
            ("cmd", Json::from("solve")),
            ("graph", Json::from(graph)),
            ("solver", Json::from(solver)),
            (
                "q",
                Json::Arr(q.iter().map(|&v| Json::from(u64::from(v))).collect()),
            ),
        ];
        if let Some(d) = deadline_ms {
            fields.push(("deadline_ms", Json::from(d)));
        }
        self.send(fields)
    }

    /// Reads responses until the one carrying `id` arrives and returns
    /// it (`ok` or error, decoded like [`Client::request`]). Responses
    /// for *other* ids read along the way are buffered for their own
    /// `recv_until` calls — so pipelined responses may be collected in
    /// any order, even though the wire delivers them in request order.
    pub fn recv_until(&mut self, id: u64) -> Result<Json> {
        if let Some(i) = self
            .pending
            .iter()
            .position(|v| v.get("id").and_then(Json::as_u64) == Some(id))
        {
            return Self::decode(self.pending.remove(i));
        }
        loop {
            let mut response = String::new();
            let n = self.reader.read_line(&mut response)?;
            if n == 0 {
                return Err(ClientError::Protocol(
                    "connection closed before a response arrived".into(),
                ));
            }
            let v = parse(response.trim())
                .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
            if v.get("id").and_then(Json::as_u64) == Some(id) {
                return Self::decode(v);
            }
            self.pending.push(v);
        }
    }

    fn decode(v: Json) -> Result<Json> {
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(v),
            Some(false) => {
                let err = v.get("error").cloned().unwrap_or(Json::Null);
                Err(ClientError::Server(WireError::from_json(&err)))
            }
            None => Err(ClientError::Protocol(format!(
                "response missing \"ok\": {v}"
            ))),
        }
    }
}

/// A resharding-safe client for the sharded tier: a [`Client`] pointed
/// at an `mwc-router`, with failures the server marked
/// [retryable](WireError::is_retryable) retried after a doubling
/// backoff.
///
/// The server flags each wire error with `"retryable"`: true for
/// transient conditions — `shard_unavailable` (the shard behind a graph
/// is restarting, being replaced, or mid-reshard), `graph_evicted` (the
/// request was parked in a coalescer window whose graph was evicted
/// mid-wait), `overloaded` and `too_many_connections` (backpressure) —
/// false for deterministic rejections. A plain client surfaces all of
/// them immediately; this wrapper absorbs the transient ones:
///
/// * every request method retries a retryable failure up to
///   `max_retries` times, sleeping `backoff`, `2·backoff`, `4·backoff`,
///   … between attempts (the reprobe loop on the router needs real time
///   to re-admit a recovered shard);
/// * [`RouterClient::batch`] additionally heals *partial* failures:
///   entries that came back retryable inside an otherwise successful
///   batch are re-issued as individual solves through the same retry
///   path, so one dying shard costs latency, not answers — as long as
///   it comes back.
///
/// Any other error (infeasible query, unknown solver, …) is returned
/// immediately: retrying cannot change a deterministic answer.
pub struct RouterClient {
    client: Client,
    max_retries: usize,
    backoff: std::time::Duration,
}

impl RouterClient {
    /// Connects to a router with the default retry policy (3 retries,
    /// 50 ms initial backoff — ≈ 350 ms of patience).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RouterClient> {
        Ok(RouterClient {
            client: Client::connect(addr)?,
            max_retries: 3,
            backoff: std::time::Duration::from_millis(50),
        })
    }

    /// Overrides the retry policy (`max_retries` may be 0 to disable).
    pub fn with_retry(mut self, max_retries: usize, backoff: std::time::Duration) -> RouterClient {
        self.max_retries = max_retries;
        self.backoff = backoff;
        self
    }

    /// The wrapped plain client, for requests that need no retry
    /// semantics (e.g. raw lines in tests).
    pub fn inner(&mut self) -> &mut Client {
        &mut self.client
    }

    fn with_retries<T>(&mut self, mut call: impl FnMut(&mut Client) -> Result<T>) -> Result<T> {
        let mut delay = self.backoff;
        let mut attempt = 0;
        loop {
            match call(&mut self.client) {
                Err(ClientError::Server(e)) if e.is_retryable() => {
                    if attempt >= self.max_retries {
                        return Err(ClientError::Server(e));
                    }
                    attempt += 1;
                    std::thread::sleep(delay);
                    // Doubling, capped: generous retry budgets must not
                    // decay into multi-minute sleeps.
                    delay = (delay * 2).min(std::time::Duration::from_secs(1));
                }
                other => return other,
            }
        }
    }

    /// [`Client::solve`] with retry on retryable errors.
    pub fn solve(
        &mut self,
        graph: &str,
        solver: &str,
        q: &[NodeId],
        deadline_ms: Option<u64>,
        max_size: Option<usize>,
    ) -> Result<WireReport> {
        self.with_retries(|c| c.solve(graph, solver, q, deadline_ms, max_size))
    }

    /// [`Client::batch`] with retry on retryable errors, at both
    /// levels: a failed request is retried whole, and per-entry
    /// `shard_unavailable` errors in a successful reply are re-issued as
    /// individual solves (each with its own retries).
    pub fn batch(
        &mut self,
        graph: &str,
        solver: &str,
        queries: &[Vec<NodeId>],
        deadline_ms: Option<u64>,
        max_size: Option<usize>,
    ) -> Result<Vec<std::result::Result<WireReport, WireError>>> {
        let mut results =
            self.with_retries(|c| c.batch(graph, solver, queries, deadline_ms, max_size))?;
        for (q, slot) in queries.iter().zip(results.iter_mut()) {
            if matches!(slot, Err(e) if e.is_retryable()) {
                match self.solve(graph, solver, q, deadline_ms, max_size) {
                    Ok(report) => *slot = Ok(report),
                    // The re-issue's verdict supersedes the stale one:
                    // e.g. the recovered owner may now answer
                    // unknown_graph — deterministic, and must not be
                    // reported under a retryable code.
                    Err(ClientError::Server(e)) => *slot = Err(e),
                    // Transport trouble on the re-issue: keep the
                    // original shard_unavailable (still retryable).
                    Err(_) => {}
                }
            }
        }
        Ok(results)
    }

    /// The router's merged `stats` document (router + aggregate +
    /// per-shard sections).
    pub fn stats(&mut self) -> Result<Json> {
        self.with_retries(|c| c.stats())
    }

    /// The merged `graphs` listing (each entry annotated with its shard).
    pub fn graphs(&mut self) -> Result<Vec<GraphInfo>> {
        self.with_retries(|c| c.graphs())
    }

    /// The router's own Prometheus text exposition (routing counters and
    /// per-shard health; answered locally, no shard involved).
    pub fn metrics_text(&mut self) -> Result<String> {
        self.client.metrics_text()
    }

    /// The merged slow-query log: every reachable shard's entries,
    /// annotated with the shard address and sorted slowest-first.
    pub fn slowlog(&mut self, limit: Option<usize>) -> Result<Vec<Json>> {
        self.with_retries(|c| c.slowlog(limit))
    }

    /// The `shard` introspection document: ring shape, per-shard health,
    /// and — when `graph` is given — the assignment for that name.
    pub fn shard_info(&mut self, graph: Option<&str>) -> Result<Json> {
        self.with_retries(|c| {
            let mut fields = vec![("cmd", Json::from("shard"))];
            if let Some(g) = graph {
                fields.push(("graph", Json::from(g)));
            }
            c.request(fields)
        })
    }

    /// [`Client::load`] with retry on retryable errors (the ring
    /// decides which shard materializes the graph).
    pub fn load(&mut self, name: &str, source: &str) -> Result<(usize, usize)> {
        self.with_retries(|c| c.load(name, source))
    }

    /// [`Client::evict`] with retry on retryable errors.
    pub fn evict(&mut self, name: &str) -> Result<bool> {
        self.with_retries(|c| c.evict(name))
    }

    /// Liveness probe of the router itself (answered locally, no shard
    /// involved).
    pub fn ping(&mut self) -> Result<()> {
        self.client.ping()
    }

    /// Asks the *router* to shut down gracefully; backends keep running.
    pub fn shutdown(&mut self) -> Result<()> {
        self.client.shutdown()
    }
}
