//! The graph catalog: named graphs, each with an engine built once.
//!
//! A serving process holds many graphs (the paper's deployments are
//! per-dataset: a social graph, a PPI network, …) and answers queries
//! against any of them by name. The catalog owns one
//! [`OwnedEngine`](mwc_core::OwnedEngine) per graph — built when the
//! graph is loaded, so the per-graph state (BFS workspace pool, degree
//! vector, landmark oracle, solve cache) is amortized across every
//! request the server will ever answer for it.
//!
//! # Degree-ordered serving layout
//!
//! Each engine is built over the **degree-ordered** relabeling of its
//! graph ([`Graph::degree_ordered`]): hubs get the low ids, packing the
//! traversal-hot CSR rows and distance-array prefix into a few cache
//! pages. The relabeling is invisible on the wire — [`CatalogEntry`]'s
//! solve methods translate query ids in and connector ids back out
//! through the stored [`NodePermutation`], so clients keep speaking the
//! graph's original ids.
//!
//! Access is read-mostly: lookups clone an `Arc` under a briefly held
//! read lock; loads build the graph and engine *outside* the lock and
//! only take the write lock to publish, so serving traffic never stalls
//! behind a multi-second load.

use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;
use std::sync::{Arc, RwLock};

use mwc_baselines::full_engine_shared;
use mwc_core::{
    CacheStats, Connector, GroupOutcome, GroupQuery, OwnedEngine, QueryOptions, SolveReport,
};
use mwc_graph::generators::barabasi_albert::barabasi_albert;
use mwc_graph::generators::karate::karate_club;
use mwc_graph::io::{read_edge_list, read_weighted_edge_list};
use mwc_graph::permute::NodePermutation;
use mwc_graph::{Graph, NodeId};
use rand::SeedableRng;

use crate::error::{Result, ServiceError};
use crate::protocol::CacheSeed;

/// Where a cataloged graph comes from. Parsed from the spec strings the
/// server takes on its command line and in `load` requests:
///
/// | spec                    | meaning                                           |
/// |-------------------------|---------------------------------------------------|
/// | `karate`                | Zachary's karate club (Figure 1)                  |
/// | `standin:jazz`          | a Table 1 stand-in at full size                   |
/// | `standin:dblp@0.01`     | the same, node count scaled by the factor         |
/// | `file:/path/edges.txt`  | SNAP-style edge list (`u v` per line, `#` comments) |
/// | `ba:5000x4`             | Barabási–Albert, 5000 nodes, 4 edges per arrival  |
/// | `wfile:/path/edges.txt` | weighted edge list (`u v w` per line; missing `w` → 1) |
/// | `wba:5000x4x8`          | the BA graph with weights in `1..=8` hashed per edge (`x8` optional, default 8) |
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSource {
    /// Zachary's karate club.
    Karate,
    /// A `mwc_datasets::realworld` stand-in, with a node-count scale.
    StandIn {
        /// Paper dataset name (`jazz`, `dblp`, …).
        name: String,
        /// Node-count scale in `(0, 1]`.
        scale: f64,
    },
    /// An edge-list file on disk.
    File(String),
    /// A weighted (`u v w`) edge-list file on disk.
    WeightedFile(String),
    /// A deterministic Barabási–Albert graph (seeded by the spec itself).
    BarabasiAlbert {
        /// Node count.
        n: usize,
        /// Edges per arriving node.
        k: usize,
    },
    /// The same deterministic BA topology with integer edge weights in
    /// `1..=max_weight`, hashed from each edge's endpoints (so replicas
    /// rebuilding the spec agree bit-for-bit on every weight).
    WeightedBarabasiAlbert {
        /// Node count.
        n: usize,
        /// Edges per arriving node.
        k: usize,
        /// Largest edge weight (weights are uniform-ish in `1..=max`).
        max_weight: u32,
    },
}

/// Default `max_weight` of `wba:` specs without an explicit `x<maxw>`.
pub const DEFAULT_WBA_MAX_WEIGHT: u32 = 8;

/// The deterministic per-edge weight of `wba:` graphs: symmetric (hashed
/// from the unordered endpoint pair) and in `1..=max_weight`.
fn wba_edge_weight(u: NodeId, v: NodeId, max_weight: u32) -> u32 {
    let (a, b) = (u.min(v) as u64, u.max(v) as u64);
    let h = a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    (h % max_weight as u64) as u32 + 1
}

impl GraphSource {
    /// Parses a spec string (see the table in the type docs).
    pub fn parse(spec: &str) -> Result<GraphSource> {
        let bad = |m: String| ServiceError::BadSource(m);
        if spec == "karate" {
            return Ok(GraphSource::Karate);
        }
        if let Some(rest) = spec.strip_prefix("standin:") {
            let (name, scale) = match rest.split_once('@') {
                Some((name, s)) => {
                    let scale: f64 = s
                        .parse()
                        .map_err(|_| bad(format!("bad scale {s:?} in {spec:?}")))?;
                    if !(scale > 0.0 && scale <= 1.0) {
                        return Err(bad(format!("scale must be in (0, 1], got {scale}")));
                    }
                    (name, scale)
                }
                None => (rest, 1.0),
            };
            if mwc_datasets::realworld::spec(name).is_none() {
                return Err(bad(format!(
                    "unknown stand-in {name:?} (see mwc_datasets::STAND_INS)"
                )));
            }
            return Ok(GraphSource::StandIn {
                name: name.to_string(),
                scale,
            });
        }
        if let Some(path) = spec.strip_prefix("file:") {
            return Ok(GraphSource::File(path.to_string()));
        }
        if let Some(path) = spec.strip_prefix("wfile:") {
            return Ok(GraphSource::WeightedFile(path.to_string()));
        }
        if let Some(rest) = spec.strip_prefix("ba:") {
            let (n, k) = rest
                .split_once('x')
                .ok_or_else(|| bad(format!("expected ba:<nodes>x<k>, got {spec:?}")))?;
            let n: usize = n
                .parse()
                .map_err(|_| bad(format!("bad node count {n:?}")))?;
            let k: usize = k.parse().map_err(|_| bad(format!("bad degree {k:?}")))?;
            if n < 2 || k == 0 {
                return Err(bad("ba graph needs n >= 2 and k >= 1".to_string()));
            }
            return Ok(GraphSource::BarabasiAlbert { n, k });
        }
        if let Some(rest) = spec.strip_prefix("wba:") {
            let (n, rest) = rest
                .split_once('x')
                .ok_or_else(|| bad(format!("expected wba:<nodes>x<k>[x<maxw>], got {spec:?}")))?;
            let n: usize = n
                .parse()
                .map_err(|_| bad(format!("bad node count {n:?}")))?;
            let (k, max_weight) = match rest.split_once('x') {
                Some((k, m)) => {
                    let m: u32 = m
                        .parse()
                        .map_err(|_| bad(format!("bad max weight {m:?}")))?;
                    (k, m)
                }
                None => (rest, DEFAULT_WBA_MAX_WEIGHT),
            };
            let k: usize = k.parse().map_err(|_| bad(format!("bad degree {k:?}")))?;
            if n < 2 || k == 0 || max_weight == 0 {
                return Err(bad(
                    "wba graph needs n >= 2, k >= 1, max weight >= 1".to_string(),
                ));
            }
            // Same bound the wfile: loader enforces: u32 distance
            // arithmetic saturates at INF_DIST, so near-u32::MAX weights
            // would read as unreachable.
            if max_weight > mwc_graph::MAX_EDGE_WEIGHT {
                return Err(bad(format!(
                    "wba max weight {max_weight} exceeds the maximum {}",
                    mwc_graph::MAX_EDGE_WEIGHT
                )));
            }
            return Ok(GraphSource::WeightedBarabasiAlbert { n, k, max_weight });
        }
        Err(bad(format!(
            "unrecognized source {spec:?} (expected karate | standin:<name>[@scale] | \
             file:<path> | wfile:<path> | ba:<n>x<k> | wba:<n>x<k>[x<maxw>])"
        )))
    }

    /// Materializes the graph. Deterministic for every non-`file` source.
    pub fn build(&self) -> Result<Graph> {
        match self {
            GraphSource::Karate => Ok(karate_club()),
            GraphSource::StandIn { name, scale } => {
                let sg = mwc_datasets::standin_scaled(name, *scale)
                    .ok_or_else(|| ServiceError::BadSource(format!("unknown stand-in {name:?}")))?;
                Ok(sg.graph)
            }
            GraphSource::File(path) => {
                let reader = BufReader::new(File::open(path)?);
                let loaded = read_edge_list(reader)
                    .map_err(|e| ServiceError::BadSource(format!("{path}: {e}")))?;
                Ok(loaded.graph)
            }
            GraphSource::WeightedFile(path) => {
                let reader = BufReader::new(File::open(path)?);
                let loaded = read_weighted_edge_list(reader)
                    .map_err(|e| ServiceError::BadSource(format!("{path}: {e}")))?;
                Ok(loaded.graph)
            }
            GraphSource::BarabasiAlbert { n, k } => {
                let mut rng =
                    rand::rngs::StdRng::seed_from_u64(0xBA ^ (*n as u64) ^ ((*k as u64) << 32));
                Ok(barabasi_albert(*n, *k, &mut rng))
            }
            GraphSource::WeightedBarabasiAlbert { n, k, max_weight } => {
                // Same topology (and seed) as the unweighted `ba:` twin;
                // only the weights differ.
                let mut rng =
                    rand::rngs::StdRng::seed_from_u64(0xBA ^ (*n as u64) ^ ((*k as u64) << 32));
                let base = barabasi_albert(*n, *k, &mut rng);
                let edges: Vec<(NodeId, NodeId, u32)> = base
                    .edges()
                    .map(|(u, v)| (u, v, wba_edge_weight(u, v, *max_weight)))
                    .collect();
                Graph::from_weighted_edges(base.num_nodes(), &edges)
                    .map_err(|e| ServiceError::BadSource(format!("{self:?}: {e}")))
            }
        }
    }
}

/// FNV-1a digest of a graph's weighted edge list in the graph's own id
/// space — the fingerprint cache seeds carry so imports can tell whether
/// two catalogs weighted "the same" graph identically. `0` for
/// unweighted graphs (nonzero for every weighted one).
pub fn weight_digest(g: &Graph) -> u64 {
    if !g.is_weighted() {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1_0000_0001_b3);
    };
    for (u, v, w) in g.weighted_edges() {
        mix(u as u64);
        mix(v as u64);
        mix(w as u64);
    }
    h.max(1)
}

/// One loaded graph: its name, provenance, shared graph handle, and the
/// engine serving it. Handed out as an `Arc` so requests keep a
/// consistent view even if the entry is concurrently evicted or
/// replaced.
///
/// The engine runs over the degree-ordered relabeling of `graph`; use
/// [`CatalogEntry::solve`] / [`CatalogEntry::solve_batch`], which speak
/// original ids at both ends. Reaching into [`CatalogEntry::engine`]
/// directly means speaking *relabeled* ids.
#[derive(Debug)]
pub struct CatalogEntry {
    /// Catalog name (the key requests use).
    pub name: String,
    /// The spec string this entry was loaded from.
    pub source: String,
    /// Vertex count of the served graph. The original-layout graph
    /// itself is *not* retained — only the degree-ordered copy inside
    /// the engine is resident, so a cataloged graph costs one CSR, not
    /// two. Rebuild from [`CatalogEntry::source`] when the original
    /// layout is needed (tests do).
    nodes: usize,
    /// Edge count of the served graph.
    edges: usize,
    /// Whether the served graph carries integer edge weights (every
    /// distance — and the reported Wiener index — is then weighted).
    weighted: bool,
    /// [`weight_digest`] of the original-layout graph: `0` when
    /// unweighted, a nonzero edge-list fingerprint otherwise. Attached
    /// to exported cache seeds and checked on import.
    weight_digest: u64,
    /// Maps original ids (`old`) to the engine's degree-ordered ids
    /// (`new`) and back.
    perm: NodePermutation,
    /// The engine over the degree-ordered graph, with the full method
    /// table registered.
    engine: OwnedEngine,
}

impl CatalogEntry {
    /// Builds an entry: degree-orders the graph, constructs the full
    /// engine over the relabeled layout, and remembers the permutation
    /// for boundary translation. The original-layout graph is dropped
    /// here (the caller's `Graph` is consumed). Deterministic for a
    /// given graph.
    fn build(
        name: &str,
        source: &str,
        graph: Graph,
        solve_cache_bytes: Option<usize>,
        solve_cache_ttl: Option<std::time::Duration>,
    ) -> CatalogEntry {
        let (ordered, perm) = graph.degree_ordered();
        let (nodes, edges) = (graph.num_nodes(), graph.num_edges());
        // Fingerprint the original layout: replicas that load the same
        // spec agree on the digest regardless of their degree ordering.
        let digest = weight_digest(&graph);
        drop(graph);
        let mut engine = full_engine_shared(Arc::new(ordered));
        if let Some(bytes) = solve_cache_bytes {
            engine.set_solve_cache_bytes(bytes);
        }
        if solve_cache_ttl.is_some() {
            engine.set_solve_cache_ttl(solve_cache_ttl);
        }
        CatalogEntry {
            name: name.to_string(),
            source: source.to_string(),
            nodes,
            edges,
            weighted: digest != 0,
            weight_digest: digest,
            perm,
            engine,
        }
    }

    /// Vertex count of the served graph.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Edge count of the served graph.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Whether the served graph is integer-weighted.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// The graph's weighted-edge-list fingerprint (`0` when unweighted).
    pub fn weight_digest(&self) -> u64 {
        self.weight_digest
    }

    /// The serving engine (degree-ordered id space — translate through
    /// [`CatalogEntry::solve`] unless you know what you are doing).
    pub fn engine(&self) -> &OwnedEngine {
        &self.engine
    }

    /// Registered solver names, sorted.
    pub fn solver_names(&self) -> Vec<&str> {
        self.engine.solver_names()
    }

    /// The engine's solve-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// Translates one original-id vertex into the engine's id space.
    /// Out-of-range ids pass through unchanged: the id spaces have the
    /// same range, so the engine rejects them with the same
    /// `NodeOutOfRange` error the original graph would have produced.
    fn to_engine_id(&self, v: NodeId) -> NodeId {
        if (v as usize) < self.perm.len() {
            self.perm.to_new(v)
        } else {
            v
        }
    }

    /// Rewrites a report's connector from engine ids back to original
    /// ids. The objective value, timings, and diagnostics are
    /// layout-invariant and pass through untouched.
    fn translate_report(&self, mut report: SolveReport) -> SolveReport {
        report.connector =
            Connector::from_vertices(self.perm.map_to_old(report.connector.vertices()));
        report
    }

    /// Solves one query against this entry's engine, speaking original
    /// graph ids on both sides of the call.
    pub fn solve(
        &self,
        solver: &str,
        q: &[NodeId],
        options: &QueryOptions,
    ) -> mwc_core::Result<SolveReport> {
        let q_new: Vec<NodeId> = q.iter().map(|&v| self.to_engine_id(v)).collect();
        self.engine
            .solve_with(solver, &q_new, options)
            .map(|r| self.translate_report(r))
    }

    /// Heterogeneous-group counterpart of [`CatalogEntry::solve`]: a
    /// window of queries (each with its own solver and options) runs
    /// through [`QueryEngine::solve_group`](mwc_core::QueryEngine::solve_group),
    /// which dedups identical work and prefetches per-root BFS sweeps
    /// shared **across** the queries. Ids are translated at the boundary
    /// in both directions; per-query errors stay in place. The coalescer
    /// is the caller.
    pub fn solve_group(&self, queries: &[GroupQuery]) -> GroupOutcome {
        let translated: Vec<GroupQuery> = queries
            .iter()
            .map(|gq| {
                GroupQuery::new(
                    gq.solver.clone(),
                    gq.q.iter().map(|&v| self.to_engine_id(v)).collect(),
                    gq.options.clone(),
                )
            })
            .collect();
        let mut outcome = self.engine.solve_group(&translated);
        outcome.results = outcome
            .results
            .into_iter()
            .map(|r| r.map(|report| self.translate_report(report)))
            .collect();
        outcome
    }

    /// Exports the engine's warm solve-cache entries as wire-ready
    /// [`CacheSeed`]s, **original ids** throughout (query keys and
    /// connectors are translated back through the permutation), most
    /// recently used first. The handoff side of live migration: the
    /// seeds feed another replica's [`CatalogEntry::import_cache`] —
    /// possibly one that degree-ordered the same graph into a different
    /// permutation, which is why the wire speaks original ids.
    pub fn export_cache(&self) -> Vec<CacheSeed> {
        self.engine
            .export_cache()
            .into_iter()
            .map(|(solver, q, max_size, report)| CacheSeed {
                solver,
                q: self.perm.map_to_old(&q),
                max_size,
                weight_digest: self.weight_digest,
                report: self.translate_report(report),
            })
            .collect()
    }

    /// Imports warm-cache seeds exported by another replica (original
    /// ids), translating into this engine's id space and inserting under
    /// the exact key a fresh solve would probe. Seeds whose vertices do
    /// not fit this graph are skipped — a stale export must not poison
    /// the cache. Returns how many seeds were accepted (normal cache
    /// budgets apply).
    pub fn import_cache(&self, seeds: &[CacheSeed]) -> usize {
        let mut imported = 0;
        for seed in seeds {
            // A seed solved under a different weighting (or none) would
            // silently serve wrong weighted answers — skip it.
            if seed.weight_digest != self.weight_digest {
                continue;
            }
            if seed
                .q
                .iter()
                .chain(seed.report.connector.vertices())
                .any(|&v| (v as usize) >= self.nodes)
            {
                continue;
            }
            let q_new: Vec<NodeId> = seed.q.iter().map(|&v| self.to_engine_id(v)).collect();
            let mut report = seed.report.clone();
            report.connector = Connector::from_vertices(
                report
                    .connector
                    .vertices()
                    .iter()
                    .map(|&v| self.to_engine_id(v))
                    .collect(),
            );
            if self
                .engine
                .seed_cache(&seed.solver, &q_new, seed.max_size, report)
            {
                imported += 1;
            }
        }
        imported
    }

    /// Batch counterpart of [`CatalogEntry::solve`]: queries in, reports
    /// out, all in original ids, with per-query errors kept in place.
    pub fn solve_batch(
        &self,
        solver: &str,
        queries: &[Vec<NodeId>],
        options: &QueryOptions,
    ) -> Vec<mwc_core::Result<SolveReport>> {
        let translated: Vec<Vec<NodeId>> = queries
            .iter()
            .map(|q| q.iter().map(|&v| self.to_engine_id(v)).collect())
            .collect();
        self.engine
            .solve_batch(solver, &translated, options)
            .into_iter()
            .map(|r| r.map(|report| self.translate_report(report)))
            .collect()
    }
}

/// A named collection of loaded graphs with their engines.
#[derive(Debug, Default)]
pub struct Catalog {
    entries: RwLock<HashMap<String, Arc<CatalogEntry>>>,
    /// Solve-cache **byte** budget applied to every engine this catalog
    /// builds (`None` keeps the engine default). The memory bound that
    /// matters to a long-lived server: entry counts say nothing about
    /// resident bytes when connectors vary in size.
    solve_cache_bytes: Option<usize>,
    /// Solve-cache time-to-live applied to every engine this catalog
    /// builds (`None` keeps the engine default of no expiry). The
    /// freshness bound long-lived servers want.
    solve_cache_ttl: Option<std::time::Duration>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the solve-cache byte budget for every engine built by later
    /// [`Catalog::load`] calls (`0` disables caching). Maps to
    /// [`mwc_core::QueryEngine::set_solve_cache_bytes`]; the server's
    /// `--cache-bytes` flag lands here.
    pub fn with_solve_cache_bytes(mut self, bytes: usize) -> Self {
        self.solve_cache_bytes = Some(bytes);
        self
    }

    /// Sets the solve-cache time-to-live for every engine built by later
    /// [`Catalog::load`] calls. Maps to
    /// [`mwc_core::QueryEngine::set_solve_cache_ttl`]; the server's
    /// `--cache-ttl` flag lands here.
    pub fn with_solve_cache_ttl(mut self, ttl: std::time::Duration) -> Self {
        self.solve_cache_ttl = Some(ttl);
        self
    }

    /// Loads `spec` under `name`, replacing any previous entry of that
    /// name. Graph generation, degree ordering, and engine construction
    /// run outside the lock; only the publish takes the write lock.
    /// Returns the new entry.
    pub fn load(&self, name: &str, spec: &str) -> Result<Arc<CatalogEntry>> {
        if name.is_empty() {
            return Err(ServiceError::BadSource("empty graph name".to_string()));
        }
        let source = GraphSource::parse(spec)?;
        let graph = source.build()?;
        let entry = Arc::new(CatalogEntry::build(
            name,
            spec,
            graph,
            self.solve_cache_bytes,
            self.solve_cache_ttl,
        ));
        self.entries
            .write()
            .expect("catalog lock poisoned")
            .insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Looks up a graph by name, or reports which names are loaded.
    pub fn get(&self, name: &str) -> Result<Arc<CatalogEntry>> {
        let entries = self.entries.read().expect("catalog lock poisoned");
        entries
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownGraph {
                requested: name.to_string(),
                loaded: {
                    let mut names: Vec<String> = entries.keys().cloned().collect();
                    names.sort_unstable();
                    names
                },
            })
    }

    /// Removes an entry; `true` if it existed. In-flight requests holding
    /// the entry's `Arc` finish normally — eviction only stops new
    /// lookups.
    pub fn evict(&self, name: &str) -> bool {
        self.entries
            .write()
            .expect("catalog lock poisoned")
            .remove(name)
            .is_some()
    }

    /// All entries, sorted by name.
    pub fn list(&self) -> Vec<Arc<CatalogEntry>> {
        let mut entries: Vec<Arc<CatalogEntry>> = self
            .entries
            .read()
            .expect("catalog lock poisoned")
            .values()
            .cloned()
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
    }

    /// Number of loaded graphs.
    pub fn len(&self) -> usize {
        self.entries.read().expect("catalog lock poisoned").len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_specs() {
        assert_eq!(GraphSource::parse("karate").unwrap(), GraphSource::Karate);
        assert_eq!(
            GraphSource::parse("standin:jazz").unwrap(),
            GraphSource::StandIn {
                name: "jazz".into(),
                scale: 1.0
            }
        );
        assert_eq!(
            GraphSource::parse("standin:dblp@0.01").unwrap(),
            GraphSource::StandIn {
                name: "dblp".into(),
                scale: 0.01
            }
        );
        assert_eq!(
            GraphSource::parse("file:/tmp/x.txt").unwrap(),
            GraphSource::File("/tmp/x.txt".into())
        );
        assert_eq!(
            GraphSource::parse("ba:500x3").unwrap(),
            GraphSource::BarabasiAlbert { n: 500, k: 3 }
        );
        assert_eq!(
            GraphSource::parse("wfile:/tmp/w.txt").unwrap(),
            GraphSource::WeightedFile("/tmp/w.txt".into())
        );
        assert_eq!(
            GraphSource::parse("wba:500x3").unwrap(),
            GraphSource::WeightedBarabasiAlbert {
                n: 500,
                k: 3,
                max_weight: DEFAULT_WBA_MAX_WEIGHT
            }
        );
        assert_eq!(
            GraphSource::parse("wba:500x3x20").unwrap(),
            GraphSource::WeightedBarabasiAlbert {
                n: 500,
                k: 3,
                max_weight: 20
            }
        );
        for bad in [
            "",
            "nope",
            "standin:atlantis",
            "standin:jazz@0",
            "standin:jazz@2",
            "ba:10",
            "ba:ax2",
            "wba:10",
            "wba:100x2x0",
            "wba:100x2xq",
            "wba:100x2x4294967295", // above MAX_EDGE_WEIGHT
        ] {
            assert!(GraphSource::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn weighted_ba_shares_topology_with_its_unweighted_twin() {
        let w = GraphSource::parse("wba:300x2").unwrap().build().unwrap();
        let u = GraphSource::parse("ba:300x2").unwrap().build().unwrap();
        assert!(w.is_weighted());
        assert!(!u.is_weighted());
        assert_eq!(w.num_edges(), u.num_edges());
        let we: Vec<_> = w.weighted_edges().map(|(a, b, _)| (a, b)).collect();
        let ue: Vec<_> = u.edges().collect();
        assert_eq!(we, ue, "same edges, only weights added");
        for (_, _, wt) in w.weighted_edges() {
            assert!((1..=DEFAULT_WBA_MAX_WEIGHT).contains(&wt));
        }
        // Deterministic rebuild, including weights (the digest pins it).
        let again = GraphSource::parse("wba:300x2").unwrap().build().unwrap();
        assert_eq!(weight_digest(&w), weight_digest(&again));
        assert_ne!(weight_digest(&w), 0);
        assert_eq!(weight_digest(&u), 0);
    }

    #[test]
    fn weighted_entries_serve_weighted_answers_in_original_ids() {
        let catalog = Catalog::new();
        let entry = catalog.load("wtoy", "wba:400x3").unwrap();
        assert!(entry.is_weighted());
        assert_ne!(entry.weight_digest(), 0);
        // Reference graph in original layout (the entry only keeps the
        // degree-ordered copy).
        let original = GraphSource::parse("wba:400x3").unwrap().build().unwrap();
        let q = [5u32, 77, 200, 399];
        let report = entry.solve("ws-q", &q, &QueryOptions::default()).unwrap();
        assert!(report.connector.contains_all(&q));
        // The reported index is the *weighted* Wiener index of the
        // connector, layout-invariant.
        assert_eq!(
            report.wiener_index,
            report.connector.wiener_index(&original).unwrap()
        );
        // And it differs from the unweighted index of the same set (the
        // weights actually flowed through).
        let unweighted_twin = GraphSource::parse("ba:400x3").unwrap().build().unwrap();
        assert_ne!(
            report.wiener_index,
            report
                .connector
                .wiener_index(&unweighted_twin)
                .unwrap()
        );
    }

    #[test]
    fn import_rejects_seeds_from_a_different_weighting() {
        let catalog = Catalog::new();
        let weighted = catalog.load("w", "wba:200x2").unwrap();
        let plain = catalog.load("u", "ba:200x2").unwrap();
        let q = [3u32, 50, 150];
        weighted.solve("ws-q", &q, &QueryOptions::default()).unwrap();
        plain.solve("ws-q", &q, &QueryOptions::default()).unwrap();
        let wseeds = weighted.export_cache();
        assert!(wseeds.iter().all(|s| s.weight_digest != 0));
        let useeds = plain.export_cache();
        assert!(useeds.iter().all(|s| s.weight_digest == 0));
        // Cross imports are rejected in both directions…
        assert_eq!(plain.import_cache(&wseeds), 0);
        assert_eq!(weighted.import_cache(&useeds), 0);
        // …while matching replicas accept them.
        let other = Catalog::new();
        let replica = other.load("w2", "wba:200x2").unwrap();
        assert_eq!(replica.import_cache(&wseeds), wseeds.len());
        // A different max weight is a different weighting.
        let reweighted = other.load("w3", "wba:200x2x31").unwrap();
        assert_eq!(reweighted.import_cache(&wseeds), 0);
    }

    #[test]
    fn load_get_evict_roundtrip() {
        let catalog = Catalog::new();
        assert!(catalog.is_empty());
        let entry = catalog.load("karate", "karate").unwrap();
        assert_eq!(entry.num_nodes(), 34);
        assert!(entry.solver_names().contains(&"ws-q"));
        catalog.load("toy", "ba:200x2").unwrap();
        assert_eq!(catalog.len(), 2);
        let names: Vec<String> = catalog.list().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, vec!["karate", "toy"]);

        let got = catalog.get("karate").unwrap();
        assert!(Arc::ptr_eq(&got, &entry));
        match catalog.get("missing").unwrap_err() {
            ServiceError::UnknownGraph { requested, loaded } => {
                assert_eq!(requested, "missing");
                assert_eq!(loaded, vec!["karate", "toy"]);
            }
            other => panic!("unexpected error: {other}"),
        }

        assert!(catalog.evict("toy"));
        assert!(!catalog.evict("toy"));
        assert_eq!(catalog.len(), 1);
        // The held Arc keeps serving after eviction.
        assert!(got
            .solve("ws-q", &[0, 33], &QueryOptions::default())
            .is_ok());
    }

    #[test]
    fn standin_scales_and_serves() {
        let catalog = Catalog::new();
        let entry = catalog.load("mini-email", "standin:email@0.1").unwrap();
        assert!(entry.num_nodes() >= 64);
        assert!(entry.num_nodes() < 400);
        let report = entry
            .solve("st", &[0, 1, 2], &QueryOptions::default())
            .unwrap();
        assert!(report.connector.contains_all(&[0, 1, 2]));
    }

    #[test]
    fn entries_serve_original_ids_over_degree_ordered_engines() {
        let catalog = Catalog::new();
        let entry = catalog.load("karate", "karate").unwrap();
        // Independent original-layout reference (the entry itself does
        // not retain the original graph).
        let original = karate_club();
        // The engine's layout is hub-first…
        let engine_graph = entry.engine().graph();
        assert_eq!(engine_graph.degree(0), original.max_degree());
        // …but solve speaks original ids: the connector is a valid
        // original-id connector containing the original-id query.
        let q = [11u32, 24, 25, 29];
        let report = entry.solve("ws-q", &q, &QueryOptions::default()).unwrap();
        assert!(report.connector.contains_all(&q));
        let sub = original.induced(report.connector.vertices()).unwrap();
        assert!(mwc_graph::connectivity::is_connected(sub.graph()));
        // The objective value is layout-invariant: re-evaluate in the
        // original id space against the independently built graph.
        assert_eq!(
            report.wiener_index,
            report.connector.wiener_index(&original).unwrap()
        );
        // Batch path agrees with the single-query path.
        let batch = entry.solve_batch("ws-q", &[q.to_vec()], &QueryOptions::default());
        assert_eq!(
            batch[0].as_ref().unwrap().connector.vertices(),
            report.connector.vertices()
        );
        // Out-of-range ids surface the standard error, untranslated.
        assert!(entry
            .solve("ws-q", &[999], &QueryOptions::default())
            .is_err());
        // Cache counters are reachable through the entry.
        entry.solve("ws-q", &q, &QueryOptions::default()).unwrap();
        assert!(entry.cache_stats().hits >= 1);
    }

    #[test]
    fn catalog_applies_solve_cache_byte_budget() {
        let catalog = Catalog::new().with_solve_cache_bytes(700);
        let entry = catalog.load("karate", "karate").unwrap();
        let stats = entry.cache_stats();
        assert_eq!(stats.capacity_bytes, 700);
        // Default-built catalogs keep the engine default.
        let plain = Catalog::new();
        let e = plain.load("karate", "karate").unwrap();
        assert_eq!(
            e.cache_stats().capacity_bytes,
            mwc_core::engine::DEFAULT_SOLVE_CACHE_BYTES
        );
        // The budget actually bounds residency.
        for q in [[0u32, 33], [5, 16], [11, 24], [2, 8], [19, 30]] {
            entry.solve("ws-q", &q, &QueryOptions::default()).unwrap();
        }
        assert!(entry.cache_stats().bytes_used <= 700);
    }

    #[test]
    fn catalog_applies_solve_cache_ttl() {
        let catalog = Catalog::new().with_solve_cache_ttl(std::time::Duration::from_millis(30));
        let entry = catalog.load("karate", "karate").unwrap();
        let q = [11u32, 24, 25, 29];
        entry.solve("ws-q", &q, &QueryOptions::default()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        entry.solve("ws-q", &q, &QueryOptions::default()).unwrap();
        let stats = entry.cache_stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.hits, 0);
        // Default-built catalogs never expire.
        let plain = Catalog::new();
        let e = plain.load("karate", "karate").unwrap();
        e.solve("ws-q", &q, &QueryOptions::default()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        e.solve("ws-q", &q, &QueryOptions::default()).unwrap();
        assert_eq!(e.cache_stats().expired, 0);
        assert_eq!(e.cache_stats().hits, 1);
    }

    #[test]
    fn cache_export_import_streams_warm_entries_in_original_ids() {
        let catalog = Catalog::new();
        let old = catalog.load("karate", "karate").unwrap();
        let q = [11u32, 24, 25, 29];
        let warm = old.solve("ws-q", &q, &QueryOptions::default()).unwrap();
        old.solve("st", &[0, 33], &QueryOptions::default()).unwrap();

        let seeds = old.export_cache();
        assert_eq!(seeds.len(), 2);
        // Seeds speak original ids: the ws-q seed's query is the one the
        // client sent, and its connector contains it.
        let ws = seeds.iter().find(|s| s.solver == "ws-q").unwrap();
        let mut exported_q = ws.q.clone();
        exported_q.sort_unstable();
        assert_eq!(exported_q, q.to_vec(), "same terminal set, original ids");
        assert!(ws.report.connector.contains_all(&q));

        // A fresh replica imports the seeds and serves the first request
        // warm — same answer, zero misses.
        let other = Catalog::new();
        let new = other.load("karate", "karate").unwrap();
        assert_eq!(new.import_cache(&seeds), 2);
        let replay = new.solve("ws-q", &q, &QueryOptions::default()).unwrap();
        assert_eq!(replay.connector.vertices(), warm.connector.vertices());
        assert_eq!(replay.wiener_index, warm.wiener_index);
        let stats = new.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 0);

        // Seeds that do not fit the graph are skipped, not imported.
        let mut alien = seeds.clone();
        alien[0].q = vec![9999];
        let tiny = Catalog::new();
        let t = tiny.load("karate", "karate").unwrap();
        assert_eq!(t.import_cache(&alien), 1);

        // A cache-disabled replica accepts nothing.
        let cold = Catalog::new().with_solve_cache_bytes(0);
        let c = cold.load("karate", "karate").unwrap();
        assert_eq!(c.import_cache(&seeds), 0);
    }

    #[test]
    fn deterministic_rebuild() {
        let a = GraphSource::parse("ba:300x2").unwrap().build().unwrap();
        let b = GraphSource::parse("ba:300x2").unwrap().build().unwrap();
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
