//! The graph catalog: named graphs, each with an engine built once.
//!
//! A serving process holds many graphs (the paper's deployments are
//! per-dataset: a social graph, a PPI network, …) and answers queries
//! against any of them by name. The catalog owns one
//! [`OwnedEngine`](mwc_core::OwnedEngine) per graph — built when the
//! graph is loaded, so the per-graph state (BFS workspace pool, degree
//! vector, landmark oracle) is amortized across every request the server
//! will ever answer for it.
//!
//! Access is read-mostly: lookups clone an `Arc` under a briefly held
//! read lock; loads build the graph and engine *outside* the lock and
//! only take the write lock to publish, so serving traffic never stalls
//! behind a multi-second load.

use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;
use std::sync::{Arc, RwLock};

use mwc_baselines::full_engine_shared;
use mwc_core::OwnedEngine;
use mwc_graph::generators::barabasi_albert::barabasi_albert;
use mwc_graph::generators::karate::karate_club;
use mwc_graph::io::read_edge_list;
use mwc_graph::Graph;
use rand::SeedableRng;

use crate::error::{Result, ServiceError};

/// Where a cataloged graph comes from. Parsed from the spec strings the
/// server takes on its command line and in `load` requests:
///
/// | spec                    | meaning                                           |
/// |-------------------------|---------------------------------------------------|
/// | `karate`                | Zachary's karate club (Figure 1)                  |
/// | `standin:jazz`          | a Table 1 stand-in at full size                   |
/// | `standin:dblp@0.01`     | the same, node count scaled by the factor         |
/// | `file:/path/edges.txt`  | SNAP-style edge list (`u v` per line, `#` comments) |
/// | `ba:5000x4`             | Barabási–Albert, 5000 nodes, 4 edges per arrival  |
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSource {
    /// Zachary's karate club.
    Karate,
    /// A `mwc_datasets::realworld` stand-in, with a node-count scale.
    StandIn {
        /// Paper dataset name (`jazz`, `dblp`, …).
        name: String,
        /// Node-count scale in `(0, 1]`.
        scale: f64,
    },
    /// An edge-list file on disk.
    File(String),
    /// A deterministic Barabási–Albert graph (seeded by the spec itself).
    BarabasiAlbert {
        /// Node count.
        n: usize,
        /// Edges per arriving node.
        k: usize,
    },
}

impl GraphSource {
    /// Parses a spec string (see the table in the type docs).
    pub fn parse(spec: &str) -> Result<GraphSource> {
        let bad = |m: String| ServiceError::BadSource(m);
        if spec == "karate" {
            return Ok(GraphSource::Karate);
        }
        if let Some(rest) = spec.strip_prefix("standin:") {
            let (name, scale) = match rest.split_once('@') {
                Some((name, s)) => {
                    let scale: f64 = s
                        .parse()
                        .map_err(|_| bad(format!("bad scale {s:?} in {spec:?}")))?;
                    if !(scale > 0.0 && scale <= 1.0) {
                        return Err(bad(format!("scale must be in (0, 1], got {scale}")));
                    }
                    (name, scale)
                }
                None => (rest, 1.0),
            };
            if mwc_datasets::realworld::spec(name).is_none() {
                return Err(bad(format!(
                    "unknown stand-in {name:?} (see mwc_datasets::STAND_INS)"
                )));
            }
            return Ok(GraphSource::StandIn {
                name: name.to_string(),
                scale,
            });
        }
        if let Some(path) = spec.strip_prefix("file:") {
            return Ok(GraphSource::File(path.to_string()));
        }
        if let Some(rest) = spec.strip_prefix("ba:") {
            let (n, k) = rest
                .split_once('x')
                .ok_or_else(|| bad(format!("expected ba:<nodes>x<k>, got {spec:?}")))?;
            let n: usize = n
                .parse()
                .map_err(|_| bad(format!("bad node count {n:?}")))?;
            let k: usize = k.parse().map_err(|_| bad(format!("bad degree {k:?}")))?;
            if n < 2 || k == 0 {
                return Err(bad("ba graph needs n >= 2 and k >= 1".to_string()));
            }
            return Ok(GraphSource::BarabasiAlbert { n, k });
        }
        Err(bad(format!(
            "unrecognized source {spec:?} (expected karate | standin:<name>[@scale] | \
             file:<path> | ba:<n>x<k>)"
        )))
    }

    /// Materializes the graph. Deterministic for every non-`file` source.
    pub fn build(&self) -> Result<Graph> {
        match self {
            GraphSource::Karate => Ok(karate_club()),
            GraphSource::StandIn { name, scale } => {
                let sg = mwc_datasets::standin_scaled(name, *scale)
                    .ok_or_else(|| ServiceError::BadSource(format!("unknown stand-in {name:?}")))?;
                Ok(sg.graph)
            }
            GraphSource::File(path) => {
                let reader = BufReader::new(File::open(path)?);
                let loaded = read_edge_list(reader)
                    .map_err(|e| ServiceError::BadSource(format!("{path}: {e}")))?;
                Ok(loaded.graph)
            }
            GraphSource::BarabasiAlbert { n, k } => {
                let mut rng =
                    rand::rngs::StdRng::seed_from_u64(0xBA ^ (*n as u64) ^ ((*k as u64) << 32));
                Ok(barabasi_albert(*n, *k, &mut rng))
            }
        }
    }
}

/// One loaded graph: its name, provenance, shared graph handle, and the
/// engine serving it. Handed out as an `Arc` so requests keep a
/// consistent view even if the entry is concurrently evicted or
/// replaced.
#[derive(Debug)]
pub struct CatalogEntry {
    /// Catalog name (the key requests use).
    pub name: String,
    /// The spec string this entry was loaded from.
    pub source: String,
    /// Shared ownership of the graph.
    pub graph: Arc<Graph>,
    /// The engine, with the full method table registered.
    pub engine: OwnedEngine,
}

/// A named collection of loaded graphs with their engines.
#[derive(Debug, Default)]
pub struct Catalog {
    entries: RwLock<HashMap<String, Arc<CatalogEntry>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads `spec` under `name`, replacing any previous entry of that
    /// name. Graph generation and engine construction run outside the
    /// lock; only the publish takes the write lock. Returns the new
    /// entry.
    pub fn load(&self, name: &str, spec: &str) -> Result<Arc<CatalogEntry>> {
        if name.is_empty() {
            return Err(ServiceError::BadSource("empty graph name".to_string()));
        }
        let source = GraphSource::parse(spec)?;
        let graph = Arc::new(source.build()?);
        let engine = full_engine_shared(Arc::clone(&graph));
        let entry = Arc::new(CatalogEntry {
            name: name.to_string(),
            source: spec.to_string(),
            graph,
            engine,
        });
        self.entries
            .write()
            .expect("catalog lock poisoned")
            .insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Looks up a graph by name, or reports which names are loaded.
    pub fn get(&self, name: &str) -> Result<Arc<CatalogEntry>> {
        let entries = self.entries.read().expect("catalog lock poisoned");
        entries
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownGraph {
                requested: name.to_string(),
                loaded: {
                    let mut names: Vec<String> = entries.keys().cloned().collect();
                    names.sort_unstable();
                    names
                },
            })
    }

    /// Removes an entry; `true` if it existed. In-flight requests holding
    /// the entry's `Arc` finish normally — eviction only stops new
    /// lookups.
    pub fn evict(&self, name: &str) -> bool {
        self.entries
            .write()
            .expect("catalog lock poisoned")
            .remove(name)
            .is_some()
    }

    /// All entries, sorted by name.
    pub fn list(&self) -> Vec<Arc<CatalogEntry>> {
        let mut entries: Vec<Arc<CatalogEntry>> = self
            .entries
            .read()
            .expect("catalog lock poisoned")
            .values()
            .cloned()
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
    }

    /// Number of loaded graphs.
    pub fn len(&self) -> usize {
        self.entries.read().expect("catalog lock poisoned").len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_specs() {
        assert_eq!(GraphSource::parse("karate").unwrap(), GraphSource::Karate);
        assert_eq!(
            GraphSource::parse("standin:jazz").unwrap(),
            GraphSource::StandIn {
                name: "jazz".into(),
                scale: 1.0
            }
        );
        assert_eq!(
            GraphSource::parse("standin:dblp@0.01").unwrap(),
            GraphSource::StandIn {
                name: "dblp".into(),
                scale: 0.01
            }
        );
        assert_eq!(
            GraphSource::parse("file:/tmp/x.txt").unwrap(),
            GraphSource::File("/tmp/x.txt".into())
        );
        assert_eq!(
            GraphSource::parse("ba:500x3").unwrap(),
            GraphSource::BarabasiAlbert { n: 500, k: 3 }
        );
        for bad in [
            "",
            "nope",
            "standin:atlantis",
            "standin:jazz@0",
            "standin:jazz@2",
            "ba:10",
            "ba:ax2",
        ] {
            assert!(GraphSource::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn load_get_evict_roundtrip() {
        let catalog = Catalog::new();
        assert!(catalog.is_empty());
        let entry = catalog.load("karate", "karate").unwrap();
        assert_eq!(entry.graph.num_nodes(), 34);
        assert!(entry.engine.solver_names().contains(&"ws-q"));
        catalog.load("toy", "ba:200x2").unwrap();
        assert_eq!(catalog.len(), 2);
        let names: Vec<String> = catalog.list().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, vec!["karate", "toy"]);

        let got = catalog.get("karate").unwrap();
        assert!(Arc::ptr_eq(&got, &entry));
        match catalog.get("missing").unwrap_err() {
            ServiceError::UnknownGraph { requested, loaded } => {
                assert_eq!(requested, "missing");
                assert_eq!(loaded, vec!["karate", "toy"]);
            }
            other => panic!("unexpected error: {other}"),
        }

        assert!(catalog.evict("toy"));
        assert!(!catalog.evict("toy"));
        assert_eq!(catalog.len(), 1);
        // The held Arc keeps serving after eviction.
        assert!(got.engine.solve("ws-q", &[0, 33]).is_ok());
    }

    #[test]
    fn standin_scales_and_serves() {
        let catalog = Catalog::new();
        let entry = catalog.load("mini-email", "standin:email@0.1").unwrap();
        assert!(entry.graph.num_nodes() >= 64);
        assert!(entry.graph.num_nodes() < 400);
        let report = entry.engine.solve("st", &[0, 1, 2]).unwrap();
        assert!(report.connector.contains_all(&[0, 1, 2]));
    }

    #[test]
    fn deterministic_rebuild() {
        let a = GraphSource::parse("ba:300x2").unwrap().build().unwrap();
        let b = GraphSource::parse("ba:300x2").unwrap().build().unwrap();
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
