//! A minimal hand-rolled JSON value, parser, and writer.
//!
//! The workspace has no crates.io access, so the wire protocol cannot
//! lean on serde; this module implements the subset of JSON the protocol
//! needs — which is all of JSON text, minus any streaming or zero-copy
//! ambitions. Numbers are carried as `f64` (integers stay exact up to
//! 2^53, far beyond any node id or Wiener index this system produces) and
//! written without a fractional part when they are integral, so values
//! round-trip through the protocol unchanged.
//!
//! Parsing is recursive descent with an explicit depth limit (128) so a
//! hostile request of `[[[[…` cannot blow the worker stack.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by [`parse`].
const MAX_DEPTH: usize = 128;

/// A JSON value. Objects keep their members in a [`BTreeMap`], so
/// serialization is deterministic (sorted keys) — convenient for tests
/// and for diffing server transcripts.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic (sorted) member order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects (`None` on other variants or missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// (rejects fractional, negative, and out-of-`u64`-range numbers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(*x, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(v) => {
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    e.write(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to compact JSON text (no whitespace, sorted object keys);
/// `json.to_string()` is the wire form.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn write_number(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no Inf/NaN; the protocol never produces them, but a
        // defensive null beats emitting an unparseable token.
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {text:?}")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value); // duplicate keys: last one wins
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs join; lone halves are errors.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    char::from_u32(0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00))
                                } else {
                                    None
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                None
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8; find the char boundary).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty char"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_string(), text, "{text}");
        }
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(parse("1e3").unwrap().to_string(), "1000");
    }

    #[test]
    fn containers_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":true}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn whitespace_and_escapes() {
        let v = parse(" { \"k\" : \"a\\u0041\\\"\\\\\" } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("aA\"\\"));
        // Surrogate pair → astral char.
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // Unicode passes through raw.
        assert_eq!(parse("\"héllo\"").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "\"unterminated",
            "{'single':1}",
            "[1,]e",
            "\"\\u12\"",
            "\"\\ud800\"", // lone high surrogate
            "nan",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        // Depth bomb.
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn u64_accessor_is_strict() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("\"42\"").unwrap().as_u64(), None);
    }

    #[test]
    fn object_builder_and_deterministic_order() {
        let v = Json::obj([("b", Json::from(1u64)), ("a", Json::from("x"))]);
        assert_eq!(v.to_string(), r#"{"a":"x","b":1}"#);
    }

    #[test]
    fn solve_report_json_is_parseable() {
        // The wire protocol embeds `SolveReport::to_json` output verbatim;
        // pin that the two hand-rolled implementations agree.
        use mwc_core::QueryEngine;
        let g = mwc_graph::generators::karate::karate_club();
        let report = QueryEngine::new(&g)
            .solve("ws-q", &[11, 24, 25, 29])
            .unwrap();
        let v = parse(&report.to_json()).unwrap();
        assert_eq!(v.get("solver").unwrap().as_str(), Some("ws-q"));
        assert_eq!(
            v.get("wiener_index").unwrap().as_u64(),
            Some(report.wiener_index)
        );
        let conn = v.get("connector").unwrap().as_array().unwrap();
        assert_eq!(conn.len(), report.connector.len());
    }
}
