//! Minimal epoll/eventfd syscall shim for the event-driven transport.
//!
//! The workspace is std-only (no `libc` crate), so the handful of
//! syscalls the event loop needs — `epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd` — are declared here against the C library
//! std already links. Everything socket-shaped stays on std types
//! (`TcpListener`/`TcpStream` in nonblocking mode), so this shim is the
//! *entire* unsafe surface of the transport: two RAII fd wrappers and
//! one `#[repr(C)]` struct.
//!
//! Linux-only by construction (`lib.rs` gates the module); the threaded
//! transport remains the portable path. The module is public so the
//! load generator (`loadgen --connections`) can multiplex its 10k-class
//! open-loop client sockets on the same readiness primitive.

use std::io;
use std::os::unix::io::RawFd;

/// `struct epoll_event` with the kernel's ABI. On x86-64 the kernel
/// (and glibc, via `__attribute__((packed))`) lays the 12-byte struct
/// out unpadded; other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bits (`EPOLLIN | …`) — interest on ctl, results on wait.
    pub events: u32,
    /// User data — the connection token, never a pointer.
    pub data: u64,
}

/// Readable (or a pending accept on a listener).
pub const EPOLLIN: u32 = 0x001;
/// Writable without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported; no need to subscribe).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported; no need to subscribe).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half: readable readiness that will EOF.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;
const EFD_CLOEXEC: i32 = 0o2000000;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// An epoll instance. Closes its fd on drop; registered fds are *not*
/// owned — their `TcpStream`s close them.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a fresh epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest set.
    pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, events)
    }

    /// Replaces the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, events)
    }

    /// Deregisters `fd`. Errors are ignored: the kernel drops epoll
    /// registrations automatically when the last fd reference closes.
    pub fn delete(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Blocks for readiness, at most `timeout_ms`. Returns the number of
    /// events written into `events`; `EINTR` reports as zero events.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len().min(i32::MAX as usize) as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A nonblocking eventfd: the worker → event-loop wakeup. Workers
/// `signal()` after publishing a completion; the loop wakes from
/// `epoll_wait` and `drain()`s the counter.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a nonblocking, cloexec eventfd with a zero counter.
    pub fn new() -> io::Result<EventFd> {
        let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// The underlying fd, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Adds 1 to the counter, waking any `epoll_wait` on it. `EAGAIN`
    /// (counter saturated — the loop is already overdue to wake) is
    /// deliberately ignored.
    pub fn signal(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Resets the counter so the readiness edge clears.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn eventfd_signal_wakes_epoll() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw(), 7, EPOLLIN).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing signaled: the wait times out empty.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        ev.signal();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (got_events, got_data) = (events[0].events, events[0].data);
        assert_eq!(got_data, 7);
        assert_ne!(got_events & EPOLLIN, 0);
        // Draining clears readiness (level-triggered).
        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn socket_readiness_and_interest_modification() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), 42, EPOLLIN).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "no data yet");

        client.write_all(b"x").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 42);

        // Swap interest to write-only: the pending byte stops reporting,
        // the idle socket reports writable.
        ep.modify(server.as_raw_fd(), 42, EPOLLOUT).unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let got = events[0].events;
        assert_ne!(got & EPOLLOUT, 0);
        assert_eq!(got & EPOLLIN, 0);

        ep.delete(server.as_raw_fd());
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        let mut server_blocking = server;
        server_blocking.set_nonblocking(false).unwrap();
        let mut b = [0u8; 1];
        server_blocking.read_exact(&mut b).unwrap();
        assert_eq!(&b, b"x");
    }
}
