//! Cross-request solve coalescing: a per-graph batch scheduler between
//! the worker pool and [`CatalogEntry`].
//!
//! PRs 3–4 made per-root BFS sweeps cheap *within* one request by packing
//! roots into the 64-lane multi-source kernel — but a busy server's lanes
//! are mostly empty, because each request fills lanes only from its own
//! query. This module fills them from *each other's*: solve requests for
//! the same graph that arrive within a short flush window are gathered
//! into one [`CatalogEntry::solve_group`] execution, whose engine-side
//! prefetch unions every request's roots into shared `MsBfsWorkspace`
//! sweeps and dedups identical work, then the results are demuxed back to
//! each waiting request with its own deadline accounting.
//!
//! # Concurrency model: leader–worker windows
//!
//! There are no dedicated scheduler threads. The first worker to enqueue
//! into an empty per-graph queue becomes that window's **leader**: it
//! parks on the queue's condvar until the window expires (time trigger),
//! enough root-BFS lanes have gathered (size trigger), or shutdown/abort
//! wakes it — then drains the queue, runs the shared execution, and
//! answers every member through its stored responder. Workers that
//! enqueue while a leader is waiting return immediately and go back to
//! pulling jobs, so a window gathers requests from the whole pool. With a
//! single worker the leader simply waits out the window alone — batching
//! degrades to a small fixed latency cost, never a deadlock.
//!
//! # Bypass rules
//!
//! A request is executed directly (never parked) when coalescing is
//! disabled, the server is draining, its remaining deadline is within
//! twice the window (waiting could expire it), the queue is at
//! `max_pending`, or the catalog entry changed under the open window.
//!
//! # Eviction and shutdown
//!
//! [`Coalescer::abort`] fails everything parked for a graph with the
//! stable, retryable `graph_evicted` code — the server calls it before
//! `evict` removes (or `load` replaces) an entry, so no request is left
//! waiting on a dead queue. [`Coalescer::drain`] (called during graceful
//! shutdown, before the `shutdown` command is acknowledged) flushes every
//! queue: leaders are woken to flush immediately, and any leaderless
//! leftovers are flushed by the draining thread itself.
//!
//! Results are **bit-identical** to uncoalesced solves: MS-BFS lanes are
//! independent, so the distances a solver sees do not depend on which
//! other requests shared its sweep (pinned by the engine's group tests
//! and the service loopback parity suite).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mwc_core::{GroupQuery, SolveReport, TraceContext};
use mwc_graph::traversal::bfs::MS_BFS_LANES;
use mwc_graph::NodeId;

use crate::catalog::CatalogEntry;
use crate::error::ServiceError;
use crate::json::Json;
use crate::metrics::Histogram;
use crate::protocol::SolveParams;

/// How a parked request is answered once its window flushes: a one-shot
/// callback owning everything needed to write the response (the server
/// captures the connection handle, request id, and metrics registry).
pub type Responder = Box<dyn FnOnce(Result<SolveReport, ServiceError>) + Send + 'static>;

/// Coalescer tuning knobs.
#[derive(Debug, Clone)]
pub struct CoalesceConfig {
    /// Master switch. When off, every solve executes directly (the
    /// pre-coalescer behavior).
    pub enabled: bool,
    /// Flush window: how long the first request of a window waits for
    /// company before the batch executes.
    pub window: Duration,
    /// Size trigger: flush early once the gathered requests' root-BFS
    /// work is estimated to fill this many MS-BFS lanes (one lane per
    /// query vertex). Defaults to the kernel's lane width.
    pub max_lanes: usize,
    /// Hard cap on requests parked per graph; beyond it new arrivals
    /// bypass to direct execution instead of queueing without bound.
    pub max_pending: usize,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            enabled: true,
            window: Duration::from_micros(300),
            max_lanes: MS_BFS_LANES,
            max_pending: 256,
        }
    }
}

/// Verdict of [`Coalescer::submit`].
pub enum Submit {
    /// Not admitted (see the module docs' bypass rules) — the responder
    /// is handed back and the caller executes the solve itself.
    Direct(Responder),
    /// Parked in (or already answered by) a coalescing window; the flush
    /// writes the response through the stored responder.
    Queued,
}

/// One parked request.
struct Pending {
    params: SolveParams,
    q: Vec<NodeId>,
    /// When the server read the request (deadline epoch).
    received: Instant,
    /// When it entered the coalescing queue (queue-wait epoch).
    enqueued: Instant,
    /// Per-request tracing handle (disabled for untraced requests); the
    /// flush records the park time as a `coalesce_wait` span and threads
    /// the context into the shared execution's options.
    trace: TraceContext,
    respond: Responder,
}

/// Why a window flushed.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Trigger {
    Window,
    Lanes,
    Drain,
}

struct QueueState {
    /// The catalog entry every parked request was admitted against. All
    /// members of one window share it; a submit pinning a *different*
    /// entry (load replaced it mid-window) bypasses instead.
    entry: Option<Arc<CatalogEntry>>,
    pending: Vec<Pending>,
    /// Estimated MS-BFS lanes of gathered root work (Σ |q|).
    lanes: usize,
    /// Whether a leader is currently waiting on / flushing this queue.
    leader: bool,
    /// When the current window opened (leadership claimed).
    opened: Instant,
}

struct GraphQueue {
    state: Mutex<QueueState>,
    wake: Condvar,
}

impl GraphQueue {
    fn new() -> Self {
        GraphQueue {
            state: Mutex::new(QueueState {
                entry: None,
                pending: Vec::new(),
                lanes: 0,
                leader: false,
                opened: Instant::now(),
            }),
            wake: Condvar::new(),
        }
    }
}

/// The per-graph batch scheduler. One per server; shared by the worker
/// pool, the control plane (`evict`/`load` abort, shutdown drain), and
/// the `stats` command.
pub struct Coalescer {
    config: CoalesceConfig,
    queues: Mutex<HashMap<String, Arc<GraphQueue>>>,
    shutdown: AtomicBool,
    // Admission counters.
    enqueued_total: AtomicU64,
    bypass_total: AtomicU64,
    overflow_total: AtomicU64,
    // Outcome counters.
    expired_total: AtomicU64,
    aborted_total: AtomicU64,
    // Flush counters.
    flush_total: AtomicU64,
    flush_window: AtomicU64,
    flush_lanes: AtomicU64,
    flush_drain: AtomicU64,
    coalesced_requests: AtomicU64,
    // Engine-reported group stats, merged across flushes.
    group_requests: AtomicU64,
    group_cache_hits: AtomicU64,
    group_deduped: AtomicU64,
    group_executed: AtomicU64,
    group_shared_sweeps: AtomicU64,
    group_shared_lanes: AtomicU64,
    group_shared_roots: AtomicU64,
    /// Time requests spend parked before their window flushes.
    queue_wait: Histogram,
}

impl std::fmt::Debug for Coalescer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coalescer")
            .field("config", &self.config)
            .field("shutdown", &self.shutdown.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Coalescer {
    /// A fresh scheduler with no open windows.
    pub fn new(config: CoalesceConfig) -> Coalescer {
        Coalescer {
            config,
            queues: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            enqueued_total: AtomicU64::new(0),
            bypass_total: AtomicU64::new(0),
            overflow_total: AtomicU64::new(0),
            expired_total: AtomicU64::new(0),
            aborted_total: AtomicU64::new(0),
            flush_total: AtomicU64::new(0),
            flush_window: AtomicU64::new(0),
            flush_lanes: AtomicU64::new(0),
            flush_drain: AtomicU64::new(0),
            coalesced_requests: AtomicU64::new(0),
            group_requests: AtomicU64::new(0),
            group_cache_hits: AtomicU64::new(0),
            group_deduped: AtomicU64::new(0),
            group_executed: AtomicU64::new(0),
            group_shared_sweeps: AtomicU64::new(0),
            group_shared_lanes: AtomicU64::new(0),
            group_shared_roots: AtomicU64::new(0),
            queue_wait: Histogram::default(),
        }
    }

    /// Whether the master switch is on (bypass decisions still apply per
    /// request).
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The active configuration.
    pub fn config(&self) -> &CoalesceConfig {
        &self.config
    }

    /// Offers one solve to the scheduler. `remaining` is the deadline
    /// residue the server already computed (deadline-expired requests
    /// never get here); `trace` is the request's tracing handle
    /// ([`TraceContext::disabled`] when untraced). Returns
    /// [`Submit::Direct`] with the responder handed back when the
    /// request should execute uncoalesced.
    #[allow(clippy::too_many_arguments)]
    pub fn submit(
        &self,
        entry: &Arc<CatalogEntry>,
        params: SolveParams,
        q: Vec<NodeId>,
        received: Instant,
        remaining: Option<Duration>,
        trace: TraceContext,
        respond: Responder,
    ) -> Submit {
        if !self.config.enabled || self.shutdown.load(Ordering::SeqCst) {
            return Submit::Direct(respond);
        }
        // Deadline bypass: a request that could expire while parked (or
        // soon after) must not gamble on the window.
        if let Some(d) = remaining {
            if d <= self.config.window * 2 {
                self.bypass_total.fetch_add(1, Ordering::Relaxed);
                return Submit::Direct(respond);
            }
        }
        let queue = {
            let mut queues = self.queues.lock().expect("coalesce registry poisoned");
            Arc::clone(
                queues
                    .entry(params.graph.clone())
                    .or_insert_with(|| Arc::new(GraphQueue::new())),
            )
        };
        let lead_now = {
            let mut state = queue.state.lock().expect("coalesce queue poisoned");
            if state.pending.len() >= self.config.max_pending {
                self.overflow_total.fetch_add(1, Ordering::Relaxed);
                return Submit::Direct(respond);
            }
            match &state.entry {
                Some(open) if !Arc::ptr_eq(open, entry) => {
                    // The catalog replaced this graph under the open
                    // window; don't mix engines in one batch.
                    self.bypass_total.fetch_add(1, Ordering::Relaxed);
                    return Submit::Direct(respond);
                }
                Some(_) => {}
                None => state.entry = Some(Arc::clone(entry)),
            }
            state.lanes += q.len().max(1);
            state.pending.push(Pending {
                params,
                q,
                received,
                enqueued: Instant::now(),
                trace,
                respond,
            });
            self.enqueued_total.fetch_add(1, Ordering::Relaxed);
            if state.leader {
                if state.lanes >= self.config.max_lanes {
                    queue.wake.notify_all(); // size trigger: flush early
                }
                false
            } else {
                state.leader = true;
                state.opened = Instant::now();
                true
            }
        };
        if lead_now {
            self.lead(&queue);
        }
        Submit::Queued
    }

    /// The leader's wait-then-flush loop (runs on the submitting worker's
    /// thread; see the module docs).
    fn lead(&self, queue: &GraphQueue) {
        let mut state = queue.state.lock().expect("coalesce queue poisoned");
        let trigger = loop {
            if state.pending.is_empty() {
                break Trigger::Drain; // aborted under us; nothing to flush
            }
            if self.shutdown.load(Ordering::SeqCst) {
                break Trigger::Drain;
            }
            if state.lanes >= self.config.max_lanes {
                break Trigger::Lanes;
            }
            let elapsed = state.opened.elapsed();
            if elapsed >= self.config.window {
                break Trigger::Window;
            }
            let (guard, _) = queue
                .wake
                .wait_timeout(state, self.config.window - elapsed)
                .expect("coalesce queue poisoned");
            state = guard;
        };
        let entry = state.entry.take();
        let batch = std::mem::take(&mut state.pending);
        state.lanes = 0;
        state.leader = false;
        drop(state);
        queue.wake.notify_all(); // unblock drain() waiters and new leaders
        if !batch.is_empty() {
            self.flush(entry, batch, trigger);
        }
    }

    /// Executes one drained window and demuxes the results.
    fn flush(&self, entry: Option<Arc<CatalogEntry>>, batch: Vec<Pending>, trigger: Trigger) {
        self.flush_total.fetch_add(1, Ordering::Relaxed);
        match trigger {
            Trigger::Window => &self.flush_window,
            Trigger::Lanes => &self.flush_lanes,
            Trigger::Drain => &self.flush_drain,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.coalesced_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let now = Instant::now();
        // Per-member deadline accounting: requests whose budget ran out
        // while parked fail without running; the rest carry their residue
        // into the shared execution as their own cooperative deadline.
        let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
        let mut queries: Vec<GroupQuery> = Vec::with_capacity(batch.len());
        for p in batch {
            self.queue_wait.record(now.duration_since(p.enqueued));
            let spent = p.received.elapsed();
            let residue = match p.params.deadline_ms {
                None => None,
                Some(ms) => match Duration::from_millis(ms).checked_sub(spent) {
                    Some(d) if !d.is_zero() => Some(d),
                    _ => {
                        self.expired_total.fetch_add(1, Ordering::Relaxed);
                        (p.respond)(Err(ServiceError::DeadlineExceeded {
                            queued_ms: spent.as_millis() as u64,
                        }));
                        continue;
                    }
                },
            };
            // The window park shows up in the request's span tree as
            // `coalesce_wait`, then the shared execution records its own
            // stages through the same context.
            p.trace.record("coalesce_wait", p.enqueued, now);
            queries.push(GroupQuery::new(
                p.params.solver.clone(),
                p.q.clone(),
                p.params.options(residue).trace(p.trace.clone()),
            ));
            live.push(p);
        }
        if live.is_empty() {
            return;
        }
        let Some(entry) = entry else {
            // Abort raced the drain: the entry is gone but the pendings
            // were handed to us. Fail them the same retryable way.
            for p in live {
                let name = p.params.graph.clone();
                self.aborted_total.fetch_add(1, Ordering::Relaxed);
                (p.respond)(Err(ServiceError::GraphEvicted { name }));
            }
            return;
        };
        let outcome = entry.solve_group(&queries);
        let s = outcome.stats;
        self.group_requests.fetch_add(s.requests, Ordering::Relaxed);
        self.group_cache_hits
            .fetch_add(s.cache_hits, Ordering::Relaxed);
        self.group_deduped.fetch_add(s.deduped, Ordering::Relaxed);
        self.group_executed.fetch_add(s.executed, Ordering::Relaxed);
        self.group_shared_sweeps
            .fetch_add(s.shared_sweeps, Ordering::Relaxed);
        self.group_shared_lanes
            .fetch_add(s.shared_lanes, Ordering::Relaxed);
        self.group_shared_roots
            .fetch_add(s.shared_roots, Ordering::Relaxed);
        for (p, result) in live.into_iter().zip(outcome.results) {
            (p.respond)(result.map_err(ServiceError::Core));
        }
    }

    /// Fails everything parked for `name` with the retryable
    /// `graph_evicted` code and closes the open window. The server calls
    /// this *before* `evict` removes (or `load` replaces) the catalog
    /// entry. Returns how many requests were failed.
    pub fn abort(&self, name: &str) -> usize {
        let queue = {
            let queues = self.queues.lock().expect("coalesce registry poisoned");
            queues.get(name).cloned()
        };
        let Some(queue) = queue else { return 0 };
        let batch = {
            let mut state = queue.state.lock().expect("coalesce queue poisoned");
            state.entry = None;
            state.lanes = 0;
            std::mem::take(&mut state.pending)
        };
        queue.wake.notify_all(); // the leader wakes, finds nothing, retires
        self.aborted_total
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let n = batch.len();
        for p in batch {
            (p.respond)(Err(ServiceError::GraphEvicted {
                name: name.to_string(),
            }));
        }
        n
    }

    /// Shutdown drain: stops admitting (later submits go direct), wakes
    /// every leader to flush immediately, and blocks until every queue is
    /// empty with no leader attached — so by the time the server
    /// acknowledges `shutdown`, no request is parked anywhere. Leaderless
    /// leftovers (a race window around leader retirement) are flushed by
    /// this thread itself.
    pub fn drain(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let queues: Vec<Arc<GraphQueue>> = self
            .queues
            .lock()
            .expect("coalesce registry poisoned")
            .values()
            .cloned()
            .collect();
        for q in &queues {
            q.wake.notify_all();
        }
        for q in queues {
            let mut state = q.state.lock().expect("coalesce queue poisoned");
            loop {
                if !state.leader && !state.pending.is_empty() {
                    let entry = state.entry.take();
                    let batch = std::mem::take(&mut state.pending);
                    state.lanes = 0;
                    drop(state);
                    self.flush(entry, batch, Trigger::Drain);
                    state = q.state.lock().expect("coalesce queue poisoned");
                    continue;
                }
                if !state.leader && state.pending.is_empty() {
                    break;
                }
                let (guard, _) = q
                    .wake
                    .wait_timeout(state, Duration::from_millis(10))
                    .expect("coalesce queue poisoned");
                state = guard;
            }
        }
    }

    /// The `stats` wire section: flat counters (so the router's aggregate
    /// summation works field-by-field) plus the queue-wait histogram.
    pub fn stats_json(&self) -> Json {
        let load = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed));
        let sweeps = self.group_shared_sweeps.load(Ordering::Relaxed);
        let lanes = self.group_shared_lanes.load(Ordering::Relaxed);
        let occupancy = if sweeps == 0 {
            0.0
        } else {
            lanes as f64 / (sweeps * MS_BFS_LANES as u64) as f64
        };
        Json::obj([
            ("enabled", Json::Bool(self.config.enabled)),
            (
                "window_us",
                Json::from(self.config.window.as_micros() as u64),
            ),
            ("max_lanes", Json::from(self.config.max_lanes)),
            ("enqueued", load(&self.enqueued_total)),
            ("bypassed", load(&self.bypass_total)),
            ("overflow", load(&self.overflow_total)),
            ("expired", load(&self.expired_total)),
            ("aborted", load(&self.aborted_total)),
            ("flush_total", load(&self.flush_total)),
            ("flush_window", load(&self.flush_window)),
            ("flush_lanes", load(&self.flush_lanes)),
            ("flush_drain", load(&self.flush_drain)),
            ("coalesced_requests", load(&self.coalesced_requests)),
            ("group_requests", load(&self.group_requests)),
            ("cache_hits", load(&self.group_cache_hits)),
            ("deduped", load(&self.group_deduped)),
            ("executed", load(&self.group_executed)),
            ("shared_sweeps", load(&self.group_shared_sweeps)),
            ("shared_lanes", load(&self.group_shared_lanes)),
            ("shared_roots", load(&self.group_shared_roots)),
            ("lane_occupancy_mean", Json::from(occupancy)),
            (
                "queue_wait",
                Json::obj([
                    ("count", Json::from(self.queue_wait.count())),
                    ("mean_ms", Json::from(self.queue_wait.mean_ms())),
                    ("p50_ms", Json::from(self.queue_wait.quantile_ms(0.50))),
                    ("p99_ms", Json::from(self.queue_wait.quantile_ms(0.99))),
                    ("max_ms", Json::from(self.queue_wait.max_ms())),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use std::sync::mpsc;

    fn params(graph: &str, solver: &str) -> SolveParams {
        SolveParams {
            graph: graph.to_string(),
            solver: solver.to_string(),
            deadline_ms: None,
            max_size: None,
            no_cache: true,
            trace: false,
            trace_id: None,
        }
    }

    fn channel_responder() -> (Responder, mpsc::Receiver<Result<SolveReport, ServiceError>>) {
        let (tx, rx) = mpsc::channel();
        (
            Box::new(move |r| {
                let _ = tx.send(r);
            }),
            rx,
        )
    }

    #[test]
    fn window_coalesces_and_matches_direct_solves() {
        let catalog = Catalog::new().with_solve_cache_bytes(0);
        let entry = catalog.load("k", "karate").unwrap();
        let co = Arc::new(Coalescer::new(CoalesceConfig {
            window: Duration::from_millis(40),
            ..CoalesceConfig::default()
        }));
        let queries: Vec<Vec<NodeId>> = vec![vec![0, 33], vec![11, 24, 25, 29], vec![5, 16]];
        let solvers = ["ws-q", "ws-q+ls", "st"];
        // Leader-to-be submits from a helper thread (it blocks for the
        // window); followers park and return immediately.
        let mut rxs = Vec::new();
        let mut leaders = Vec::new();
        for (q, solver) in queries.iter().zip(solvers) {
            let (respond, rx) = channel_responder();
            rxs.push(rx);
            let co = Arc::clone(&co);
            let entry = Arc::clone(&entry);
            let p = params("k", solver);
            let q = q.clone();
            leaders.push(std::thread::spawn(move || {
                let now = Instant::now();
                matches!(
                    co.submit(&entry, p, q, now, None, TraceContext::disabled(), respond),
                    Submit::Queued
                )
            }));
            // Give the first submit time to claim leadership so the rest
            // join its window.
            std::thread::sleep(Duration::from_millis(5));
        }
        for h in leaders {
            assert!(h.join().unwrap());
        }
        for ((q, solver), rx) in queries.iter().zip(solvers).zip(&rxs) {
            let got = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("flush answered")
                .expect("solve ok");
            let direct = entry
                .solve(solver, q, &mwc_core::QueryOptions::new().no_cache())
                .unwrap();
            assert_eq!(got.connector.vertices(), direct.connector.vertices());
            assert_eq!(got.wiener_index, direct.wiener_index);
        }
        let stats = co.stats_json();
        assert_eq!(stats.get("enqueued").unwrap().as_u64(), Some(3));
        assert_eq!(stats.get("flush_total").unwrap().as_u64(), Some(1));
        assert!(stats.get("shared_sweeps").unwrap().as_u64().unwrap() >= 1);
    }

    #[test]
    fn tight_deadlines_bypass_and_shutdown_goes_direct() {
        let catalog = Catalog::new();
        let entry = catalog.load("k", "karate").unwrap();
        let co = Coalescer::new(CoalesceConfig {
            window: Duration::from_millis(50),
            ..CoalesceConfig::default()
        });
        let (respond, _rx) = channel_responder();
        // Remaining 60 ms ≤ 2×50 ms window → direct.
        match co.submit(
            &entry,
            params("k", "ws-q"),
            vec![0, 33],
            Instant::now(),
            Some(Duration::from_millis(60)),
            TraceContext::disabled(),
            respond,
        ) {
            Submit::Direct(_) => {}
            Submit::Queued => panic!("tight deadline should bypass"),
        }
        assert_eq!(co.stats_json().get("bypassed").unwrap().as_u64(), Some(1));
        co.drain();
        let (respond, _rx) = channel_responder();
        match co.submit(
            &entry,
            params("k", "ws-q"),
            vec![0, 33],
            Instant::now(),
            None,
            TraceContext::disabled(),
            respond,
        ) {
            Submit::Direct(_) => {}
            Submit::Queued => panic!("post-drain submits must go direct"),
        }
    }

    #[test]
    fn abort_fails_parked_requests_with_graph_evicted() {
        let catalog = Catalog::new();
        let entry = catalog.load("k", "karate").unwrap();
        let co = Arc::new(Coalescer::new(CoalesceConfig {
            window: Duration::from_secs(5), // long: abort must not wait it out
            ..CoalesceConfig::default()
        }));
        let (respond, rx) = channel_responder();
        let leader = {
            let co = Arc::clone(&co);
            let entry = Arc::clone(&entry);
            std::thread::spawn(move || {
                co.submit(
                    &entry,
                    params("k", "ws-q"),
                    vec![0, 33],
                    Instant::now(),
                    None,
                    TraceContext::disabled(),
                    respond,
                );
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(co.abort("k"), 1);
        let err = rx
            .recv_timeout(Duration::from_secs(2))
            .expect("abort answers promptly")
            .expect_err("aborted requests fail");
        assert_eq!(err.code(), "graph_evicted");
        leader.join().unwrap();
        assert_eq!(co.abort("k"), 0);
        assert_eq!(co.stats_json().get("aborted").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn drain_flushes_parked_requests() {
        let catalog = Catalog::new();
        let entry = catalog.load("k", "karate").unwrap();
        let co = Arc::new(Coalescer::new(CoalesceConfig {
            window: Duration::from_secs(5), // drain must cut this short
            ..CoalesceConfig::default()
        }));
        let (respond, rx) = channel_responder();
        let leader = {
            let co = Arc::clone(&co);
            let entry = Arc::clone(&entry);
            std::thread::spawn(move || {
                co.submit(
                    &entry,
                    params("k", "ws-q"),
                    vec![11, 24],
                    Instant::now(),
                    None,
                    TraceContext::disabled(),
                    respond,
                );
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        let drained_at = Instant::now();
        co.drain();
        assert!(drained_at.elapsed() < Duration::from_secs(4));
        let report = rx
            .recv_timeout(Duration::from_secs(2))
            .expect("drain flushes")
            .expect("solve ok");
        assert!(report.connector.len() >= 2);
        leader.join().unwrap();
        assert_eq!(
            co.stats_json().get("flush_drain").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn expired_members_fail_without_running() {
        let catalog = Catalog::new();
        let entry = catalog.load("k", "karate").unwrap();
        let co = Arc::new(Coalescer::new(CoalesceConfig {
            window: Duration::from_millis(80),
            ..CoalesceConfig::default()
        }));
        // Deadline of 200 ms clears the 2×window bypass gate (160 ms) at
        // submit, but `received` is backdated so the budget is gone by
        // flush time.
        let mut p = params("k", "ws-q");
        p.deadline_ms = Some(200);
        let (respond, rx) = channel_responder();
        let received = Instant::now() - Duration::from_millis(195);
        co.submit(
            &entry,
            p,
            vec![0, 33],
            received,
            Some(Duration::from_millis(200)),
            TraceContext::disabled(),
            respond,
        );
        let err = rx
            .recv_timeout(Duration::from_secs(2))
            .expect("flush answers")
            .expect_err("expired member fails");
        assert_eq!(err.code(), "deadline_exceeded");
        assert_eq!(co.stats_json().get("expired").unwrap().as_u64(), Some(1));
    }
}
