//! The wire protocol: newline-delimited JSON request/response framing.
//!
//! One request per line, one response line per request, over a plain TCP
//! stream. Requests may be pipelined; every request may carry a
//! client-chosen `"id"` that the server echoes in the response, so
//! pipelined responses can be matched even if admission control reorders
//! completion.
//!
//! # Grammar
//!
//! ```text
//! request   = { "cmd": <command>, "id"?: <any>, "v"?: 1,
//!               ...command fields } "\n"
//! response  = { "ok": true,  "id"?: <echo>, ...payload }            "\n"
//!           | { "ok": false, "id"?: <echo>,
//!               "error": { "code": <string>, "message": <string>,
//!                          "retryable": <bool> } }                   "\n"
//!
//! solve     = { "cmd":"solve", "graph":G, "solver":S, "q":[v…],
//!               "deadline_ms"?: N, "max_size"?: N, "no_cache"?: bool,
//!               "trace"?: bool, "trace_id"?: hex }
//! batch     = { "cmd":"batch", "graph"?:G, "solver":S,
//!               "queries":[ [v…] | {"graph":G2, "q":[v…]} … ],
//!               "deadline_ms"?: N, "max_size"?: N, "no_cache"?: bool,
//!               "trace"?: bool, "trace_id"?: hex }
//! stats     = { "cmd":"stats" }
//! metrics   = { "cmd":"metrics" }             // Prometheus text exposition
//! slowlog   = { "cmd":"slowlog", "limit"?: N }
//! graphs    = { "cmd":"graphs" }
//! shard     = { "cmd":"shard", "graph"?: G }  // ring/health introspection
//! load      = { "cmd":"load", "name":N, "source":SPEC,
//!               "cache"?: [seed…] }           // seed = warm-cache entry
//! evict     = { "cmd":"evict", "name":N }
//! cache_export = { "cmd":"cache_export", "name":N }
//!                                             // → { "entries":[seed…] }
//! reshard   = { "cmd":"reshard", "add"?: {"name":N,"addr":A},
//!               "remove"?: N }                // mwc-router only
//! ping      = { "cmd":"ping" }
//! burn      = { "cmd":"burn", "ms":N }        // synthetic CPU work
//! shutdown  = { "cmd":"shutdown" }
//!
//! seed      = { "solver":S, "q":[v…], "max_size"?: N,
//!               "weight_digest"?: "16-hex",   // omitted ⇔ unweighted graph
//!               "report": <solve report object> }
//! ```
//!
//! **Versioning.** Requests may carry an optional `"v"` field naming the
//! protocol version they speak; absent means [`PROTOCOL_VERSION`]
//! (currently 1), the version this grammar describes. A request whose
//! `"v"` names any other version is rejected with the stable code
//! `unsupported_version` *before* command dispatch — the field is the
//! negotiation point for replica-aware commands like `reshard`: a future
//! v2 client probes with `{"cmd":"ping","v":2}` and falls back on
//! `unsupported_version` rather than discovering mid-migration that a
//! command is missing. Servers never answer with a version they were not
//! asked for; additive fields (like `"retryable"`) do not bump the
//! version, removed or re-typed ones do.
//!
//! `batch` entries default to the top-level `"graph"`; an entry written
//! as an object may override it, so one batch can span graphs (the
//! sharded front-end `mwc-router` splits such a batch by owning shard
//! and reassembles the replies in request order — a plain `mwc-server`
//! groups the entries per graph itself). The top-level `"graph"` may be
//! omitted only when every entry carries its own.
//!
//! `shard` and `reshard` are answered by `mwc-router` (ring/health
//! introspection and live ring changes respectively); a single
//! `mwc-server` has no ring and rejects both with `bad_request`.
//!
//! `cache_export` dumps a graph's warm solve-cache entries as `seed`
//! objects (queries and connectors in the graph's *original* vertex ids),
//! and `load` accepts the same seeds back in its optional `"cache"`
//! field — together they let a migration stream a graph's warm cache from
//! its old owner to its new one so the new owner never serves cold. The
//! `load` response reports how many seeds were accepted in
//! `"cache_imported"`.
//!
//! **Weighted graphs.** Sources prefixed `wfile:` / `wba:` load
//! integer-weighted graphs (see [`crate::catalog::GraphSource`]); every
//! distance the server computes for them — and the `wiener_index` it
//! reports — is weighted. `graphs` entries carry a `"weighted"` boolean,
//! and cache seeds from a weighted graph carry its `"weight_digest"` —
//! a hash of the weighted edge list (original ids), encoded as a
//! 16-hex-char string because the digest ranges over all of `u64` and
//! JSON numbers are `f64` (integers above 2^53 would not survive the
//! wire): `load` skips seeds
//! whose digest does not match the target graph, so answers solved under
//! one weighting never seed a graph with another (or with none).
//!
//! `no_cache` forces a fresh solve even when the per-graph engine has the
//! answer cached (see `QueryEngine`'s solve cache), and keeps the fresh
//! result out of the cache.
//!
//! `trace` asks the server to record per-stage spans for this request
//! and return them inline as a `"trace"` span tree (see
//! [`crate::trace`]). `trace_id` names the request across processes: a
//! client normally omits it (the entry process generates one), while
//! `mwc-router` generates the id, forwards it to the owning shard, and
//! nests the shard's tree under its own `route`/`backend_rtt` spans —
//! same id on both sides. `slowlog` returns the newest entries of the
//! server's slow-query ring (threshold `--slowlog-ms`), and `metrics`
//! returns Prometheus text exposition in a `"text"` field.
//!
//! `deadline_ms` is the budget measured from the moment the server reads
//! the request: time spent queued counts against it, the remainder maps
//! onto [`QueryOptions::deadline`](mwc_core::QueryOptions::deadline)
//! (cooperative — see its docs), and a request whose budget is exhausted
//! before a worker picks it up fails with code `deadline_exceeded`
//! without starting the solve. For `batch`, the post-queue residue
//! becomes each query's *own* deadline (queries run in parallel inside
//! the engine), so it bounds per-query solve time, not the whole batch's
//! wall clock.
//!
//! `solve` requests for the same graph that arrive within a flush window
//! may be **coalesced** into one shared engine execution (see
//! [`crate::coalesce`]); the wire contract is unchanged — one response
//! line per request, results bit-identical to an uncoalesced solve — but
//! two observable consequences exist. First, `evict` (and a `load` that
//! replaces a live graph) fails any requests still parked in that
//! graph's window with the stable, retryable code `graph_evicted`, and
//! `evict`'s response reports how many in an `"aborted"` field next to
//! `"evicted"`. Second, `stats` gains a flat `"coalesce"` section
//! (window/flush/bypass counters, shared-sweep lane occupancy, and a
//! queue-wait histogram). Requests whose remaining `deadline_ms` is too
//! tight to sit out a window bypass coalescing entirely; a `shutdown`
//! flushes every open window before the acknowledgement is written.

use std::time::Duration;

use mwc_core::{Connector, QueryOptions, SolveReport};
use mwc_graph::NodeId;

use crate::error::ServiceError;
use crate::json::{parse, Json};

/// The protocol version this module speaks. Requests may pin it with the
/// optional `"v"` field; any other value is rejected with the stable
/// `unsupported_version` code before command dispatch.
pub const PROTOCOL_VERSION: u64 = 1;

/// Fields shared by `solve` and `batch`.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveParams {
    /// Catalog name of the graph to query.
    pub graph: String,
    /// Registry name of the solver.
    pub solver: String,
    /// End-to-end deadline in milliseconds (queue wait included).
    pub deadline_ms: Option<u64>,
    /// Maximum connector size (maps to `QueryOptions::max_connector_size`).
    pub max_size: Option<usize>,
    /// Bypass the engine's solve cache for this request (maps to
    /// `QueryOptions::no_cache`): the solver always runs and the result
    /// is not stored. Defaults to `false` when absent.
    pub no_cache: bool,
    /// Record per-stage spans and return them inline as a `"trace"`
    /// span tree. Defaults to `false` (tracing costs one branch per
    /// stage when off).
    pub trace: bool,
    /// Request-scoped trace id propagated over the wire (router →
    /// shard). Absent on client-originated requests; the serving entry
    /// process generates one.
    pub trace_id: Option<String>,
}

impl SolveParams {
    /// The per-query [`QueryOptions`], given how much of the deadline
    /// remains after queueing.
    pub fn options(&self, remaining: Option<Duration>) -> QueryOptions {
        let mut opts = QueryOptions::new();
        if let Some(d) = remaining {
            opts = opts.deadline(d);
        }
        if let Some(m) = self.max_size {
            opts = opts.max_connector_size(m);
        }
        if self.no_cache {
            opts = opts.no_cache();
        }
        opts
    }
}

/// One entry of a `batch` request: a query vertex set, optionally bound
/// to a different graph than the batch's top-level one.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEntry {
    /// Per-entry graph override; `None` means the batch's top-level
    /// graph. After parsing, at least one of the two is guaranteed
    /// non-empty — see [`BatchEntry::graph_name`].
    pub graph: Option<String>,
    /// The query vertex set.
    pub q: Vec<NodeId>,
}

impl BatchEntry {
    /// The catalog name this entry targets, given the batch's top-level
    /// graph. `parse_request` guarantees the result is non-empty.
    pub fn graph_name<'a>(&'a self, default: &'a str) -> &'a str {
        self.graph.as_deref().unwrap_or(default)
    }
}

/// One warm solve-cache entry in transit: the cache key (solver,
/// canonical query, size budget) plus the cached report, all vertex ids
/// in the graph's *original* id space. Produced by `cache_export`,
/// accepted back by `load`'s optional `"cache"` field.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSeed {
    /// Registry name of the solver that produced the entry.
    pub solver: String,
    /// The query vertex set (original ids; canonicalized on import).
    pub q: Vec<NodeId>,
    /// The `max_size` budget the entry was solved under, if any.
    pub max_size: Option<usize>,
    /// Digest of the source graph's weighted edge list (original ids);
    /// `0` for unweighted graphs (and omitted on the wire). Import
    /// skips seeds whose digest does not match the target graph's, so a
    /// result solved under one weighting never poisons another.
    pub weight_digest: u64,
    /// The cached solve result.
    pub report: SolveReport,
}

/// A shard being added by a `reshard` command: ring name and dial
/// address, mirroring the router's startup `--shard NAME=ADDR` spec.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardChange {
    /// Ring name (identity — stable across restarts).
    pub name: String,
    /// `host:port` the router dials.
    pub addr: String,
}

/// A parsed protocol command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// One query against one graph.
    Solve {
        /// Graph/solver/limits.
        params: SolveParams,
        /// The query vertex set.
        q: Vec<NodeId>,
    },
    /// Many queries, each against the batch's graph or its entry's own
    /// (solved with the engine's parallel batch path, grouped per graph).
    Batch {
        /// Graph/solver/limits (the deadline applies per query; `graph`
        /// may be empty when every entry carries its own).
        params: SolveParams,
        /// The query entries, in request order.
        queries: Vec<BatchEntry>,
    },
    /// Metrics snapshot (JSON).
    Stats,
    /// Prometheus text exposition of the same metrics.
    Metrics,
    /// Newest slow-query ring entries (optionally capped at `limit`).
    Slowlog {
        /// Maximum number of entries to return; absent → all retained.
        limit: Option<usize>,
    },
    /// List cataloged graphs.
    Graphs,
    /// Shard-ring introspection: assignments and backend health. Answered
    /// by `mwc-router`; a plain `mwc-server` rejects it.
    Shard {
        /// When present, also report which shard owns this graph name.
        graph: Option<String>,
    },
    /// Load a graph into the catalog, optionally pre-warming its solve
    /// cache with exported entries from another replica.
    Load {
        /// Catalog name to publish under.
        name: String,
        /// Source spec (see [`crate::catalog::GraphSource`]).
        source: String,
        /// Warm-cache seeds to import after the build (original ids);
        /// usually from a `cache_export` against the old owner.
        cache: Vec<CacheSeed>,
    },
    /// Remove a graph from the catalog.
    Evict {
        /// Catalog name to remove.
        name: String,
    },
    /// Export a graph's warm solve-cache entries (original ids) for
    /// streaming to another replica during migration.
    CacheExport {
        /// Catalog name of the graph whose cache to export.
        name: String,
    },
    /// Live ring change: add and/or remove a shard, migrating affected
    /// graphs (source + warm cache) *before* routing flips. Answered by
    /// `mwc-router`; a plain `mwc-server` rejects it.
    Reshard {
        /// Shard to add to the ring, if any.
        add: Option<ShardChange>,
        /// Ring name of the shard to remove, if any.
        remove: Option<String>,
    },
    /// Liveness check.
    Ping,
    /// Busy-spin a worker for the given milliseconds — synthetic load for
    /// admission-control tests and load-generator calibration.
    Burn {
        /// Milliseconds of CPU to burn.
        ms: u64,
    },
    /// Begin graceful shutdown (drain, then stop).
    Shutdown,
}

/// A parsed request line: the command plus the echoed `id`, if any.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Option<Json>,
    /// The command to execute.
    pub command: Command,
}

fn bad(message: impl Into<String>) -> ServiceError {
    ServiceError::BadRequest(message.into())
}

fn req_str(obj: &Json, key: &str) -> Result<String, ServiceError> {
    obj.get(key)
        .ok_or_else(|| bad(format!("missing field {key:?}")))?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| bad(format!("field {key:?} must be a string")))
}

fn opt_str(obj: &Json, key: &str) -> Result<Option<String>, ServiceError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| bad(format!("field {key:?} must be a string"))),
    }
}

fn opt_u64(obj: &Json, key: &str) -> Result<Option<u64>, ServiceError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(format!("field {key:?} must be a non-negative integer"))),
    }
}

fn opt_bool(obj: &Json, key: &str) -> Result<bool, ServiceError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(bad(format!("field {key:?} must be a boolean"))),
    }
}

fn node_list(v: &Json, what: &str) -> Result<Vec<NodeId>, ServiceError> {
    let arr = v
        .as_array()
        .ok_or_else(|| bad(format!("{what} must be an array of vertex ids")))?;
    arr.iter()
        .map(|x| {
            let id = x
                .as_u64()
                .ok_or_else(|| bad(format!("{what} entries must be non-negative integers")))?;
            NodeId::try_from(id).map_err(|_| bad(format!("vertex id {id} exceeds u32 range")))
        })
        .collect()
}

fn solve_params(obj: &Json) -> Result<SolveParams, ServiceError> {
    Ok(SolveParams {
        graph: req_str(obj, "graph")?,
        solver: req_str(obj, "solver")?,
        deadline_ms: opt_u64(obj, "deadline_ms")?,
        max_size: opt_u64(obj, "max_size")?.map(|m| m as usize),
        no_cache: opt_bool(obj, "no_cache")?,
        trace: opt_bool(obj, "trace")?,
        trace_id: opt_str(obj, "trace_id")?,
    })
}

/// Like [`solve_params`] but for `batch`, where the top-level graph is
/// optional (entries may each carry their own); absent → empty string.
fn batch_params(obj: &Json) -> Result<SolveParams, ServiceError> {
    Ok(SolveParams {
        graph: opt_str(obj, "graph")?.unwrap_or_default(),
        solver: req_str(obj, "solver")?,
        deadline_ms: opt_u64(obj, "deadline_ms")?,
        max_size: opt_u64(obj, "max_size")?.map(|m| m as usize),
        no_cache: opt_bool(obj, "no_cache")?,
        trace: opt_bool(obj, "trace")?,
        trace_id: opt_str(obj, "trace_id")?,
    })
}

fn batch_entry(
    v: &Json,
    index: usize,
    have_default_graph: bool,
) -> Result<BatchEntry, ServiceError> {
    match v {
        Json::Arr(_) => {
            if !have_default_graph {
                return Err(bad(format!(
                    "batch entry {index} is a bare query but the batch has no top-level \"graph\""
                )));
            }
            Ok(BatchEntry {
                graph: None,
                q: node_list(v, "each query")?,
            })
        }
        Json::Obj(_) => {
            let graph = opt_str(v, "graph")?.filter(|g| !g.is_empty());
            if graph.is_none() && !have_default_graph {
                return Err(bad(format!(
                    "batch entry {index} names no graph and the batch has no top-level \"graph\""
                )));
            }
            let q = node_list(
                v.get("q")
                    .ok_or_else(|| bad(format!("batch entry {index} missing field \"q\"")))?,
                "each query",
            )?;
            Ok(BatchEntry { graph, q })
        }
        _ => Err(bad(format!(
            "batch entry {index} must be an array of vertex ids or an object with \"q\""
        ))),
    }
}

/// Parses a cache seed's optional `"weight_digest"` field. The digest is
/// a full-range `u64`, so the wire form is a hex *string* — a JSON
/// number is an `f64` and silently corrupts integers above 2^53 (which
/// nearly every real digest is); numeric digests are rejected outright
/// rather than accepted lossily.
fn weight_digest_from_json(seed: &Json, i: usize) -> Result<u64, ServiceError> {
    match seed.get("weight_digest") {
        None | Some(Json::Null) => Ok(0),
        Some(Json::Str(s)) => u64::from_str_radix(s, 16).map_err(|_| {
            bad(format!(
                "cache seed {i} field \"weight_digest\" must be a hex string of at most 16 digits"
            ))
        }),
        Some(_) => Err(bad(format!(
            "cache seed {i} field \"weight_digest\" must be a hex string \
             (digests exceed JSON's exact-integer range)"
        ))),
    }
}

/// Parses the seed objects of a `load` request's `"cache"` field.
fn cache_seeds(v: &Json) -> Result<Vec<CacheSeed>, ServiceError> {
    let arr = v
        .as_array()
        .ok_or_else(|| bad("\"cache\" must be an array of cache seeds"))?;
    arr.iter()
        .enumerate()
        .map(|(i, seed)| {
            if !matches!(seed, Json::Obj(_)) {
                return Err(bad(format!("cache seed {i} must be an object")));
            }
            Ok(CacheSeed {
                solver: req_str(seed, "solver")?,
                q: node_list(
                    seed.get("q")
                        .ok_or_else(|| bad(format!("cache seed {i} missing field \"q\"")))?,
                    "cache seed \"q\"",
                )?,
                max_size: opt_u64(seed, "max_size")?.map(|m| m as usize),
                weight_digest: weight_digest_from_json(seed, i)?,
                report: report_from_json(
                    seed.get("report")
                        .ok_or_else(|| bad(format!("cache seed {i} missing field \"report\"")))?,
                )?,
            })
        })
        .collect()
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ServiceError> {
    let obj = parse(line).map_err(|e| bad(e.to_string()))?;
    if !matches!(obj, Json::Obj(_)) {
        return Err(bad("request must be a JSON object"));
    }
    match obj.get("v") {
        None | Some(Json::Null) => {}
        Some(v) => {
            let requested = v
                .as_u64()
                .ok_or_else(|| bad("field \"v\" must be a non-negative integer"))?;
            if requested != PROTOCOL_VERSION {
                return Err(ServiceError::UnsupportedVersion {
                    requested,
                    supported: PROTOCOL_VERSION,
                });
            }
        }
    }
    let id = obj.get("id").cloned();
    let cmd = req_str(&obj, "cmd")?;
    let command = match cmd.as_str() {
        "solve" => Command::Solve {
            params: solve_params(&obj)?,
            q: node_list(
                obj.get("q").ok_or_else(|| bad("missing field \"q\""))?,
                "\"q\"",
            )?,
        },
        "batch" => {
            let params = batch_params(&obj)?;
            let have_default_graph = !params.graph.is_empty();
            let queries = obj
                .get("queries")
                .ok_or_else(|| bad("missing field \"queries\""))?
                .as_array()
                .ok_or_else(|| bad("\"queries\" must be an array of queries"))?
                .iter()
                .enumerate()
                .map(|(i, q)| batch_entry(q, i, have_default_graph))
                .collect::<Result<Vec<_>, _>>()?;
            Command::Batch { params, queries }
        }
        "stats" => Command::Stats,
        "metrics" => Command::Metrics,
        "slowlog" => Command::Slowlog {
            limit: opt_u64(&obj, "limit")?.map(|l| l as usize),
        },
        "graphs" => Command::Graphs,
        "shard" => Command::Shard {
            graph: opt_str(&obj, "graph")?,
        },
        "load" => Command::Load {
            name: req_str(&obj, "name")?,
            source: req_str(&obj, "source")?,
            cache: match obj.get("cache") {
                None | Some(Json::Null) => Vec::new(),
                Some(v) => cache_seeds(v)?,
            },
        },
        "evict" => Command::Evict {
            name: req_str(&obj, "name")?,
        },
        "cache_export" => Command::CacheExport {
            name: req_str(&obj, "name")?,
        },
        "reshard" => {
            let add = match obj.get("add") {
                None | Some(Json::Null) => None,
                Some(v) => {
                    if !matches!(v, Json::Obj(_)) {
                        return Err(bad("\"add\" must be an object with \"name\" and \"addr\""));
                    }
                    Some(ShardChange {
                        name: req_str(v, "name")?,
                        addr: req_str(v, "addr")?,
                    })
                }
            };
            let remove = opt_str(&obj, "remove")?;
            if add.is_none() && remove.is_none() {
                return Err(bad("reshard needs \"add\" and/or \"remove\""));
            }
            Command::Reshard { add, remove }
        }
        "ping" => Command::Ping,
        "burn" => Command::Burn {
            ms: opt_u64(&obj, "ms")?.ok_or_else(|| bad("missing field \"ms\""))?,
        },
        "shutdown" => Command::Shutdown,
        other => return Err(bad(format!("unknown cmd {other:?}"))),
    };
    Ok(Request { id, command })
}

fn with_id(mut payload: Vec<(&'static str, Json)>, id: &Option<Json>) -> Json {
    if let Some(id) = id {
        payload.push(("id", id.clone()));
    }
    Json::obj(payload)
}

/// Encodes a success response line (no trailing newline).
pub fn ok_response(id: &Option<Json>, mut payload: Vec<(&'static str, Json)>) -> String {
    payload.push(("ok", Json::Bool(true)));
    with_id(payload, id).to_string()
}

/// The `{"code":…,"message":…,"retryable":…}` object for `err` — the
/// shape embedded in error responses and in per-entry `batch` errors.
/// `"retryable"` is the machine-readable retry hint
/// ([`ServiceError::retryable`]); clients branch on it via
/// [`crate::client::WireError::is_retryable`] instead of matching code
/// strings.
pub fn error_json(err: &ServiceError) -> Json {
    Json::obj([
        ("code", Json::from(err.code())),
        ("message", Json::from(err.to_string())),
        ("retryable", Json::Bool(err.retryable())),
    ])
}

/// Encodes an error response line (no trailing newline).
pub fn error_response(id: &Option<Json>, err: &ServiceError) -> String {
    with_id(
        vec![("ok", Json::Bool(false)), ("error", error_json(err))],
        id,
    )
    .to_string()
}

/// Converts a [`SolveReport`] to its wire object — by construction the
/// same shape as [`SolveReport::to_json`] (a unit test pins the two
/// together).
pub fn report_to_json(report: &SolveReport) -> Json {
    Json::obj([
        ("solver", Json::from(report.solver.as_str())),
        (
            "connector",
            Json::Arr(
                report
                    .connector
                    .vertices()
                    .iter()
                    .map(|&v| Json::from(u64::from(v)))
                    .collect(),
            ),
        ),
        ("wiener_index", Json::from(report.wiener_index)),
        ("seconds", Json::from(report.seconds)),
        ("candidates", Json::from(report.candidates)),
        (
            "optimal",
            match report.optimal {
                Some(b) => Json::Bool(b),
                None => Json::Null,
            },
        ),
    ])
}

/// Inverse of [`report_to_json`]: re-inflates a [`SolveReport`] from its
/// wire object — used when warm-cache seeds travel between replicas (the
/// connector is re-inflated with [`Connector::from_vertices`]; the
/// sender vouches for connectivity, exactly as with the client wrapper).
pub fn report_from_json(v: &Json) -> Result<SolveReport, ServiceError> {
    if !matches!(v, Json::Obj(_)) {
        return Err(bad("report must be an object"));
    }
    let connector = node_list(
        v.get("connector")
            .ok_or_else(|| bad("report missing field \"connector\""))?,
        "report \"connector\"",
    )?;
    Ok(SolveReport {
        solver: req_str(v, "solver")?,
        connector: Connector::from_vertices(connector),
        wiener_index: v
            .get("wiener_index")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("report missing numeric field \"wiener_index\""))?,
        seconds: v.get("seconds").and_then(Json::as_f64).unwrap_or(0.0),
        candidates: v.get("candidates").and_then(Json::as_u64).unwrap_or(0),
        optimal: match v.get("optimal") {
            None | Some(Json::Null) => None,
            Some(Json::Bool(b)) => Some(*b),
            Some(_) => return Err(bad("report \"optimal\" must be a boolean or null")),
        },
    })
}

/// Encodes one warm-cache seed as its wire object — the element shape of
/// `cache_export`'s `"entries"` and `load`'s `"cache"`.
pub fn cache_seed_to_json(seed: &CacheSeed) -> Json {
    let mut fields = vec![
        ("solver", Json::from(seed.solver.as_str())),
        (
            "q",
            Json::Arr(seed.q.iter().map(|&v| Json::from(u64::from(v))).collect()),
        ),
    ];
    if let Some(m) = seed.max_size {
        fields.push(("max_size", Json::from(m)));
    }
    if seed.weight_digest != 0 {
        // Hex string, not a number: `Json` numbers are `f64`, which
        // mangles u64 digests above 2^53 (see `weight_digest_from_json`).
        fields.push((
            "weight_digest",
            Json::from(format!("{:016x}", seed.weight_digest)),
        ));
    }
    fields.push(("report", report_to_json(&seed.report)));
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_solve_with_options() {
        let r = parse_request(
            r#"{"cmd":"solve","graph":"karate","solver":"ws-q","q":[0,33],"deadline_ms":50,"max_size":10,"no_cache":true,"id":7}"#,
        )
        .unwrap();
        assert_eq!(r.id, Some(Json::Num(7.0)));
        match r.command {
            Command::Solve { params, q } => {
                assert_eq!(params.graph, "karate");
                assert_eq!(params.solver, "ws-q");
                assert_eq!(params.deadline_ms, Some(50));
                assert_eq!(params.max_size, Some(10));
                assert!(params.no_cache);
                assert_eq!(q, vec![0, 33]);
                let opts = params.options(Some(Duration::from_millis(20)));
                assert_eq!(opts.time_budget(), Some(Duration::from_millis(20)));
                assert_eq!(opts.size_budget(), Some(10));
                assert!(opts.cache_disabled());
            }
            other => panic!("unexpected command {other:?}"),
        }
        // Absent → false.
        let r = parse_request(r#"{"cmd":"solve","graph":"g","solver":"s","q":[0,1]}"#).unwrap();
        match r.command {
            Command::Solve { params, .. } => {
                assert!(!params.no_cache);
                assert!(!params.options(None).cache_disabled());
                assert!(!params.trace);
                assert_eq!(params.trace_id, None);
            }
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn parses_trace_fields() {
        let r = parse_request(
            r#"{"cmd":"solve","graph":"g","solver":"s","q":[0,1],"trace":true,"trace_id":"00c0ffee00c0ffee"}"#,
        )
        .unwrap();
        match r.command {
            Command::Solve { params, .. } => {
                assert!(params.trace);
                assert_eq!(params.trace_id.as_deref(), Some("00c0ffee00c0ffee"));
            }
            other => panic!("unexpected command {other:?}"),
        }
        let r = parse_request(
            r#"{"cmd":"batch","graph":"g","solver":"s","queries":[[0,1]],"trace":true}"#,
        )
        .unwrap();
        match r.command {
            Command::Batch { params, .. } => {
                assert!(params.trace);
                assert_eq!(params.trace_id, None);
            }
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn parses_the_rest_of_the_grammar() {
        let cases = [
            (r#"{"cmd":"stats"}"#, Command::Stats),
            (r#"{"cmd":"metrics"}"#, Command::Metrics),
            (r#"{"cmd":"slowlog"}"#, Command::Slowlog { limit: None }),
            (
                r#"{"cmd":"slowlog","limit":5}"#,
                Command::Slowlog { limit: Some(5) },
            ),
            (r#"{"cmd":"graphs"}"#, Command::Graphs),
            (r#"{"cmd":"ping"}"#, Command::Ping),
            (r#"{"cmd":"shutdown"}"#, Command::Shutdown),
            (r#"{"cmd":"burn","ms":25}"#, Command::Burn { ms: 25 }),
            (
                r#"{"cmd":"load","name":"toy","source":"ba:100x2"}"#,
                Command::Load {
                    name: "toy".into(),
                    source: "ba:100x2".into(),
                    cache: Vec::new(),
                },
            ),
            (
                r#"{"cmd":"evict","name":"toy"}"#,
                Command::Evict { name: "toy".into() },
            ),
            (
                r#"{"cmd":"cache_export","name":"toy"}"#,
                Command::CacheExport { name: "toy".into() },
            ),
            (
                r#"{"cmd":"reshard","add":{"name":"s9","addr":"127.0.0.1:9"}}"#,
                Command::Reshard {
                    add: Some(ShardChange {
                        name: "s9".into(),
                        addr: "127.0.0.1:9".into(),
                    }),
                    remove: None,
                },
            ),
            (
                r#"{"cmd":"reshard","remove":"s0"}"#,
                Command::Reshard {
                    add: None,
                    remove: Some("s0".into()),
                },
            ),
        ];
        for (line, want) in cases {
            assert_eq!(parse_request(line).unwrap().command, want, "{line}");
        }
        let batch =
            parse_request(r#"{"cmd":"batch","graph":"g","solver":"st","queries":[[0,1],[2,3,4]]}"#)
                .unwrap();
        match batch.command {
            Command::Batch { params, queries } => {
                assert_eq!(params.graph, "g");
                assert_eq!(
                    queries,
                    vec![
                        BatchEntry {
                            graph: None,
                            q: vec![0, 1]
                        },
                        BatchEntry {
                            graph: None,
                            q: vec![2, 3, 4]
                        },
                    ]
                );
                assert_eq!(queries[0].graph_name(&params.graph), "g");
            }
            other => panic!("unexpected {other:?}"),
        }
        let shard = parse_request(r#"{"cmd":"shard"}"#).unwrap();
        assert_eq!(shard.command, Command::Shard { graph: None });
        let shard = parse_request(r#"{"cmd":"shard","graph":"karate"}"#).unwrap();
        assert_eq!(
            shard.command,
            Command::Shard {
                graph: Some("karate".into())
            }
        );
    }

    #[test]
    fn parses_batches_with_per_entry_graphs() {
        // Mixed entries: bare queries use the top-level graph, objects
        // may override it.
        let r = parse_request(
            r#"{"cmd":"batch","graph":"a","solver":"st",
                "queries":[[0,1],{"graph":"b","q":[2,3]},{"q":[4,5]}]}"#,
        )
        .unwrap();
        match r.command {
            Command::Batch { params, queries } => {
                assert_eq!(queries.len(), 3);
                assert_eq!(queries[0].graph_name(&params.graph), "a");
                assert_eq!(queries[1].graph_name(&params.graph), "b");
                assert_eq!(queries[2].graph_name(&params.graph), "a");
                assert_eq!(queries[1].q, vec![2, 3]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // No top-level graph is fine when every entry carries one…
        let r = parse_request(
            r#"{"cmd":"batch","solver":"st",
                "queries":[{"graph":"a","q":[0,1]},{"graph":"b","q":[2]}]}"#,
        )
        .unwrap();
        match r.command {
            Command::Batch { params, queries } => {
                assert!(params.graph.is_empty());
                assert_eq!(queries[1].graph_name(&params.graph), "b");
            }
            other => panic!("unexpected {other:?}"),
        }
        // …and a bad_request when some entry does not.
        for line in [
            r#"{"cmd":"batch","solver":"st","queries":[[0,1]]}"#,
            r#"{"cmd":"batch","solver":"st","queries":[{"q":[0,1]}]}"#,
            r#"{"cmd":"batch","solver":"st","queries":[{"graph":"","q":[0,1]}]}"#,
            r#"{"cmd":"batch","graph":"a","solver":"st","queries":[{"graph":"b"}]}"#,
            r#"{"cmd":"batch","graph":"a","solver":"st","queries":[7]}"#,
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code(), "bad_request", "{line:?} → {err}");
        }
    }

    #[test]
    fn rejects_malformed_requests_with_bad_request() {
        for line in [
            "",
            "not json",
            "[1,2]",
            r#"{"cmd":"warp"}"#,
            r#"{"cmd":"solve","graph":"g","solver":"s"}"#, // missing q
            r#"{"cmd":"solve","graph":"g","solver":"s","q":[-1]}"#,
            r#"{"cmd":"solve","graph":"g","solver":"s","q":["a"]}"#,
            r#"{"cmd":"solve","graph":"g","solver":"s","q":[0],"deadline_ms":"soon"}"#,
            r#"{"cmd":"solve","graph":"g","solver":"s","q":[0],"no_cache":"yes"}"#,
            r#"{"cmd":"solve","graph":"g","solver":"s","q":[4294967296]}"#, // > u32
            r#"{"cmd":"batch","graph":"g","solver":"s","queries":[0]}"#,
            r#"{"cmd":"burn"}"#,
            r#"{"cmd":"load","name":"x"}"#,
            r#"{"cmd":"load","name":"x","source":"karate","cache":7}"#,
            r#"{"cmd":"load","name":"x","source":"karate","cache":[{"solver":"s","q":[0,1]}]}"#,
            r#"{"cmd":"reshard"}"#,
            r#"{"cmd":"reshard","add":"s9"}"#,
            r#"{"cmd":"cache_export"}"#,
            r#"{"cmd":"ping","v":"one"}"#,
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code(), "bad_request", "{line:?} → {err}");
        }
    }

    #[test]
    fn version_field_gates_the_protocol() {
        // Absent and explicit v=1 both parse.
        assert_eq!(
            parse_request(r#"{"cmd":"ping"}"#).unwrap().command,
            Command::Ping
        );
        assert_eq!(
            parse_request(r#"{"cmd":"ping","v":1}"#).unwrap().command,
            Command::Ping
        );
        // Any other version is rejected with the stable negotiation code,
        // before command dispatch (even an unknown cmd reports the
        // version problem, not bad_request).
        for line in [
            r#"{"cmd":"ping","v":2}"#,
            r#"{"cmd":"ping","v":0}"#,
            r#"{"cmd":"warp","v":7}"#,
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code(), "unsupported_version", "{line:?} → {err}");
            assert!(!err.retryable());
        }
    }

    #[test]
    fn error_objects_carry_machine_readable_retryability() {
        let retryable = error_json(&ServiceError::Overloaded { queue_capacity: 8 });
        assert_eq!(retryable.get("retryable").unwrap().as_bool(), Some(true));
        let terminal = error_json(&ServiceError::BadRequest("x".into()));
        assert_eq!(terminal.get("retryable").unwrap().as_bool(), Some(false));
        let conn = error_json(&ServiceError::TooManyConnections { limit: 3 });
        assert_eq!(
            conn.get("code").unwrap().as_str(),
            Some("too_many_connections")
        );
        assert_eq!(conn.get("retryable").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn cache_seeds_roundtrip_through_the_wire_shape() {
        use mwc_core::QueryEngine;
        let g = mwc_graph::generators::karate::karate_club();
        let report = QueryEngine::new(&g)
            .solve("ws-q", &[11, 24, 25, 29])
            .unwrap();
        let seed = CacheSeed {
            solver: "ws-q".into(),
            q: vec![11, 24, 25, 29],
            max_size: Some(12),
            weight_digest: 0,
            report,
        };
        let line = format!(
            r#"{{"cmd":"load","name":"k","source":"karate","cache":[{}]}}"#,
            cache_seed_to_json(&seed)
        );
        match parse_request(&line).unwrap().command {
            Command::Load {
                name,
                source,
                cache,
            } => {
                assert_eq!(name, "k");
                assert_eq!(source, "karate");
                assert_eq!(cache.len(), 1);
                assert_eq!(cache[0].solver, seed.solver);
                assert_eq!(cache[0].q, seed.q);
                assert_eq!(cache[0].max_size, seed.max_size);
                assert_eq!(
                    cache[0].report.connector.vertices(),
                    seed.report.connector.vertices()
                );
                assert_eq!(cache[0].report.wiener_index, seed.report.wiener_index);
                assert_eq!(cache[0].report.optimal, seed.report.optimal);
            }
            other => panic!("unexpected {other:?}"),
        }
        // max_size is part of the cache key: absent must stay absent.
        let bare = CacheSeed {
            max_size: None,
            ..seed
        };
        let json = cache_seed_to_json(&bare);
        assert!(json.get("max_size").is_none());
        // weight_digest: zero stays off the wire; a nonzero digest above
        // 2^53 (as ~all real FNV digests are) round-trips exactly via
        // its hex-string encoding.
        assert!(json.get("weight_digest").is_none());
        let digest: u64 = 0xfedc_ba98_7654_3210; // > 2^53: f64-lossy as a number
        let weighted = CacheSeed {
            weight_digest: digest,
            ..bare
        };
        let wire = cache_seed_to_json(&weighted);
        assert_eq!(
            wire.get("weight_digest").unwrap().as_str(),
            Some("fedcba9876543210")
        );
        let line = format!(r#"{{"cmd":"load","name":"k","source":"karate","cache":[{wire}]}}"#);
        match parse_request(&line).unwrap().command {
            Command::Load { cache, .. } => assert_eq!(cache[0].weight_digest, digest),
            other => panic!("unexpected {other:?}"),
        }
        // Numeric digests are rejected, never accepted lossily.
        let numeric = line.replace("\"fedcba9876543210\"", "99");
        assert!(parse_request(&numeric).is_err());
    }

    #[test]
    fn responses_echo_ids_and_carry_codes() {
        let id = Some(Json::from("req-1"));
        let ok = ok_response(&id, vec![("pong", Json::Bool(true))]);
        let v = crate::json::parse(&ok).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("id").unwrap().as_str(), Some("req-1"));
        assert_eq!(v.get("pong").unwrap().as_bool(), Some(true));

        let err = error_response(&None, &ServiceError::Overloaded { queue_capacity: 8 });
        let v = crate::json::parse(&err).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(
            v.get("error").unwrap().get("code").unwrap().as_str(),
            Some("overloaded")
        );
        assert!(v.get("id").is_none());
    }

    #[test]
    fn report_wire_object_matches_core_to_json() {
        use mwc_core::QueryEngine;
        let g = mwc_graph::generators::karate::karate_club();
        let report = QueryEngine::new(&g)
            .solve("ws-q", &[11, 24, 25, 29])
            .unwrap();
        let via_core = crate::json::parse(&report.to_json()).unwrap();
        assert_eq!(report_to_json(&report), via_core);
    }
}
