//! The TCP server: two interchangeable transports in front of a fixed
//! worker pool behind a bounded admission queue.
//!
//! # Architecture
//!
//! ```text
//!            threads transport                 epoll transport (linux)
//!  acceptor ──spawns──▶ reader thread      one event-loop thread:
//!  (1 per connection)                      nonblocking accept + read +
//!        │ parse line → Request            write over a registered
//!        │ control cmds answered inline    connection table (pipelined,
//!        ▼                                 responses in request order)
//!                     bounded JobQueue ──✗ full → "overloaded"
//!                            │
//!               worker pool (N threads): solve/batch/load/burn
//!                            │  solve → per-graph coalescing
//!                            │  window (see [`crate::coalesce`])
//!                            ▼
//!          per-connection write mutex  /  completion mailbox
//!          (threads)                      + eventfd wakeup (epoll)
//! ```
//!
//! [`ServerConfig::transport`] selects the transport; both speak the
//! identical wire protocol (the loopback suites run bit-identically
//! under either — CI pins this). The epoll loop lives in
//! [`crate::event_loop`], over the tiny syscall shim in `net`.
//!
//! Properties this shape buys:
//!
//! * **Admission control** — solving work is bounded by `workers +
//!   queue_capacity`; beyond that the server answers `overloaded`
//!   immediately instead of queueing without bound and timing everyone
//!   out. Control-plane commands bypass the queue, so `stats` stays
//!   answerable *while* the server sheds load — exactly when you need it.
//! * **End-to-end deadlines** — `deadline_ms` starts counting when the
//!   request is read; queue wait is charged against it, and the residue
//!   becomes the solver's cooperative [`QueryOptions`] deadline. A
//!   request that expires in the queue is failed without starting.
//! * **Connection scale** (epoll) — 10k mostly-idle connections cost one
//!   loop thread and a table entry each, not 10k reader threads; slow
//!   clients are bounded by a per-connection write-buffer cap.
//!
//! Shutdown is graceful: the queue drains, workers finish in-flight
//! solves, readers (or the event loop) notice within one poll interval,
//! and `join` collects every thread.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::catalog::Catalog;
use crate::coalesce::{CoalesceConfig, Coalescer, Responder, Submit};
use crate::error::ServiceError;
use crate::json::Json;
use crate::metrics::Metrics;
use crate::protocol::{
    cache_seed_to_json, error_json, error_response, ok_response, parse_request, report_to_json,
    Command, Request, SolveParams,
};
use crate::trace::{
    next_trace_id, span_tree, SlowLog, TraceContext, TraceRecorder, DEFAULT_SLOWLOG_CAPACITY,
    DEFAULT_SLOWLOG_MS, NO_PARENT,
};

/// Which accept/read/write machinery serves connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// One reader thread per connection (portable reference path).
    Threads,
    /// One nonblocking event-loop thread over epoll (linux). Supports
    /// pipelining: many in-flight requests per connection, answered in
    /// request order.
    Epoll,
}

impl Transport {
    /// Platform default — `Epoll` on linux, `Threads` elsewhere —
    /// overridable with `MWC_TRANSPORT=threads|epoll` (how CI runs the
    /// same loopback suites under both transports).
    pub fn from_env_or_default() -> Transport {
        match std::env::var("MWC_TRANSPORT").as_deref() {
            Ok("threads") => Transport::Threads,
            Ok("epoll") => Transport::Epoll,
            _ => {
                if cfg!(target_os = "linux") {
                    Transport::Epoll
                } else {
                    Transport::Threads
                }
            }
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing solving work. Default: available
    /// parallelism, capped at 8 (solvers parallelize internally when a
    /// worker is otherwise idle).
    pub workers: usize,
    /// Bounded admission-queue depth (jobs waiting beyond the ones being
    /// executed). Requests arriving when it is full get `overloaded`.
    pub queue_capacity: usize,
    /// Hard cap on a request line's length, in bytes.
    pub max_line_bytes: usize,
    /// Maximum queries accepted in one `batch` request.
    pub max_batch: usize,
    /// Maximum concurrent connections (each costs one reader thread).
    /// Beyond it, new connections get one `overloaded` error line and
    /// are closed — so idle-connection floods are bounded, not just
    /// solve traffic.
    pub max_connections: usize,
    /// Socket poll interval: how quickly idle readers notice shutdown.
    pub poll_interval: Duration,
    /// Cross-request solve coalescing (see [`crate::coalesce`]). On by
    /// default; `mwc-server --no-coalesce` / `--coalesce-window-us` land
    /// here.
    pub coalesce: CoalesceConfig,
    /// Requests whose total latency (read → response written) crosses
    /// this threshold land in the slow-query ring served by the
    /// `slowlog` command (`mwc-server --slowlog-ms` lands here).
    pub slowlog_threshold: Duration,
    /// Slow-query ring capacity: newest entries evict oldest beyond it.
    pub slowlog_capacity: usize,
    /// Accept/read/write machinery (see [`Transport`]).
    pub transport: Transport,
    /// Per-connection outbound byte cap (epoll transport): a client not
    /// reading its responses is disconnected once this many bytes are
    /// queued for it, instead of buffering without bound. Reading from
    /// the connection pauses at half this backlog.
    pub max_write_buffer: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(2)
                .min(8),
            queue_capacity: 64,
            max_line_bytes: 4 << 20,
            max_batch: 4096,
            max_connections: 1024,
            poll_interval: Duration::from_millis(50),
            coalesce: CoalesceConfig::default(),
            slowlog_threshold: Duration::from_millis(DEFAULT_SLOWLOG_MS),
            slowlog_capacity: DEFAULT_SLOWLOG_CAPACITY,
            transport: Transport::from_env_or_default(),
            max_write_buffer: 8 << 20,
        }
    }
}

/// Where a worker's response line goes: straight to the connection's
/// stream (threads transport) or back to the event loop's completion
/// mailbox, tagged with the connection token and per-connection sequence
/// number so pipelined responses flush in request order (epoll).
#[derive(Clone)]
pub(crate) enum ResponseSink {
    Stream(Arc<Mutex<TcpStream>>),
    #[cfg(target_os = "linux")]
    Event {
        shared: Arc<crate::event_loop::LoopShared>,
        token: u64,
        seq: u64,
    },
}

pub(crate) struct Job {
    pub(crate) request: Request,
    pub(crate) sink: ResponseSink,
    pub(crate) received: Instant,
}

/// FIFO queue with a hard capacity; `try_push` fails fast when full.
pub(crate) struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    pub(crate) ready: Condvar,
    pub(crate) capacity: usize,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity,
        }
    }

    fn try_push(&self, job: Job, metrics: &Metrics) -> Result<(), ServiceError> {
        let mut jobs = self.jobs.lock().expect("queue lock poisoned");
        if jobs.len() >= self.capacity {
            return Err(ServiceError::Overloaded {
                queue_capacity: self.capacity,
            });
        }
        jobs.push_back(job);
        let depth = jobs.len() as u64;
        metrics.queue_depth.store(depth, Ordering::Relaxed);
        metrics.queue_peak.fetch_max(depth, Ordering::Relaxed);
        drop(jobs);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once shutdown is set *and* the
    /// queue has drained (accepted work is finished, not dropped).
    fn pop(&self, shutdown: &AtomicBool, metrics: &Metrics) -> Option<Job> {
        let mut jobs = self.jobs.lock().expect("queue lock poisoned");
        loop {
            if let Some(job) = jobs.pop_front() {
                metrics
                    .queue_depth
                    .store(jobs.len() as u64, Ordering::Relaxed);
                return Some(job);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(jobs, Duration::from_millis(50))
                .expect("queue lock poisoned");
            jobs = guard;
        }
    }
}

pub(crate) struct Inner {
    pub(crate) catalog: Arc<Catalog>,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) config: ServerConfig,
    pub(crate) queue: JobQueue,
    pub(crate) coalescer: Coalescer,
    pub(crate) slowlog: SlowLog,
    pub(crate) shutdown: AtomicBool,
}

impl Inner {
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.ready.notify_all();
        // Flush every coalescing window before anyone sees the shutdown
        // acknowledged: no request may be left parked on a condvar.
        self.coalescer.drain();
    }
}

/// A running server: its address, shared state, and every thread it
/// spawned. Stop it with [`Self::shutdown`] (or let a protocol
/// `shutdown` command initiate the drain and [`Self::wait`] for it).
pub struct ServerHandle {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// The epoll transport's single loop thread (`None` under threads).
    event_loop: Option<JoinHandle<()>>,
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
/// accepting connections against `catalog`.
pub fn start(
    catalog: Arc<Catalog>,
    config: ServerConfig,
    addr: impl ToSocketAddrs,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let metrics = Arc::new(Metrics::new());
    let inner = Arc::new(Inner {
        catalog,
        metrics,
        queue: JobQueue::new(config.queue_capacity.max(1)),
        coalescer: Coalescer::new(config.coalesce.clone()),
        slowlog: SlowLog::new(config.slowlog_threshold, config.slowlog_capacity),
        config,
        shutdown: AtomicBool::new(false),
    });

    let workers: Vec<JoinHandle<()>> = (0..inner.config.workers.max(1))
        .map(|i| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("mwc-worker-{i}"))
                .spawn(move || worker_loop(&inner))
                .expect("spawn worker")
        })
        .collect();

    let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let mut acceptor = None;
    let mut event_loop = None;
    match inner.config.transport {
        Transport::Threads => {
            let inner2 = Arc::clone(&inner);
            let readers2 = Arc::clone(&readers);
            acceptor = Some(
                std::thread::Builder::new()
                    .name("mwc-acceptor".to_string())
                    .spawn(move || acceptor_loop(&inner2, &listener, &readers2))
                    .expect("spawn acceptor"),
            );
        }
        #[cfg(target_os = "linux")]
        Transport::Epoll => {
            let shared = crate::event_loop::LoopShared::new()?;
            let inner2 = Arc::clone(&inner);
            event_loop = Some(
                std::thread::Builder::new()
                    .name("mwc-epoll".to_string())
                    .spawn(move || crate::event_loop::run(&inner2, listener, &shared))
                    .expect("spawn event loop"),
            );
        }
        #[cfg(not(target_os = "linux"))]
        Transport::Epoll => {
            // Stop the worker pool we just started before reporting.
            inner.begin_shutdown();
            for w in workers {
                let _ = w.join();
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "the epoll transport requires linux; use Transport::Threads",
            ));
        }
    }

    Ok(ServerHandle {
        inner,
        addr,
        acceptor,
        workers,
        readers,
        event_loop,
    })
}

impl ServerHandle {
    /// The bound address (port resolved if `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The catalog this server answers from.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.inner.catalog
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.inner.metrics
    }

    /// The server's slow-query ring (what the `slowlog` command serves).
    pub fn slowlog(&self) -> &SlowLog {
        &self.inner.slowlog
    }

    /// Whether shutdown has been initiated (by [`Self::shutdown`] or a
    /// protocol `shutdown` command).
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Initiates a graceful shutdown and joins every thread: queued work
    /// is finished, new requests are refused, readers disconnect.
    pub fn shutdown(mut self) {
        self.inner.begin_shutdown();
        self.join_all();
    }

    /// Serves until a protocol `shutdown` command arrives, then drains
    /// and joins (the `mwc-server` binary's main loop).
    pub fn wait(mut self) {
        while !self.inner.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            // Unblock the acceptor's blocking `accept` with a no-op
            // connect (the epoll loop needs no wake: its wait times out
            // every poll interval).
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(event_loop) = self.event_loop.take() {
            // After the workers: every admitted job has published its
            // completion by now, so the loop's outstanding count can
            // only drain to zero.
            let _ = event_loop.join();
        }
        let readers: Vec<JoinHandle<()>> = self
            .readers
            .lock()
            .expect("reader registry poisoned")
            .drain(..)
            .collect();
        for r in readers {
            let _ = r.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || self.event_loop.is_some() {
            self.inner.begin_shutdown();
            self.join_all();
        }
    }
}

fn acceptor_loop(
    inner: &Arc<Inner>,
    listener: &TcpListener,
    readers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // A persistent accept error (e.g. EMFILE when fds are
                // exhausted) must not busy-spin a core; back off briefly.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            return; // the wake-up connect, or a straggler during drain
        }
        let mut registry = readers.lock().expect("reader registry poisoned");
        registry.retain(|h| !h.is_finished()); // prune dead connections
        if registry.len() >= inner.config.max_connections {
            // Each connection costs a reader thread; refuse beyond the
            // limit so idle floods are bounded, not just solve traffic.
            drop(registry);
            inner.metrics.overload_total.fetch_add(1, Ordering::Relaxed);
            inner.metrics.error_total.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let line = error_response(
                &None,
                &ServiceError::TooManyConnections {
                    limit: inner.config.max_connections,
                },
            );
            let _ = stream.write_all(line.as_bytes());
            let _ = stream.write_all(b"\n");
            continue;
        }
        // Count the connection live at accept, not at reader startup, so
        // the gauge is authoritative the moment the accept returns — the
        // same instant the epoll transport counts it into its table.
        inner
            .metrics
            .connections_total
            .fetch_add(1, Ordering::Relaxed);
        inner
            .metrics
            .connections_live
            .fetch_add(1, Ordering::Relaxed);
        let inner2 = Arc::clone(inner);
        let spawned = std::thread::Builder::new()
            .name("mwc-conn".to_string())
            .spawn(move || serve_connection(&inner2, stream));
        match spawned {
            Ok(handle) => registry.push(handle),
            Err(_) => {
                // Thread exhaustion (e.g. at high --connections counts):
                // shed the connection like an over-limit accept instead
                // of killing the acceptor.
                inner
                    .metrics
                    .connections_live
                    .fetch_sub(1, Ordering::Relaxed);
                inner.metrics.overload_total.fetch_add(1, Ordering::Relaxed);
                inner.metrics.error_total.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

pub(crate) fn write_line(sink: &ResponseSink, line: &str, ok: bool, metrics: &Metrics) {
    if ok {
        metrics.ok_total.fetch_add(1, Ordering::Relaxed);
    } else {
        metrics.error_total.fetch_add(1, Ordering::Relaxed);
    }
    match sink {
        ResponseSink::Stream(out) => {
            // One write per response: two small writes on a Nagle-enabled
            // socket trigger the delayed-ACK interaction (~40 ms per
            // response — the difference between ~100 and thousands of
            // requests per second).
            let mut buf = Vec::with_capacity(line.len() + 1);
            buf.extend_from_slice(line.as_bytes());
            buf.push(b'\n');
            let t = Instant::now();
            let mut stream = out.lock().expect("connection write lock poisoned");
            let _ = stream.write_all(&buf);
            let _ = stream.flush();
            drop(stream);
            metrics.record_stage("write", t.elapsed());
        }
        #[cfg(target_os = "linux")]
        ResponseSink::Event { shared, token, seq } => {
            // The loop sequences the line into the connection's bounded
            // write buffer and does the socket write itself (recording
            // the `write` stage there).
            shared.complete(*token, *seq, line);
        }
    }
}

/// Decrements `connections_live` when the reader thread exits, whatever
/// path it took out of `serve_connection`.
struct LiveConnection<'a>(&'a Metrics);

impl Drop for LiveConnection<'_> {
    fn drop(&mut self) {
        self.0.connections_live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Best-effort `id` recovery from a line that failed request parsing, so
/// even error responses correlate when the JSON itself was well-formed.
/// Shared with the router's connection loop.
pub(crate) fn salvage_id(line: &str) -> Option<Json> {
    crate::json::parse(line).ok()?.get("id").cloned()
}

pub(crate) enum LineRead {
    /// One complete line (newline stripped) is in the buffer.
    Line,
    /// Clean EOF with nothing buffered.
    Eof,
    /// The line exceeded the cap before its newline arrived.
    TooLong,
    /// I/O failure or shutdown while reading.
    Closed,
}

/// Reads one `\n`-terminated line into `buf`, enforcing `max` on every
/// chunk as it arrives — a client streaming a newline-free line cannot
/// grow the buffer past the cap no matter how fast it sends. Read
/// timeouts are the shutdown poll, not errors. Shared with the router's
/// connection loop.
pub(crate) fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max: usize,
    shutdown: &AtomicBool,
) -> LineRead {
    buf.clear();
    loop {
        let (consumed, outcome) = match reader.fill_buf() {
            Ok([]) => (
                0,
                Some(if buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line // final line without trailing newline
                }),
            ),
            Ok(chunk) => match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) if buf.len() + pos > max => (pos + 1, Some(LineRead::TooLong)),
                Some(pos) => {
                    buf.extend_from_slice(&chunk[..pos]);
                    (pos + 1, Some(LineRead::Line))
                }
                None if buf.len() + chunk.len() > max => (chunk.len(), Some(LineRead::TooLong)),
                None => {
                    let n = chunk.len();
                    buf.extend_from_slice(chunk);
                    (n, None)
                }
            },
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shutdown.load(Ordering::SeqCst) {
                    return LineRead::Closed;
                }
                (0, None)
            }
            Err(_) => return LineRead::Closed,
        };
        reader.consume(consumed);
        if let Some(outcome) = outcome {
            return outcome;
        }
    }
}

fn serve_connection(inner: &Arc<Inner>, stream: TcpStream) {
    // The acceptor already counted this connection live; the guard only
    // decrements on the way out.
    let _live = LiveConnection(&inner.metrics);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(inner.config.poll_interval));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let sink = ResponseSink::Stream(Arc::new(Mutex::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    })));
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match read_line_bounded(
            &mut reader,
            &mut buf,
            inner.config.max_line_bytes,
            &inner.shutdown,
        ) {
            LineRead::Eof | LineRead::Closed => return,
            LineRead::TooLong => {
                inner.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                write_line(&sink, &too_long_response(inner), false, &inner.metrics);
                return; // framing is lost; drop the connection
            }
            LineRead::Line => {}
        }
        let line = match std::str::from_utf8(&buf) {
            Ok(line) => line,
            Err(_) => {
                inner.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                write_line(&sink, &bad_utf8_response(inner), false, &inner.metrics);
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        inner.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
        let request = match parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                inner
                    .metrics
                    .bad_request_total
                    .fetch_add(1, Ordering::Relaxed);
                write_line(
                    &sink,
                    &error_response(&salvage_id(line), &e),
                    false,
                    &inner.metrics,
                );
                continue;
            }
        };
        if matches!(request.command, Command::Shutdown) {
            // Flag first, then acknowledge: the client must never see
            // the response while `is_shutting_down()` still reads
            // false (the pre-nodelay sockets hid this race behind
            // ~40 ms of Nagle delay).
            inner.begin_shutdown();
            write_line(&sink, &shutdown_ack(&request.id), true, &inner.metrics);
            return;
        }
        if let Some((line, ok)) = control_response(inner, &request) {
            write_line(&sink, &line, ok, &inner.metrics);
            continue;
        }
        if let Some((line, ok)) = admit(inner, request, sink.clone(), Instant::now()) {
            write_line(&sink, &line, ok, &inner.metrics);
        }
    }
}

/// The response to a request line that exceeded `max_line_bytes`
/// (framing is lost — the connection must be dropped after sending it).
pub(crate) fn too_long_response(inner: &Inner) -> String {
    inner
        .metrics
        .bad_request_total
        .fetch_add(1, Ordering::Relaxed);
    let err = ServiceError::BadRequest(format!(
        "request line exceeds {} bytes",
        inner.config.max_line_bytes
    ));
    error_response(&None, &err)
}

/// The response to a request line that was not UTF-8 (framing survives).
pub(crate) fn bad_utf8_response(inner: &Inner) -> String {
    inner
        .metrics
        .bad_request_total
        .fetch_add(1, Ordering::Relaxed);
    let err = ServiceError::BadRequest("request line is not UTF-8".to_string());
    error_response(&None, &err)
}

/// The `shutdown` acknowledgement line. Callers must set the shutdown
/// flag (`begin_shutdown`) *before* writing it.
pub(crate) fn shutdown_ack(id: &Option<Json>) -> String {
    ok_response(id, vec![("stopping", Json::Bool(true))])
}

/// Answers a control-plane command inline — never queued, so these work
/// even under overload. `None` for data-plane commands (and `shutdown`,
/// which each transport handles itself). Both transports build their
/// control responses here, which is what keeps them wire-identical.
pub(crate) fn control_response(inner: &Inner, request: &Request) -> Option<(String, bool)> {
    match request.command {
        Command::Ping => Some((
            ok_response(&request.id, vec![("pong", Json::Bool(true))]),
            true,
        )),
        Command::Stats => {
            let mut snap = inner.metrics.snapshot(inner.queue.capacity);
            // Solve-cache counters live in the per-graph engines, not
            // the metrics registry; graft them into the snapshot.
            if let Json::Obj(fields) = &mut snap {
                fields.insert("solve_cache".to_string(), cache_stats_json(&inner.catalog));
                fields.insert("coalesce".to_string(), inner.coalescer.stats_json());
                fields.insert(
                    "transport".to_string(),
                    Json::from(match inner.config.transport {
                        Transport::Threads => "threads",
                        Transport::Epoll => "epoll",
                    }),
                );
            }
            Some((ok_response(&request.id, vec![("stats", snap)]), true))
        }
        Command::Metrics => {
            let text = inner.metrics.render_prometheus(inner.queue.capacity);
            Some((
                ok_response(&request.id, vec![("text", Json::Str(text))]),
                true,
            ))
        }
        Command::Slowlog { limit } => {
            let entries = inner.slowlog.snapshot(limit.unwrap_or(usize::MAX));
            Some((
                ok_response(
                    &request.id,
                    vec![
                        (
                            "threshold_ms",
                            Json::from(inner.slowlog.threshold().as_millis() as u64),
                        ),
                        ("entries", Json::Arr(entries)),
                    ],
                ),
                true,
            ))
        }
        Command::Graphs => {
            let graphs: Vec<Json> = inner
                .catalog
                .list()
                .iter()
                .map(|e| {
                    Json::obj([
                        ("name", Json::from(e.name.as_str())),
                        ("source", Json::from(e.source.as_str())),
                        ("nodes", Json::from(e.num_nodes())),
                        ("edges", Json::from(e.num_edges())),
                        ("weighted", Json::Bool(e.is_weighted())),
                        (
                            "solvers",
                            Json::Arr(e.solver_names().iter().map(|s| Json::from(*s)).collect()),
                        ),
                    ])
                })
                .collect();
            Some((
                ok_response(&request.id, vec![("graphs", Json::Arr(graphs))]),
                true,
            ))
        }
        Command::Evict { ref name } => {
            // Fail everything parked in the graph's coalescing window
            // *before* removing the entry, so no request waits on a
            // queue whose graph is gone (stable `graph_evicted` code,
            // retryable).
            let aborted = inner.coalescer.abort(name);
            let evicted = inner.catalog.evict(name);
            Some((
                ok_response(
                    &request.id,
                    vec![
                        ("evicted", Json::Bool(evicted)),
                        ("aborted", Json::from(aborted)),
                    ],
                ),
                true,
            ))
        }
        Command::CacheExport { ref name } => {
            // Control-plane (bypasses the admission queue): exporting a
            // warm cache must work while the data plane is saturated —
            // that is exactly when a migration wants it.
            let payload = match inner.catalog.get(name) {
                Ok(entry) => {
                    let seeds = entry.export_cache();
                    vec![
                        ("name", Json::from(name.as_str())),
                        ("source", Json::from(entry.source.as_str())),
                        (
                            "entries",
                            Json::Arr(seeds.iter().map(cache_seed_to_json).collect()),
                        ),
                    ]
                }
                Err(err) => {
                    inner.metrics.error_total.fetch_add(1, Ordering::Relaxed);
                    return Some((error_response(&request.id, &err), false));
                }
            };
            Some((ok_response(&request.id, payload), true))
        }
        Command::Shard { .. } | Command::Reshard { .. } => {
            // A single server is not a shard ring; the router answers
            // these. Stable error so probes can tell the two apart.
            let err = ServiceError::BadRequest(
                "no shard ring here: \"shard\" and \"reshard\" are answered by mwc-router"
                    .to_string(),
            );
            inner
                .metrics
                .bad_request_total
                .fetch_add(1, Ordering::Relaxed);
            Some((error_response(&request.id, &err), false))
        }
        Command::Shutdown
        | Command::Solve { .. }
        | Command::Batch { .. }
        | Command::Load { .. }
        | Command::Burn { .. } => None,
    }
}

/// Admits a data-plane request into the worker queue, pinning its trace
/// id at the entry point. Returns `Some((line, false))` when the request
/// was rejected instead (oversized batch, shutdown, full queue) — the
/// caller sends that line through its own path. On `None` the response
/// will arrive through `sink` from a worker.
pub(crate) fn admit(
    inner: &Arc<Inner>,
    mut request: Request,
    sink: ResponseSink,
    received: Instant,
) -> Option<(String, bool)> {
    // Pin the trace id at the entry point: every layer below — the
    // span tree, the slow log, the coalescing window — reads the
    // same one. The router forwards its own, so a shard keeps it.
    if let Command::Solve { ref mut params, .. } | Command::Batch { ref mut params, .. } =
        request.command
    {
        if params.trace && params.trace_id.is_none() {
            params.trace_id = Some(next_trace_id());
        }
    }
    if let Command::Batch { ref queries, .. } = request.command {
        if queries.len() > inner.config.max_batch {
            let err = ServiceError::BadRequest(format!(
                "batch of {} exceeds max_batch = {}",
                queries.len(),
                inner.config.max_batch
            ));
            inner
                .metrics
                .bad_request_total
                .fetch_add(1, Ordering::Relaxed);
            return Some((error_response(&request.id, &err), false));
        }
    }
    if inner.shutdown.load(Ordering::SeqCst) {
        return Some((
            error_response(&request.id, &ServiceError::ShuttingDown),
            false,
        ));
    }
    let id = request.id.clone();
    let job = Job {
        request,
        sink,
        received,
    };
    match inner.queue.try_push(job, &inner.metrics) {
        Ok(()) => None,
        Err(e) => {
            inner.metrics.overload_total.fetch_add(1, Ordering::Relaxed);
            Some((error_response(&id, &e), false))
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    while let Some(job) = inner.queue.pop(&inner.shutdown, &inner.metrics) {
        // Queue wait, worker pickup included, is the admission stage.
        inner
            .metrics
            .record_stage("admission", job.received.elapsed());
        let job = match maybe_coalesce(inner, job) {
            None => continue, // parked in (or answered by) a coalescing window
            Some(job) => job,
        };
        let id = job.request.id.clone();
        // Log before writing: once the response is on the wire the client
        // may immediately ask `slowlog` (served by the reader thread) and
        // must see this request.
        match execute(inner, &job) {
            Ok(payload) => {
                observe_slow(inner, &job, true);
                write_line(&job.sink, &ok_response(&id, payload), true, &inner.metrics);
            }
            Err(e) => {
                if matches!(e, ServiceError::DeadlineExceeded { .. }) {
                    inner
                        .metrics
                        .queue_deadline_total
                        .fetch_add(1, Ordering::Relaxed);
                }
                observe_slow(inner, &job, false);
                write_line(&job.sink, &error_response(&id, &e), false, &inner.metrics);
            }
        }
    }
}

/// Feeds the slow-query ring after a data-plane response is written:
/// the entry is built only when the total latency crossed the threshold.
fn observe_slow(inner: &Inner, job: &Job, ok: bool) {
    let total = job.received.elapsed();
    inner
        .slowlog
        .observe(total, || slowlog_entry(&job.request.command, ok));
}

/// The slow-query ring's JSON shape for one request (before `SlowLog`
/// adds `seq`/`total_ms`/`age_s`).
fn slowlog_entry(command: &Command, ok: bool) -> Json {
    let mut fields: Vec<(&'static str, Json)> = Vec::new();
    match command {
        Command::Solve { params, q } => {
            fields.push(("cmd", Json::from("solve")));
            fields.push(("graph", Json::from(params.graph.as_str())));
            fields.push(("solver", Json::from(params.solver.as_str())));
            fields.push(("q_len", Json::from(q.len())));
            if let Some(id) = &params.trace_id {
                fields.push(("trace_id", Json::from(id.as_str())));
            }
        }
        Command::Batch { params, queries } => {
            fields.push(("cmd", Json::from("batch")));
            if !params.graph.is_empty() {
                fields.push(("graph", Json::from(params.graph.as_str())));
            }
            fields.push(("solver", Json::from(params.solver.as_str())));
            fields.push(("queries", Json::from(queries.len())));
            if let Some(id) = &params.trace_id {
                fields.push(("trace_id", Json::from(id.as_str())));
            }
        }
        Command::Load { name, .. } => {
            fields.push(("cmd", Json::from("load")));
            fields.push(("graph", Json::from(name.as_str())));
        }
        Command::Burn { ms } => {
            fields.push(("cmd", Json::from("burn")));
            fields.push(("burn_ms", Json::from(*ms)));
        }
        _ => fields.push(("cmd", Json::from("other"))),
    }
    fields.push(("ok", Json::Bool(ok)));
    Json::obj(fields)
}

/// Routes a `solve` job through the coalescer. Returns the job back when
/// it should run the classic direct path (coalescing disabled, or not a
/// `solve`); `None` when the request was parked in a window, executed
/// here after a bypass verdict, or already answered with an error.
fn maybe_coalesce(inner: &Arc<Inner>, job: Job) -> Option<Job> {
    if !inner.coalescer.enabled() {
        return Some(job);
    }
    let Command::Solve { ref params, ref q } = job.request.command else {
        return Some(job);
    };
    // Same admission accounting as the direct path: queue wait is charged
    // against the deadline before anything else happens.
    let remaining = match remaining_budget(params.deadline_ms, job.received.elapsed()) {
        Ok(r) => r,
        Err(e) => {
            inner
                .metrics
                .queue_deadline_total
                .fetch_add(1, Ordering::Relaxed);
            observe_slow(inner, &job, false);
            write_line(
                &job.sink,
                &error_response(&job.request.id, &e),
                false,
                &inner.metrics,
            );
            return None;
        }
    };
    let entry = match inner.catalog.get(&params.graph) {
        Ok(entry) => entry,
        Err(e) => {
            observe_slow(inner, &job, false);
            write_line(
                &job.sink,
                &error_response(&job.request.id, &e),
                false,
                &inner.metrics,
            );
            return None;
        }
    };
    let trace = begin_trace(params, job.received);
    let ctx = trace.as_ref().map(RequestTrace::ctx).unwrap_or_default();
    let respond: Responder = {
        let id = job.request.id.clone();
        let sink = job.sink.clone();
        let inner = Arc::clone(inner);
        let graph = params.graph.clone();
        let solver = params.solver.clone();
        let trace_id = params.trace_id.clone();
        let q_len = q.len();
        let received = job.received;
        Box::new(move |result| {
            let ok = result.is_ok();
            let response = match result {
                Ok(report) => {
                    let solved = Duration::from_secs_f64(report.seconds);
                    inner.metrics.record_solve(&solver, solved);
                    inner.metrics.record_stage("solve", solved);
                    let t_ser = Instant::now();
                    let mut payload = vec![
                        ("graph", Json::from(graph.as_str())),
                        ("report", report_to_json(&report)),
                    ];
                    if let Some(tr) = &trace {
                        tr.ctx().record("serialize", t_ser, Instant::now());
                        payload.push(("trace", tr.finish("solve", received)));
                    }
                    inner.metrics.record_stage("serialize", t_ser.elapsed());
                    ok_response(&id, payload)
                }
                Err(e) => {
                    if matches!(e, ServiceError::DeadlineExceeded { .. }) {
                        inner
                            .metrics
                            .queue_deadline_total
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    error_response(&id, &e)
                }
            };
            // Log before writing: once the response is on the wire the
            // client may immediately ask `slowlog` (served by the reader
            // thread) and must see this request.
            inner.slowlog.observe(received.elapsed(), || {
                let mut fields = vec![
                    ("cmd", Json::from("solve")),
                    ("graph", Json::from(graph.as_str())),
                    ("solver", Json::from(solver.as_str())),
                    ("q_len", Json::from(q_len)),
                    ("ok", Json::Bool(ok)),
                ];
                if let Some(id) = &trace_id {
                    fields.push(("trace_id", Json::from(id.as_str())));
                }
                Json::obj(fields)
            });
            write_line(&sink, &response, ok, &inner.metrics);
        })
    };
    match inner.coalescer.submit(
        &entry,
        params.clone(),
        q.clone(),
        job.received,
        remaining,
        ctx.clone(),
        respond,
    ) {
        Submit::Queued => None,
        Submit::Direct(respond) => {
            // Bypass verdict (tight deadline, full queue, drain): run it
            // uncoalesced on this worker, through the same responder.
            let result = entry
                .solve(&params.solver, q, &params.options(remaining).trace(ctx))
                .map_err(ServiceError::Core);
            respond(result);
            None
        }
    }
}

/// Tracing state for one traced request: the shared recorder (origin
/// pinned to the read instant), the reserved root span id stages attach
/// under, and the wire trace id.
struct RequestTrace {
    recorder: Arc<TraceRecorder>,
    root: u32,
    trace_id: String,
}

impl RequestTrace {
    /// A context recording stages as children of the request root.
    fn ctx(&self) -> TraceContext {
        TraceContext::attached(Arc::clone(&self.recorder), self.root)
    }

    /// Completes the root span (named `solve`/`batch`) over `received →
    /// now` and assembles the inline span tree.
    fn finish(&self, name: &'static str, received: Instant) -> Json {
        self.recorder.complete(
            self.root,
            name,
            NO_PARENT,
            received,
            Instant::now(),
            Vec::new(),
        );
        span_tree(&self.trace_id, &self.recorder)
    }
}

/// Starts tracing when the request asked for it (`None` otherwise): the
/// root span is reserved up front, and the time between the read and the
/// worker pickup is recorded as the `admission` span.
fn begin_trace(params: &SolveParams, received: Instant) -> Option<RequestTrace> {
    if !params.trace {
        return None;
    }
    let recorder = TraceRecorder::with_origin(received);
    let root = recorder.reserve()?;
    let tr = RequestTrace {
        trace_id: params.trace_id.clone().unwrap_or_else(next_trace_id),
        recorder,
        root,
    };
    tr.ctx().record("admission", received, Instant::now());
    Some(tr)
}

/// Deadline accounting: how much of `deadline_ms` is left after `spent`,
/// or a `DeadlineExceeded` if the budget is gone.
fn remaining_budget(
    deadline_ms: Option<u64>,
    spent: Duration,
) -> Result<Option<Duration>, ServiceError> {
    match deadline_ms {
        None => Ok(None),
        Some(ms) => {
            let budget = Duration::from_millis(ms);
            budget
                .checked_sub(spent)
                .filter(|d| !d.is_zero())
                .map(Some)
                .ok_or(ServiceError::DeadlineExceeded {
                    queued_ms: spent.as_millis() as u64,
                })
        }
    }
}

/// Aggregated solve-cache counters across every cataloged engine, plus a
/// per-graph breakdown — the `stats` command's `"solve_cache"` section.
fn cache_stats_json(catalog: &Catalog) -> Json {
    let entries = catalog.list();
    let (mut hits, mut misses, mut evictions, mut expired) = (0u64, 0u64, 0u64, 0u64);
    let mut resident = 0usize;
    let mut bytes_used = 0usize;
    let per_graph: Vec<(String, Json)> = entries
        .iter()
        .map(|e| {
            let s = e.cache_stats();
            hits += s.hits;
            misses += s.misses;
            evictions += s.evictions;
            expired += s.expired;
            resident += s.entries;
            bytes_used += s.bytes_used;
            (
                e.name.clone(),
                Json::obj([
                    ("hits", Json::from(s.hits)),
                    ("misses", Json::from(s.misses)),
                    ("evictions", Json::from(s.evictions)),
                    ("expired", Json::from(s.expired)),
                    ("entries", Json::from(s.entries)),
                    ("capacity", Json::from(s.capacity)),
                    ("bytes_used", Json::from(s.bytes_used)),
                    ("capacity_bytes", Json::from(s.capacity_bytes)),
                ]),
            )
        })
        .collect();
    Json::obj([
        ("hits", Json::from(hits)),
        ("misses", Json::from(misses)),
        ("evictions", Json::from(evictions)),
        ("expired", Json::from(expired)),
        ("entries", Json::from(resident)),
        ("bytes_used", Json::from(bytes_used)),
        ("graphs", Json::Obj(per_graph.into_iter().collect())),
    ])
}

fn execute(inner: &Arc<Inner>, job: &Job) -> Result<Vec<(&'static str, Json)>, ServiceError> {
    match &job.request.command {
        Command::Solve { params, q } => {
            let remaining = remaining_budget(params.deadline_ms, job.received.elapsed())?;
            let entry = inner.catalog.get(&params.graph)?;
            let trace = begin_trace(params, job.received);
            let mut options = params.options(remaining);
            if let Some(tr) = &trace {
                options = options.trace(tr.ctx());
            }
            let t_solve = Instant::now();
            let report = entry.solve(&params.solver, q, &options)?;
            inner.metrics.record_stage("solve", t_solve.elapsed());
            inner
                .metrics
                .record_solve(&params.solver, Duration::from_secs_f64(report.seconds));
            let t_ser = Instant::now();
            let mut payload = vec![
                ("graph", Json::from(params.graph.as_str())),
                ("report", report_to_json(&report)),
            ];
            if let Some(tr) = &trace {
                tr.ctx().record("serialize", t_ser, Instant::now());
                payload.push(("trace", tr.finish("solve", job.received)));
            }
            inner.metrics.record_stage("serialize", t_ser.elapsed());
            Ok(payload)
        }
        Command::Batch { params, queries } => {
            let remaining = remaining_budget(params.deadline_ms, job.received.elapsed())?;
            let trace = begin_trace(params, job.received);
            let mut options = params.options(remaining);
            if let Some(tr) = &trace {
                options = options.trace(tr.ctx());
            }
            // Entries may target different graphs (the router's fan-out
            // shape); group them per graph so each group runs the
            // engine's parallel batch path, then reassemble the replies
            // into the original request order. Group errors (unknown
            // graph) land per entry, like per-query solve errors.
            let mut groups: Vec<(&str, Vec<usize>)> = Vec::new();
            for (i, entry) in queries.iter().enumerate() {
                let name = entry.graph_name(&params.graph);
                match groups.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, idxs)) => idxs.push(i),
                    None => groups.push((name, vec![i])),
                }
            }
            let mut ok = 0u64;
            let mut slots: Vec<Option<Json>> = vec![None; queries.len()];
            let t_solve = Instant::now();
            for (name, idxs) in groups {
                match inner.catalog.get(name) {
                    Err(e) => {
                        for &i in &idxs {
                            slots[i] = Some(Json::obj([("error", error_json(&e))]));
                        }
                    }
                    Ok(entry) => {
                        let qs: Vec<_> = idxs.iter().map(|&i| queries[i].q.clone()).collect();
                        let results = entry.solve_batch(&params.solver, &qs, &options);
                        for (&i, r) in idxs.iter().zip(results) {
                            slots[i] = Some(match r {
                                Ok(report) => {
                                    ok += 1;
                                    inner.metrics.record_solve(
                                        &params.solver,
                                        Duration::from_secs_f64(report.seconds),
                                    );
                                    report_to_json(&report)
                                }
                                Err(e) => {
                                    Json::obj([("error", error_json(&ServiceError::Core(e)))])
                                }
                            });
                        }
                    }
                }
            }
            inner.metrics.record_stage("solve", t_solve.elapsed());
            let t_ser = Instant::now();
            let mut payload = vec![
                (
                    "graph",
                    if params.graph.is_empty() {
                        Json::Null
                    } else {
                        Json::from(params.graph.as_str())
                    },
                ),
                ("solved", Json::from(ok)),
                ("reports", Json::Arr(slots.into_iter().flatten().collect())),
            ];
            if let Some(tr) = &trace {
                // Per-entry stage spans from parallel batch lanes may
                // overlap in time; only the traced `solve` tree promises
                // non-overlapping siblings.
                tr.ctx().record("serialize", t_ser, Instant::now());
                payload.push(("trace", tr.finish("batch", job.received)));
            }
            inner.metrics.record_stage("serialize", t_ser.elapsed());
            Ok(payload)
        }
        Command::Load {
            name,
            source,
            cache,
        } => {
            // A load that replaces an entry invalidates the open
            // coalescing window parked on the old engine: fail those
            // requests retryably rather than answering from a stale (or
            // torn) entry.
            inner.coalescer.abort(name);
            let entry = inner.catalog.load(name, source)?;
            // Warm-cache seeds (from a `cache_export` on another replica)
            // go in after the build, before the response — the first
            // request this entry serves can already hit.
            let imported = entry.import_cache(cache);
            Ok(vec![
                ("loaded", Json::from(name.as_str())),
                ("nodes", Json::from(entry.num_nodes())),
                ("edges", Json::from(entry.num_edges())),
                ("cache_imported", Json::from(imported)),
            ])
        }
        Command::Burn { ms } => {
            let start = Instant::now();
            let budget = Duration::from_millis(*ms);
            while start.elapsed() < budget {
                std::hint::spin_loop();
            }
            Ok(vec![("burned_ms", Json::from(*ms))])
        }
        // Control-plane commands never reach the queue.
        Command::Stats
        | Command::Metrics
        | Command::Slowlog { .. }
        | Command::Graphs
        | Command::Shard { .. }
        | Command::Reshard { .. }
        | Command::CacheExport { .. }
        | Command::Evict { .. }
        | Command::Ping
        | Command::Shutdown => Err(ServiceError::BadRequest(
            "control command routed to worker pool (server bug)".to_string(),
        )),
    }
}
