//! `mwc-router` — the consistent-hash front-end for sharded serving.
//!
//! ```text
//! mwc-router [--listen ADDR] --shard NAME=ADDR [--shard NAME=ADDR]...
//!            [--replicas R] [--vnodes N] [--fail-threshold N]
//!            [--reprobe-ms N] [--backend-timeout-ms N]
//!
//!   --listen ADDR           bind address (default 127.0.0.1:7070)
//!   --shard NAME=ADDR       a backend mwc-server; repeatable, required.
//!                           NAME is the ring identity (keep it stable
//!                           across restarts), ADDR its host:port.
//!   --replicas R            copies of each graph across the ring
//!                           (default 1; clamped to the shard count).
//!                           Reads pick among replicas and fall through
//!                           on failure; loads/evicts fan out to all.
//!   --vnodes N              virtual nodes per shard (default 64)
//!   --fail-threshold N      consecutive failures before a shard is
//!                           ejected (default 3)
//!   --reprobe-ms N          how often ejected shards are pinged
//!                           (default 500)
//!   --backend-timeout-ms N  read timeout on backend replies
//!                           (default 30000)
//! ```
//!
//! The router speaks the same newline-delimited JSON protocol as
//! `mwc-server` on both sides: point `mwc-client` (or `loadgen
//! --addr`) at it and every graph-addressed command is routed to the
//! shard(s) the ring assigns that graph name to. The ring can be
//! changed live with the `reshard` control command, which streams
//! graph sources and warm solve caches to their new owners before
//! flipping routing. Stop the router with `mwc-client <addr> shutdown`
//! — the backends keep running.

use std::process::ExitCode;
use std::time::Duration;

use mwc_service::router::{self, RouterConfig, ShardSpec};

fn usage() -> ! {
    eprintln!(
        "usage: mwc-router [--listen ADDR] --shard NAME=ADDR [--shard NAME=ADDR]... \
         [--replicas R] [--vnodes N] [--fail-threshold N] [--reprobe-ms N] \
         [--backend-timeout-ms N]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut listen = "127.0.0.1:7070".to_string();
    let mut shards: Vec<ShardSpec> = Vec::new();
    let mut config = RouterConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--listen" => listen = value("--listen"),
            "--shard" => {
                let spec = value("--shard");
                match spec.split_once('=') {
                    Some((name, addr)) if !name.is_empty() && !addr.is_empty() => {
                        shards.push(ShardSpec::new(name, addr));
                    }
                    _ => {
                        eprintln!("--shard expects NAME=ADDR, got {spec:?}");
                        usage();
                    }
                }
            }
            "--replicas" => {
                config.replicas = value("--replicas").parse().unwrap_or_else(|_| usage());
                if config.replicas == 0 {
                    eprintln!("--replicas must be at least 1");
                    usage();
                }
            }
            "--vnodes" => config.vnodes = value("--vnodes").parse().unwrap_or_else(|_| usage()),
            "--fail-threshold" => {
                config.fail_threshold = value("--fail-threshold")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--reprobe-ms" => {
                config.reprobe_interval =
                    Duration::from_millis(value("--reprobe-ms").parse().unwrap_or_else(|_| usage()))
            }
            "--backend-timeout-ms" => {
                config.backend_timeout = Duration::from_millis(
                    value("--backend-timeout-ms")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    if shards.is_empty() {
        eprintln!("at least one --shard NAME=ADDR is required");
        usage();
    }

    let handle = match router::start(shards, config, listen.as_str()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("mwc-router: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ring = handle.ring();
    eprintln!(
        "mwc-router listening on {} ({} shards × {} vnodes, {} replica(s): {}); \
         stop with: mwc-client {} shutdown",
        handle.local_addr(),
        ring.len(),
        ring.vnodes(),
        handle.replicas(),
        ring.shards().join(", "),
        handle.local_addr()
    );
    handle.wait();
    eprintln!("mwc-router: drained and stopped (backends left running)");
    ExitCode::SUCCESS
}
