//! `mwc-server` — serve Minimum Wiener Connector queries over TCP.
//!
//! ```text
//! mwc-server [--listen ADDR] [--graph NAME=SPEC]... [--workers N]
//!            [--queue N] [--cache-bytes N] [--cache-ttl SECS]
//!            [--no-coalesce] [--coalesce-window-us N] [--slowlog-ms N]
//!            [--transport epoll|threads]
//!
//!   --listen ADDR     bind address (default 127.0.0.1:7171)
//!   --graph NAME=SPEC load a graph at startup; repeatable. SPEC is
//!                     karate | standin:<name>[@scale] | file:<path> |
//!                     ba:<n>x<k>   (default: karate=karate)
//!   --empty           start with no graphs at all (shard backends get
//!                     their graphs from mwc-router `load`s; the default
//!                     karate would shadow ring placement in `graphs`)
//!   --workers N       solver worker threads (default: cores, max 8)
//!   --queue N         admission queue capacity (default 64)
//!   --cache-bytes N   per-graph solve-cache byte budget (0 disables
//!                     caching; default: engine default, 16 MiB)
//!   --cache-ttl SECS  per-graph solve-cache time-to-live in (fractional)
//!                     seconds (default: entries live until displaced)
//!   --no-coalesce     disable cross-request solve coalescing (on by
//!                     default; see the README's "Cross-request
//!                     coalescing" section)
//!   --coalesce-window-us N
//!                     coalescing flush window in microseconds
//!                     (default 300)
//!   --slowlog-ms N    slow-query log threshold in milliseconds; any
//!                     request slower than this lands in the `slowlog`
//!                     ring (default 100, 0 logs everything)
//!   --transport T     accept/read/write machinery: `epoll` (one
//!                     nonblocking event-loop thread, pipelining,
//!                     bounded write buffers; linux default) or
//!                     `threads` (one reader thread per connection,
//!                     portable reference path). Also settable via
//!                     MWC_TRANSPORT; the flag wins.
//! ```
//!
//! The process serves until a protocol `shutdown` command arrives
//! (`mwc-client <addr> shutdown`), then drains in-flight work and exits.

use std::process::ExitCode;
use std::sync::Arc;

use mwc_service::{server, Catalog, ServerConfig, Transport};

fn usage() -> ! {
    eprintln!(
        "usage: mwc-server [--listen ADDR] [--graph NAME=SPEC]... [--empty] [--workers N] \
         [--queue N] [--cache-bytes N] [--cache-ttl SECS] [--no-coalesce] \
         [--coalesce-window-us N] [--slowlog-ms N] [--transport epoll|threads]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut listen = "127.0.0.1:7171".to_string();
    let mut graphs: Vec<(String, String)> = Vec::new();
    let mut config = ServerConfig::default();
    let mut cache_bytes: Option<usize> = None;
    let mut cache_ttl: Option<std::time::Duration> = None;
    let mut empty = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--listen" => listen = value("--listen"),
            "--graph" => {
                let spec = value("--graph");
                match spec.split_once('=') {
                    Some((name, source)) => graphs.push((name.to_string(), source.to_string())),
                    None => {
                        eprintln!("--graph expects NAME=SPEC, got {spec:?}");
                        usage();
                    }
                }
            }
            "--workers" => config.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => {
                config.queue_capacity = value("--queue").parse().unwrap_or_else(|_| usage())
            }
            "--cache-bytes" => {
                cache_bytes = Some(value("--cache-bytes").parse().unwrap_or_else(|_| usage()))
            }
            "--cache-ttl" => {
                let secs: f64 = value("--cache-ttl").parse().unwrap_or_else(|_| usage());
                if !(secs > 0.0 && secs.is_finite()) {
                    eprintln!("--cache-ttl must be a positive number of seconds");
                    usage();
                }
                cache_ttl = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--no-coalesce" => config.coalesce.enabled = false,
            "--coalesce-window-us" => {
                let us: u64 = value("--coalesce-window-us")
                    .parse()
                    .unwrap_or_else(|_| usage());
                config.coalesce.window = std::time::Duration::from_micros(us);
            }
            "--slowlog-ms" => {
                let ms: u64 = value("--slowlog-ms").parse().unwrap_or_else(|_| usage());
                config.slowlog_threshold = std::time::Duration::from_millis(ms);
            }
            "--transport" => {
                config.transport = match value("--transport").as_str() {
                    "epoll" => Transport::Epoll,
                    "threads" => Transport::Threads,
                    other => {
                        eprintln!("--transport expects epoll or threads, got {other:?}");
                        usage();
                    }
                }
            }
            "--empty" => empty = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    if empty && !graphs.is_empty() {
        eprintln!("--empty contradicts --graph");
        usage();
    }
    if graphs.is_empty() && !empty {
        graphs.push(("karate".to_string(), "karate".to_string()));
    }

    let mut catalog = Catalog::new();
    if let Some(bytes) = cache_bytes {
        catalog = catalog.with_solve_cache_bytes(bytes);
    }
    if let Some(ttl) = cache_ttl {
        catalog = catalog.with_solve_cache_ttl(ttl);
    }
    let catalog = Arc::new(catalog);
    for (name, spec) in &graphs {
        eprint!("loading {name} from {spec} ... ");
        match catalog.load(name, spec) {
            Ok(entry) => eprintln!(
                "{} nodes, {} edges, engine ready",
                entry.num_nodes(),
                entry.num_edges()
            ),
            Err(e) => {
                eprintln!("failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let transport = config.transport;
    let handle = match server::start(catalog, config, listen.as_str()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "mwc-server listening on {} ({} graphs, {} transport); stop with: mwc-client {} shutdown",
        handle.local_addr(),
        handle.catalog().len(),
        match transport {
            Transport::Epoll => "epoll",
            Transport::Threads => "threads",
        },
        handle.local_addr()
    );
    handle.wait();
    eprintln!("mwc-server: drained and stopped");
    ExitCode::SUCCESS
}
