//! `mwc-client` — command-line client for `mwc-server`.
//!
//! ```text
//! mwc-client ADDR solve GRAPH SOLVER V,V,...  [--deadline-ms N]
//!                                             [--max-size N] [--json]
//! mwc-client ADDR batch GRAPH SOLVER V,V/V,V/... [--deadline-ms N] [--json]
//! mwc-client ADDR graphs
//! mwc-client ADDR stats
//! mwc-client ADDR load NAME SPEC
//! mwc-client ADDR evict NAME
//! mwc-client ADDR ping
//! mwc-client ADDR shutdown
//! ```
//!
//! Reports print through `SolveReport`'s uniform renderers: the
//! one-line human form by default, the JSON object form with `--json`.

use std::process::ExitCode;

use mwc_core::SolveReport;
use mwc_graph::NodeId;
use mwc_service::{Client, WireReport};

fn usage() -> ! {
    eprintln!(
        "usage: mwc-client ADDR <solve GRAPH SOLVER V,V,.. | batch GRAPH SOLVER V,V/V,V/.. |\n\
         \x20                 graphs | stats | load NAME SPEC | evict NAME | ping | shutdown>\n\
         \x20      [--deadline-ms N] [--max-size N] [--json]"
    );
    std::process::exit(2);
}

fn parse_query(text: &str) -> Vec<NodeId> {
    text.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.trim().parse().unwrap_or_else(|_| {
                eprintln!("bad vertex id {t:?}");
                usage()
            })
        })
        .collect()
}

/// Re-inflate the wire report into a [`SolveReport`] so both output
/// modes go through the core renderers instead of ad-hoc formatting.
fn print_report(graph: &str, r: &WireReport, json: bool) {
    let report = SolveReport {
        solver: r.solver.clone(),
        connector: mwc_core::Connector::from_vertices(r.connector.clone()),
        wiener_index: r.wiener_index,
        seconds: r.seconds,
        candidates: r.candidates,
        optimal: r.optimal,
    };
    if json {
        println!("{}", report.to_json());
    } else {
        println!("[{graph}] {}", report.render_text());
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut deadline_ms: Option<u64> = None;
    let mut max_size: Option<usize> = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deadline-ms" => {
                i += 1;
                deadline_ms = args.get(i).and_then(|v| v.parse().ok());
                if deadline_ms.is_none() {
                    usage();
                }
            }
            "--max-size" => {
                i += 1;
                max_size = args.get(i).and_then(|v| v.parse().ok());
                if max_size.is_none() {
                    usage();
                }
            }
            "--json" => json = true,
            "--help" | "-h" => usage(),
            other => positional.push(other),
        }
        i += 1;
    }
    if positional.len() < 2 {
        usage();
    }
    let addr = positional[0];
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let outcome = (|| -> mwc_service::client::Result<()> {
        match positional[1] {
            "solve" if positional.len() == 5 => {
                let (graph, solver) = (positional[2], positional[3]);
                let q = parse_query(positional[4]);
                let r = client.solve(graph, solver, &q, deadline_ms, max_size)?;
                print_report(graph, &r, json);
            }
            "batch" if positional.len() == 5 => {
                let (graph, solver) = (positional[2], positional[3]);
                let queries: Vec<Vec<NodeId>> = positional[4].split('/').map(parse_query).collect();
                let results = client.batch(graph, solver, &queries, deadline_ms, max_size)?;
                for (q, r) in queries.iter().zip(results) {
                    match r {
                        Ok(report) => print_report(graph, &report, json),
                        Err(e) => eprintln!("[{graph}] query {q:?} failed: {e}"),
                    }
                }
            }
            "graphs" => {
                for g in client.graphs()? {
                    println!(
                        "{:<16} {:>9} nodes {:>10} edges  source {}  solvers [{}]",
                        g.name,
                        g.nodes,
                        g.edges,
                        g.source,
                        g.solvers.join(", ")
                    );
                }
            }
            "stats" => println!("{}", client.stats()?),
            "load" if positional.len() == 4 => {
                let (nodes, edges) = client.load(positional[2], positional[3])?;
                println!("loaded {} ({nodes} nodes, {edges} edges)", positional[2]);
            }
            "evict" if positional.len() == 3 => {
                println!("evicted: {}", client.evict(positional[2])?);
            }
            "ping" => {
                client.ping()?;
                println!("pong");
            }
            "shutdown" => {
                client.shutdown()?;
                println!("server draining");
            }
            _ => usage(),
        }
        Ok(())
    })();

    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
