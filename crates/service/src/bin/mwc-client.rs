//! `mwc-client` — command-line client for `mwc-server`.
//!
//! ```text
//! mwc-client ADDR solve GRAPH SOLVER V,V,...  [--deadline-ms N]
//!                                             [--max-size N] [--json]
//!                                             [--trace]
//! mwc-client ADDR batch GRAPH SOLVER V,V/V,V/... [--deadline-ms N] [--json]
//! mwc-client ADDR graphs
//! mwc-client ADDR stats
//! mwc-client ADDR metrics
//! mwc-client ADDR slowlog [--limit N]
//! mwc-client ADDR load NAME SPEC
//! mwc-client ADDR evict NAME
//! mwc-client ADDR ping
//! mwc-client ADDR shutdown
//! ```
//!
//! Reports print through `SolveReport`'s uniform renderers: the
//! one-line human form by default, the JSON object form with `--json`.
//! `--trace` asks the server to record a span tree for the solve and
//! pretty-prints it after the report (or, with `--json`, emits the raw
//! tree object on a second line). `metrics` prints the Prometheus text
//! exposition verbatim; `slowlog` prints one line per slow request,
//! newest first.

use std::process::ExitCode;

use mwc_core::SolveReport;
use mwc_graph::NodeId;
use mwc_service::{Client, WireReport};

fn usage() -> ! {
    eprintln!(
        "usage: mwc-client ADDR <solve GRAPH SOLVER V,V,.. | batch GRAPH SOLVER V,V/V,V/.. |\n\
         \x20                 graphs | stats | metrics | slowlog | load NAME SPEC |\n\
         \x20                 evict NAME | ping | shutdown>\n\
         \x20      [--deadline-ms N] [--max-size N] [--json] [--trace] [--limit N]"
    );
    std::process::exit(2);
}

fn parse_query(text: &str) -> Vec<NodeId> {
    text.split(',')
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.trim().parse().unwrap_or_else(|_| {
                eprintln!("bad vertex id {t:?}");
                usage()
            })
        })
        .collect()
}

/// Re-inflate the wire report into a [`SolveReport`] so both output
/// modes go through the core renderers instead of ad-hoc formatting.
fn print_report(graph: &str, r: &WireReport, json: bool) {
    let report = SolveReport {
        solver: r.solver.clone(),
        connector: mwc_core::Connector::from_vertices(r.connector.clone()),
        wiener_index: r.wiener_index,
        seconds: r.seconds,
        candidates: r.candidates,
        optimal: r.optimal,
    };
    if json {
        println!("{}", report.to_json());
    } else {
        println!("[{graph}] {}", report.render_text());
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut deadline_ms: Option<u64> = None;
    let mut max_size: Option<usize> = None;
    let mut json = false;
    let mut trace = false;
    let mut limit: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deadline-ms" => {
                i += 1;
                deadline_ms = args.get(i).and_then(|v| v.parse().ok());
                if deadline_ms.is_none() {
                    usage();
                }
            }
            "--max-size" => {
                i += 1;
                max_size = args.get(i).and_then(|v| v.parse().ok());
                if max_size.is_none() {
                    usage();
                }
            }
            "--limit" => {
                i += 1;
                limit = args.get(i).and_then(|v| v.parse().ok());
                if limit.is_none() {
                    usage();
                }
            }
            "--json" => json = true,
            "--trace" => trace = true,
            "--help" | "-h" => usage(),
            other => positional.push(other),
        }
        i += 1;
    }
    if positional.len() < 2 {
        usage();
    }
    let addr = positional[0];
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let outcome = (|| -> mwc_service::client::Result<()> {
        match positional[1] {
            "solve" if positional.len() == 5 => {
                let (graph, solver) = (positional[2], positional[3]);
                let q = parse_query(positional[4]);
                if trace {
                    let (r, tree) =
                        client.solve_traced(graph, solver, &q, deadline_ms, max_size, false)?;
                    print_report(graph, &r, json);
                    match tree {
                        Some(t) if json => println!("{t}"),
                        Some(t) => print!("{}", mwc_service::trace::render_span_tree(&t)),
                        None => eprintln!("server returned no trace"),
                    }
                } else {
                    let r = client.solve(graph, solver, &q, deadline_ms, max_size)?;
                    print_report(graph, &r, json);
                }
            }
            "batch" if positional.len() == 5 => {
                let (graph, solver) = (positional[2], positional[3]);
                let queries: Vec<Vec<NodeId>> = positional[4].split('/').map(parse_query).collect();
                let results = client.batch(graph, solver, &queries, deadline_ms, max_size)?;
                for (q, r) in queries.iter().zip(results) {
                    match r {
                        Ok(report) => print_report(graph, &report, json),
                        Err(e) => eprintln!("[{graph}] query {q:?} failed: {e}"),
                    }
                }
            }
            "graphs" => {
                for g in client.graphs()? {
                    println!(
                        "{:<16} {:>9} nodes {:>10} edges  source {}  solvers [{}]",
                        g.name,
                        g.nodes,
                        g.edges,
                        g.source,
                        g.solvers.join(", ")
                    );
                }
            }
            "stats" => println!("{}", client.stats()?),
            "metrics" => print!("{}", client.metrics_text()?),
            "slowlog" => {
                let entries = client.slowlog(limit)?;
                if entries.is_empty() {
                    println!("slowlog empty");
                }
                for e in entries {
                    if json {
                        println!("{e}");
                        continue;
                    }
                    let field = |k: &str| {
                        e.get(k)
                            .map(|v| match v {
                                mwc_service::json::Json::Str(s) => s.clone(),
                                other => other.to_string(),
                            })
                            .unwrap_or_else(|| "-".to_string())
                    };
                    println!(
                        "#{:<6} {:>9}ms  {:<6} graph={} solver={} ok={} trace_id={} ({}s ago)",
                        field("seq"),
                        field("total_ms"),
                        field("cmd"),
                        field("graph"),
                        field("solver"),
                        field("ok"),
                        field("trace_id"),
                        field("age_s"),
                    );
                }
            }
            "load" if positional.len() == 4 => {
                let (nodes, edges) = client.load(positional[2], positional[3])?;
                println!("loaded {} ({nodes} nodes, {edges} edges)", positional[2]);
            }
            "evict" if positional.len() == 3 => {
                println!("evicted: {}", client.evict(positional[2])?);
            }
            "ping" => {
                client.ping()?;
                println!("pong");
            }
            "shutdown" => {
                client.shutdown()?;
                println!("server draining");
            }
            _ => usage(),
        }
        Ok(())
    })();

    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
