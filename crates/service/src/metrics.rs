//! In-process serving metrics: request counters, queue gauges, and
//! per-solver latency histograms, all lock-free on the hot path.
//!
//! Latencies go into log₂-bucketed histograms (bucket *i* counts solves
//! that took `< 2^i` µs), so a quantile is read by walking at most 40
//! buckets — no per-request allocation, no sorting, bounded error of at
//! most one octave. The `stats` protocol command serializes a
//! [`MetricsSnapshot`] of all of this.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use crate::json::Json;

const BUCKETS: usize = 40; // 2^39 µs ≈ 6.4 days: nothing overflows this

/// A log₂ latency histogram (microsecond resolution).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        let idx = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_micros.load(Ordering::Relaxed) as f64 / n as f64 / 1e3
        }
    }

    /// Approximate `q`-quantile in milliseconds (`q` in `[0, 1]`): the
    /// upper bound of the bucket holding the rank, so the true value is
    /// within one power of two below the reported one. 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return (1u64 << i) as f64 / 1e3;
            }
        }
        self.max_ms()
    }

    /// Largest observation in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max_micros.load(Ordering::Relaxed) as f64 / 1e3
    }
}

/// The server's metrics registry. Cheap to share (`Arc<Metrics>`); every
/// mutation is a relaxed atomic.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Request lines received (valid or not).
    pub requests_total: AtomicU64,
    /// Successful (`"ok":true`) responses written.
    pub ok_total: AtomicU64,
    /// Error responses written (all codes, including overload).
    pub error_total: AtomicU64,
    /// Requests shed by admission control.
    pub overload_total: AtomicU64,
    /// Lines that failed to parse into a request.
    pub bad_request_total: AtomicU64,
    /// Requests whose deadline expired while queued.
    pub queue_deadline_total: AtomicU64,
    /// Current admission-queue depth (maintained by the queue).
    pub queue_depth: AtomicU64,
    /// High-water mark of the admission queue.
    pub queue_peak: AtomicU64,
    /// Connections accepted.
    pub connections_total: AtomicU64,
    solver_latency: RwLock<HashMap<String, Arc<Histogram>>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            ok_total: AtomicU64::new(0),
            error_total: AtomicU64::new(0),
            overload_total: AtomicU64::new(0),
            bad_request_total: AtomicU64::new(0),
            queue_deadline_total: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            solver_latency: RwLock::new(HashMap::new()),
        }
    }
}

impl Metrics {
    /// A fresh registry (uptime starts now).
    pub fn new() -> Self {
        Self::default()
    }

    /// The latency histogram for `solver`, created on first use.
    pub fn solver_histogram(&self, solver: &str) -> Arc<Histogram> {
        if let Some(h) = self
            .solver_latency
            .read()
            .expect("metrics lock poisoned")
            .get(solver)
        {
            return Arc::clone(h);
        }
        let mut map = self.solver_latency.write().expect("metrics lock poisoned");
        Arc::clone(
            map.entry(solver.to_string())
                .or_insert_with(|| Arc::new(Histogram::default())),
        )
    }

    /// Records one solve latency under `solver`.
    pub fn record_solve(&self, solver: &str, latency: Duration) {
        self.solver_histogram(solver).record(latency);
    }

    /// Serializes everything as the `stats` response payload.
    pub fn snapshot(&self, queue_capacity: usize) -> Json {
        let load = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed));
        let solvers = {
            let map = self.solver_latency.read().expect("metrics lock poisoned");
            let mut entries: Vec<(String, Json)> = map
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        Json::obj([
                            ("count", Json::from(h.count())),
                            ("mean_ms", Json::from(h.mean_ms())),
                            ("p50_ms", Json::from(h.quantile_ms(0.50))),
                            ("p99_ms", Json::from(h.quantile_ms(0.99))),
                            ("max_ms", Json::from(h.max_ms())),
                        ]),
                    )
                })
                .collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            Json::Obj(entries.into_iter().collect())
        };
        Json::obj([
            (
                "uptime_seconds",
                Json::from(self.started.elapsed().as_secs_f64()),
            ),
            (
                "requests",
                Json::obj([
                    ("total", load(&self.requests_total)),
                    ("ok", load(&self.ok_total)),
                    ("error", load(&self.error_total)),
                    ("overloaded", load(&self.overload_total)),
                    ("bad_request", load(&self.bad_request_total)),
                    ("queue_deadline", load(&self.queue_deadline_total)),
                ]),
            ),
            (
                "queue",
                Json::obj([
                    ("depth", load(&self.queue_depth)),
                    ("peak", load(&self.queue_peak)),
                    ("capacity", Json::from(queue_capacity)),
                ]),
            ),
            ("connections", load(&self.connections_total)),
            ("solvers", solvers),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = Histogram::default();
        for ms in [1u64, 2, 4, 100] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 4);
        assert!(h.mean_ms() > 20.0 && h.mean_ms() < 30.0);
        // p50 lands in the bucket of the 2nd observation (2 ms → < 2^11 µs).
        let p50 = h.quantile_ms(0.5);
        assert!((2.0..=4.1).contains(&p50), "{p50}");
        // p99 lands in the top observation's bucket.
        let p99 = h.quantile_ms(0.99);
        assert!((100.0..=262.2).contains(&p99), "{p99}");
        assert!((h.max_ms() - 100.0).abs() < 1.0);
        assert_eq!(Histogram::default().quantile_ms(0.5), 0.0);
    }

    #[test]
    fn snapshot_shape() {
        let m = Metrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.record_solve("ws-q", Duration::from_millis(5));
        m.record_solve("ws-q", Duration::from_millis(7));
        m.record_solve("st", Duration::from_micros(300));
        let snap = m.snapshot(64);
        assert_eq!(
            snap.get("requests").unwrap().get("total").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(
            snap.get("queue").unwrap().get("capacity").unwrap().as_u64(),
            Some(64)
        );
        let solvers = snap.get("solvers").unwrap();
        assert_eq!(
            solvers.get("ws-q").unwrap().get("count").unwrap().as_u64(),
            Some(2)
        );
        assert!(
            solvers
                .get("st")
                .unwrap()
                .get("p99_ms")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        // Serializes cleanly.
        let text = snap.to_string();
        assert!(crate::json::parse(&text).is_ok());
    }
}
