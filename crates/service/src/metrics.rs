//! In-process serving metrics: request counters, queue gauges, and
//! per-solver latency histograms, all lock-free on the hot path.
//!
//! Latencies go into log₂-bucketed histograms (bucket *i* counts solves
//! that took `< 2^i` µs), so a quantile is read by walking at most 40
//! buckets — no per-request allocation, no sorting, bounded error of at
//! most one octave. The `stats` protocol command serializes a
//! [`MetricsSnapshot`] of all of this.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use crate::json::Json;

const BUCKETS: usize = 40; // 2^39 µs ≈ 6.4 days: nothing overflows this

/// A log₂ latency histogram (microsecond resolution).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        let idx = (64 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_micros.load(Ordering::Relaxed) as f64 / n as f64 / 1e3
        }
    }

    /// Approximate `q`-quantile in milliseconds (`q` in `[0, 1]`): the
    /// upper bound of the bucket holding the rank, so the true value is
    /// within one power of two below the reported one. 0 when empty.
    /// Ranks landing in the final (overflow) bucket report
    /// [`Self::max_ms`] — that bucket has no meaningful upper bound.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                if i == BUCKETS - 1 {
                    break; // overflow bucket: fall through to max
                }
                return (1u64 << i) as f64 / 1e3;
            }
        }
        self.max_ms()
    }

    /// Largest observation in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max_micros.load(Ordering::Relaxed) as f64 / 1e3
    }

    /// Total of all observations in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Per-bucket observation counts (not cumulative). Bucket `i ≥ 1`
    /// holds observations in `[2^(i-1), 2^i)` µs; bucket 0 holds `0 µs`;
    /// the final bucket absorbs everything `≥ 2^38` µs. Feeds the
    /// Prometheus exposition, which emits the *cumulative* form.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// Number of log₂ buckets per [`Histogram`] (also the length of
/// [`Histogram::bucket_counts`]).
pub const HISTOGRAM_BUCKETS: usize = BUCKETS;

/// The server's metrics registry. Cheap to share (`Arc<Metrics>`); every
/// mutation is a relaxed atomic.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Request lines received (valid or not).
    pub requests_total: AtomicU64,
    /// Successful (`"ok":true`) responses written.
    pub ok_total: AtomicU64,
    /// Error responses written (all codes, including overload).
    pub error_total: AtomicU64,
    /// Requests shed by admission control.
    pub overload_total: AtomicU64,
    /// Lines that failed to parse into a request.
    pub bad_request_total: AtomicU64,
    /// Requests whose deadline expired while queued.
    pub queue_deadline_total: AtomicU64,
    /// Current admission-queue depth (maintained by the queue).
    pub queue_depth: AtomicU64,
    /// High-water mark of the admission queue.
    pub queue_peak: AtomicU64,
    /// Connections accepted.
    pub connections_total: AtomicU64,
    /// Connections currently open. Authoritative from the owning
    /// transport: the epoll loop's connection table, or the threaded
    /// acceptor (incremented at accept, decremented at reader exit) —
    /// both count at the same instant, so the gauge reads identically
    /// whichever transport serves.
    pub connections_live: AtomicU64,
    /// Clients disconnected because their outbound backlog crossed the
    /// write-buffer cap (epoll transport backpressure).
    pub slow_client_disconnects: AtomicU64,
    /// Event-loop `epoll_wait` returns (epoll transport).
    pub loop_wakeups: AtomicU64,
    /// Readiness events the event loop has dispatched (epoll transport).
    pub loop_events: AtomicU64,
    /// High-water mark of in-flight pipelined requests on any single
    /// connection (epoll transport).
    pub pipeline_peak: AtomicU64,
    solver_latency: RwLock<HashMap<String, Arc<Histogram>>>,
    /// Always-on per-stage duration histograms (`admission`, `solve`,
    /// `serialize`, `write`, …) — the aggregate view of the same stages
    /// the request tracer records per request.
    stage_latency: RwLock<HashMap<&'static str, Arc<Histogram>>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            ok_total: AtomicU64::new(0),
            error_total: AtomicU64::new(0),
            overload_total: AtomicU64::new(0),
            bad_request_total: AtomicU64::new(0),
            queue_deadline_total: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            connections_live: AtomicU64::new(0),
            slow_client_disconnects: AtomicU64::new(0),
            loop_wakeups: AtomicU64::new(0),
            loop_events: AtomicU64::new(0),
            pipeline_peak: AtomicU64::new(0),
            solver_latency: RwLock::new(HashMap::new()),
            stage_latency: RwLock::new(HashMap::new()),
        }
    }
}

impl Metrics {
    /// A fresh registry (uptime starts now).
    pub fn new() -> Self {
        Self::default()
    }

    /// The latency histogram for `solver`, created on first use.
    pub fn solver_histogram(&self, solver: &str) -> Arc<Histogram> {
        if let Some(h) = self
            .solver_latency
            .read()
            .expect("metrics lock poisoned")
            .get(solver)
        {
            return Arc::clone(h);
        }
        let mut map = self.solver_latency.write().expect("metrics lock poisoned");
        Arc::clone(
            map.entry(solver.to_string())
                .or_insert_with(|| Arc::new(Histogram::default())),
        )
    }

    /// Records one solve latency under `solver`.
    pub fn record_solve(&self, solver: &str, latency: Duration) {
        self.solver_histogram(solver).record(latency);
    }

    /// The duration histogram for a pipeline stage, created on first use.
    pub fn stage_histogram(&self, stage: &'static str) -> Arc<Histogram> {
        if let Some(h) = self
            .stage_latency
            .read()
            .expect("metrics lock poisoned")
            .get(stage)
        {
            return Arc::clone(h);
        }
        let mut map = self.stage_latency.write().expect("metrics lock poisoned");
        Arc::clone(
            map.entry(stage)
                .or_insert_with(|| Arc::new(Histogram::default())),
        )
    }

    /// Records one stage duration (`admission`, `serialize`, `write`, …).
    pub fn record_stage(&self, stage: &'static str, latency: Duration) {
        self.stage_histogram(stage).record(latency);
    }

    fn histogram_section<K: AsRef<str>>(map: &HashMap<K, Arc<Histogram>>) -> Json {
        let mut entries: Vec<(String, Json)> = map
            .iter()
            .map(|(name, h)| {
                (
                    name.as_ref().to_string(),
                    Json::obj([
                        ("count", Json::from(h.count())),
                        ("mean_ms", Json::from(h.mean_ms())),
                        ("p50_ms", Json::from(h.quantile_ms(0.50))),
                        ("p99_ms", Json::from(h.quantile_ms(0.99))),
                        ("max_ms", Json::from(h.max_ms())),
                    ]),
                )
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Obj(entries.into_iter().collect())
    }

    /// Serializes everything as the `stats` response payload.
    pub fn snapshot(&self, queue_capacity: usize) -> Json {
        let load = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed));
        let solvers =
            Self::histogram_section(&self.solver_latency.read().expect("metrics lock poisoned"));
        let stages =
            Self::histogram_section(&self.stage_latency.read().expect("metrics lock poisoned"));
        Json::obj([
            (
                "uptime_seconds",
                Json::from(self.started.elapsed().as_secs_f64()),
            ),
            (
                "requests",
                Json::obj([
                    ("total", load(&self.requests_total)),
                    ("ok", load(&self.ok_total)),
                    ("error", load(&self.error_total)),
                    ("overloaded", load(&self.overload_total)),
                    ("bad_request", load(&self.bad_request_total)),
                    ("queue_deadline", load(&self.queue_deadline_total)),
                ]),
            ),
            (
                "queue",
                Json::obj([
                    ("depth", load(&self.queue_depth)),
                    ("peak", load(&self.queue_peak)),
                    ("capacity", Json::from(queue_capacity)),
                ]),
            ),
            ("connections", load(&self.connections_total)),
            (
                "process",
                Json::obj([
                    ("uptime_s", Json::from(self.started.elapsed().as_secs_f64())),
                    ("connections_live", load(&self.connections_live)),
                    ("queue_depth", load(&self.queue_depth)),
                ]),
            ),
            (
                "event_loop",
                Json::obj([
                    ("wakeups", load(&self.loop_wakeups)),
                    ("events", load(&self.loop_events)),
                    ("pipeline_peak", load(&self.pipeline_peak)),
                    (
                        "slow_client_disconnects",
                        load(&self.slow_client_disconnects),
                    ),
                ]),
            ),
            ("solvers", solvers),
            ("stages", stages),
        ])
    }

    /// Prometheus-style text exposition of every counter, gauge, and
    /// histogram: the `metrics` protocol command's payload. Histograms
    /// use the standard cumulative-bucket form (`le` in seconds,
    /// `+Inf` = count) over the log₂ bucket bounds, so any scraper can
    /// reconstruct the same quantile estimates `stats` reports.
    pub fn render_prometheus(&self, queue_capacity: usize) -> String {
        let mut out = String::with_capacity(4096);
        let mut counter = |name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        let l = |c: &AtomicU64| c.load(Ordering::Relaxed);
        counter(
            "mwc_requests_total",
            "Request lines received (valid or not).",
            l(&self.requests_total),
        );
        counter(
            "mwc_responses_ok_total",
            "Successful responses.",
            l(&self.ok_total),
        );
        counter(
            "mwc_responses_error_total",
            "Error responses.",
            l(&self.error_total),
        );
        counter(
            "mwc_overload_total",
            "Requests shed by admission control.",
            l(&self.overload_total),
        );
        counter(
            "mwc_bad_request_total",
            "Lines that failed to parse.",
            l(&self.bad_request_total),
        );
        counter(
            "mwc_queue_deadline_total",
            "Requests whose deadline expired while queued.",
            l(&self.queue_deadline_total),
        );
        counter(
            "mwc_connections_total",
            "Connections accepted.",
            l(&self.connections_total),
        );
        counter(
            "mwc_slow_client_disconnects_total",
            "Clients disconnected at the write-buffer byte cap.",
            l(&self.slow_client_disconnects),
        );
        counter(
            "mwc_loop_wakeups_total",
            "Event-loop epoll_wait returns.",
            l(&self.loop_wakeups),
        );
        counter(
            "mwc_loop_events_total",
            "Readiness events dispatched by the event loop.",
            l(&self.loop_events),
        );
        let mut gauge = |name: &str, help: &str, v: f64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        gauge(
            "mwc_uptime_seconds",
            "Seconds since the metrics registry was created.",
            self.started.elapsed().as_secs_f64(),
        );
        gauge(
            "mwc_connections_live",
            "Connections currently open.",
            l(&self.connections_live) as f64,
        );
        gauge(
            "mwc_queue_depth",
            "Current admission-queue depth.",
            l(&self.queue_depth) as f64,
        );
        gauge(
            "mwc_queue_peak",
            "High-water mark of the admission queue.",
            l(&self.queue_peak) as f64,
        );
        gauge(
            "mwc_queue_capacity",
            "Configured admission-queue capacity.",
            queue_capacity as f64,
        );
        gauge(
            "mwc_pipeline_peak",
            "High-water mark of in-flight pipelined requests on one connection.",
            l(&self.pipeline_peak) as f64,
        );
        {
            let map = self.solver_latency.read().expect("metrics lock poisoned");
            let mut names: Vec<&String> = map.keys().collect();
            names.sort();
            out.push_str(
                "# HELP mwc_solve_duration_seconds Solve latency by solver.\n\
                 # TYPE mwc_solve_duration_seconds histogram\n",
            );
            for name in names {
                let h = &map[name];
                render_histogram(&mut out, "mwc_solve_duration_seconds", "solver", name, h);
            }
        }
        {
            let map = self.stage_latency.read().expect("metrics lock poisoned");
            let mut names: Vec<&&'static str> = map.keys().collect();
            names.sort();
            out.push_str(
                "# HELP mwc_stage_duration_seconds Pipeline stage duration by stage.\n\
                 # TYPE mwc_stage_duration_seconds histogram\n",
            );
            for name in names {
                let h = &map[*name];
                render_histogram(&mut out, "mwc_stage_duration_seconds", "stage", name, h);
            }
        }
        out
    }
}

/// Emits one histogram series in cumulative Prometheus form. Bucket `i`
/// of the log₂ histogram counts observations `< 2^i` µs once
/// accumulated, so `le` bounds are `2^i / 1e6` seconds; the overflow
/// bucket only feeds `+Inf`. Empty trailing buckets are elided (the
/// `+Inf` sample always carries the total).
fn render_histogram(out: &mut String, name: &str, label: &str, value: &str, h: &Histogram) {
    let counts = h.bucket_counts();
    let last = counts
        .iter()
        .rposition(|&c| c > 0)
        .map(|i| i.min(HISTOGRAM_BUCKETS - 2))
        .unwrap_or(0);
    let mut cum = 0u64;
    for (i, &c) in counts.iter().take(last + 1).enumerate() {
        cum += c;
        let le = (1u64 << i) as f64 / 1e6;
        out.push_str(&format!(
            "{name}_bucket{{{label}=\"{value}\",le=\"{le}\"}} {cum}\n"
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{{{label}=\"{value}\",le=\"+Inf\"}} {}\n",
        h.count()
    ));
    out.push_str(&format!(
        "{name}_sum{{{label}=\"{value}\"}} {}\n",
        h.sum_us() as f64 / 1e6
    ));
    out.push_str(&format!(
        "{name}_count{{{label}=\"{value}\"}} {}\n",
        h.count()
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = Histogram::default();
        for ms in [1u64, 2, 4, 100] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 4);
        assert!(h.mean_ms() > 20.0 && h.mean_ms() < 30.0);
        // p50 lands in the bucket of the 2nd observation (2 ms → < 2^11 µs).
        let p50 = h.quantile_ms(0.5);
        assert!((2.0..=4.1).contains(&p50), "{p50}");
        // p99 lands in the top observation's bucket.
        let p99 = h.quantile_ms(0.99);
        assert!((100.0..=262.2).contains(&p99), "{p99}");
        assert!((h.max_ms() - 100.0).abs() < 1.0);
        assert_eq!(Histogram::default().quantile_ms(0.5), 0.0);
    }

    #[test]
    fn empty_histogram_reports_zero_everywhere() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.max_ms(), 0.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ms(q), 0.0, "q={q}");
        }
    }

    #[test]
    fn single_sample_mean_equals_the_sample() {
        let h = Histogram::default();
        h.record(Duration::from_micros(1500));
        assert_eq!(h.count(), 1);
        assert!((h.mean_ms() - 1.5).abs() < 1e-9);
        assert!((h.max_ms() - 1.5).abs() < 1e-9);
        // Every quantile of one sample is that sample's bucket bound.
        let p50 = h.quantile_ms(0.5);
        assert!((1.5..=2.049).contains(&p50), "{p50}");
    }

    #[test]
    fn overflow_bucket_quantile_reports_max_not_bucket_bound() {
        let h = Histogram::default();
        // 2^38 µs ≈ 76 h lands in the final (overflow) bucket, whose
        // power-of-two "upper bound" is meaningless.
        let big = Duration::from_micros(1 << 38);
        h.record(big);
        let expect_ms = (1u64 << 38) as f64 / 1e3;
        assert!((h.max_ms() - expect_ms).abs() < 1.0);
        assert!((h.quantile_ms(0.5) - expect_ms).abs() < 1.0);
        assert!((h.quantile_ms(1.0) - expect_ms).abs() < 1.0);
    }

    #[test]
    fn prometheus_exposition_is_consistent_with_counters() {
        let m = Metrics::new();
        m.requests_total.fetch_add(7, Ordering::Relaxed);
        m.connections_live.fetch_add(2, Ordering::Relaxed);
        m.record_solve("ws-q", Duration::from_millis(3));
        m.record_stage("write", Duration::from_micros(40));
        let text = m.render_prometheus(64);
        assert!(text.contains("mwc_requests_total 7"));
        assert!(text.contains("mwc_connections_live 2"));
        assert!(text.contains("mwc_queue_capacity 64"));
        assert!(text.contains("mwc_solve_duration_seconds_count{solver=\"ws-q\"} 1"));
        assert!(text.contains("mwc_solve_duration_seconds_bucket{solver=\"ws-q\",le=\"+Inf\"} 1"));
        assert!(text.contains("mwc_stage_duration_seconds_count{stage=\"write\"} 1"));
        // Cumulative buckets never decrease and end at the count.
        let mut prev = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("mwc_solve_duration_seconds_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "{line}");
            prev = v;
        }
        assert_eq!(prev, 1);
    }

    #[test]
    fn snapshot_carries_process_gauges_and_stages() {
        let m = Metrics::new();
        m.connections_live.fetch_add(3, Ordering::Relaxed);
        m.record_stage("admission", Duration::from_micros(10));
        let snap = m.snapshot(8);
        let process = snap.get("process").unwrap();
        assert_eq!(process.get("connections_live").unwrap().as_u64(), Some(3));
        assert!(process.get("uptime_s").unwrap().as_f64().unwrap() >= 0.0);
        assert_eq!(process.get("queue_depth").unwrap().as_u64(), Some(0));
        let stages = snap.get("stages").unwrap();
        assert_eq!(
            stages
                .get("admission")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn snapshot_shape() {
        let m = Metrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.record_solve("ws-q", Duration::from_millis(5));
        m.record_solve("ws-q", Duration::from_millis(7));
        m.record_solve("st", Duration::from_micros(300));
        let snap = m.snapshot(64);
        assert_eq!(
            snap.get("requests").unwrap().get("total").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(
            snap.get("queue").unwrap().get("capacity").unwrap().as_u64(),
            Some(64)
        );
        let solvers = snap.get("solvers").unwrap();
        assert_eq!(
            solvers.get("ws-q").unwrap().get("count").unwrap().as_u64(),
            Some(2)
        );
        assert!(
            solvers
                .get("st")
                .unwrap()
                .get("p99_ms")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        // Serializes cleanly.
        let text = snap.to_string();
        assert!(crate::json::parse(&text).is_ok());
    }
}
