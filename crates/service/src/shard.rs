//! Consistent hashing: the ring that decides which shard owns a graph.
//!
//! The sharded serving tier (`mwc-router` in front of N `mwc-server`
//! processes) partitions the catalog **by graph name**: every request
//! that names a graph (`solve`, `batch` entries, `load`, `evict`) is
//! routed to the one shard the ring assigns that name to. Consistent
//! hashing with virtual nodes gives the three properties the tier needs:
//!
//! * **Determinism** — the assignment is a pure function of the shard
//!   names and the vnode count, so every router replica (and any client
//!   that wants to predict placement) computes the same ring. No
//!   coordination service, no persisted assignment table.
//! * **Balance** — each shard is hashed into `vnodes` points on a `u64`
//!   ring; a graph name lands on the first point clockwise of its own
//!   hash. More vnodes → smoother split of the key space.
//! * **Minimal disruption** — adding a shard only inserts new points:
//!   a key either keeps its owner or moves to the *new* shard, never
//!   between old ones. Removing a shard only reassigns that shard's
//!   keys. This is what makes resharding an operational event rather
//!   than a full catalog migration.
//!
//! The hash is the workspace's Fx multiply-rotate hash finished with a
//! splitmix64-style avalanche — Fx alone is too regular on short strings
//! for ring-point placement, and the finalizer costs two multiplies.
//! Not cryptographic; graph names are operator-chosen, not hostile.

use std::hash::Hasher;

use mwc_graph::hash::FxHasher;

/// Default number of virtual nodes per shard. 64 points per shard keeps
/// the expected imbalance of a few-shard ring in the ±20% range while
/// the whole ring (even at 64 shards) stays a 4096-entry sorted vector —
/// binary-searched per request, never mutated.
pub const DEFAULT_VNODES: usize = 64;

/// Splitmix64-style finalizer: avalanche the Fx output so nearby inputs
/// (e.g. `shard-0`, `shard-1`) spread over the whole ring.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash_bytes(bytes: &[u8], salt: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(salt);
    h.write(bytes);
    mix(h.finish())
}

/// Where a graph name hashes to on the ring.
fn key_point(key: &str) -> u64 {
    hash_bytes(key.as_bytes(), 0x6b65)
}

/// Where virtual node `vnode` of `shard` sits on the ring.
fn shard_point(shard: &str, vnode: usize) -> u64 {
    hash_bytes(shard.as_bytes(), 0x7368 ^ ((vnode as u64) << 16))
}

/// A consistent-hash ring over named shards with virtual nodes.
///
/// Construction sorts and dedups the shard names, so rings built from
/// the same *set* of shards are identical regardless of argument order —
/// determinism is part of the routing contract (unit tests pin it).
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted, deduplicated shard names; ring points index into this.
    shards: Vec<String>,
    /// `(point, shard index)` sorted by point (ties broken by index, so
    /// even a hash collision between two shards' vnodes is deterministic).
    points: Vec<(u64, u32)>,
    vnodes: usize,
}

impl HashRing {
    /// Builds the ring. `vnodes` is clamped to at least 1; duplicate
    /// shard names collapse to one shard.
    ///
    /// # Panics
    ///
    /// If `shards` is empty — a ring with nowhere to route is a
    /// configuration error the caller must surface earlier.
    pub fn new<I, S>(shards: I, vnodes: usize) -> HashRing
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut shards: Vec<String> = shards.into_iter().map(Into::into).collect();
        shards.sort_unstable();
        shards.dedup();
        assert!(!shards.is_empty(), "a hash ring needs at least one shard");
        let vnodes = vnodes.max(1);
        let mut points: Vec<(u64, u32)> = Vec::with_capacity(shards.len() * vnodes);
        for (i, shard) in shards.iter().enumerate() {
            for v in 0..vnodes {
                points.push((shard_point(shard, v), i as u32));
            }
        }
        points.sort_unstable();
        HashRing {
            shards,
            points,
            vnodes,
        }
    }

    /// The shard that owns `key` (a graph name): the first ring point at
    /// or clockwise of the key's hash, wrapping at the top.
    pub fn route(&self, key: &str) -> &str {
        &self.shards[self.route_index(key)]
    }

    /// Like [`HashRing::route`], but returning the index into
    /// [`HashRing::shards`] — what the router stores per backend.
    pub fn route_index(&self, key: &str) -> usize {
        let point = key_point(key);
        let at = self.points.partition_point(|&(p, _)| p < point);
        let (_, shard) = self.points[if at == self.points.len() { 0 } else { at }];
        shard as usize
    }

    /// The replica set for `key`: up to `replicas` *distinct* shard
    /// indices, collected by walking the ring clockwise from the key's
    /// hash and skipping points owned by shards already in the set.
    ///
    /// The first element is always [`HashRing::route_index`] — R = 1
    /// degenerates to single-owner routing. `replicas` is clamped to
    /// the shard count (a 2-shard ring can hold at most 2 copies), and
    /// to at least 1. Like single-key routing, the walk is a pure
    /// function of the shard names, so every router computes the same
    /// replica sets; and because successor points shift only where ring
    /// points are inserted or removed, a shard joining or leaving
    /// disturbs few replica sets (pinned by unit tests below).
    pub fn route_replicas(&self, key: &str, replicas: usize) -> Vec<usize> {
        let want = replicas.clamp(1, self.shards.len());
        let point = key_point(key);
        let start = self.points.partition_point(|&(p, _)| p < point);
        let mut set: Vec<usize> = Vec::with_capacity(want);
        for step in 0..self.points.len() {
            let at = (start + step) % self.points.len();
            let shard = self.points[at].1 as usize;
            if !set.contains(&shard) {
                set.push(shard);
                if set.len() == want {
                    break;
                }
            }
        }
        set
    }

    /// The shard names, sorted (indices match [`HashRing::route_index`]).
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring is empty (never true: construction requires at
    /// least one shard).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("graph-{i}")).collect()
    }

    #[test]
    fn deterministic_and_order_independent() {
        let a = HashRing::new(["alpha", "beta", "gamma"], 64);
        let b = HashRing::new(["gamma", "alpha", "beta", "beta"], 64);
        assert_eq!(a.shards(), b.shards());
        assert_eq!(a.len(), 3);
        assert_eq!(a.vnodes(), 64);
        for k in keys(500) {
            assert_eq!(a.route(&k), b.route(&k), "{k}");
        }
        // Stable across rebuilds (pure function of the inputs).
        let c = HashRing::new(["alpha", "beta", "gamma"], 64);
        for k in keys(100) {
            assert_eq!(a.route(&k), c.route(&k));
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let ring = HashRing::new(["only"], 8);
        for k in keys(50) {
            assert_eq!(ring.route(&k), "only");
        }
    }

    #[test]
    fn vnodes_spread_keys_across_shards() {
        let ring = HashRing::new(["s0", "s1", "s2"], DEFAULT_VNODES);
        let mut counts = [0usize; 3];
        for k in keys(3000) {
            counts[ring.route_index(&k)] += 1;
        }
        // Every shard owns a meaningful slice. The theoretical expectation
        // is 1000 each; with 64 vnodes the spread stays well inside
        // [500, 1600] — the assertion is loose enough to never flake
        // (the ring is deterministic, so this is really a one-time check).
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (500..=1600).contains(&c),
                "shard {i} owns {c} of 3000 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn adding_a_shard_only_moves_keys_to_it() {
        let before = HashRing::new(["s0", "s1", "s2"], DEFAULT_VNODES);
        let after = HashRing::new(["s0", "s1", "s2", "s3"], DEFAULT_VNODES);
        let mut moved = 0usize;
        let all = keys(2000);
        for k in &all {
            let old = before.route(k);
            let new = after.route(k);
            if old != new {
                assert_eq!(new, "s3", "{k} moved between pre-existing shards");
                moved += 1;
            }
        }
        // The new shard takes roughly its fair share (1/4) and nothing
        // else is disturbed — the consistent-hashing contract.
        assert!(
            (200..=900).contains(&moved),
            "moved {moved} of {} keys",
            all.len()
        );
    }

    #[test]
    fn removing_a_shard_only_reassigns_its_keys() {
        let before = HashRing::new(["s0", "s1", "s2"], DEFAULT_VNODES);
        let after = HashRing::new(["s0", "s2"], DEFAULT_VNODES);
        for k in keys(2000) {
            if before.route(&k) != "s1" {
                assert_eq!(before.route(&k), after.route(&k), "{k}");
            } else {
                assert_ne!(after.route(&k), "s1");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_ring_panics() {
        let _ = HashRing::new(Vec::<String>::new(), 4);
    }

    #[test]
    fn replica_sets_are_distinct_and_lead_with_the_owner() {
        let ring = HashRing::new(["s0", "s1", "s2", "s3"], DEFAULT_VNODES);
        for k in keys(1000) {
            let set = ring.route_replicas(&k, 3);
            assert_eq!(set.len(), 3, "{k}");
            assert_eq!(set[0], ring.route_index(&k), "{k}");
            let mut sorted = set.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "{k}: duplicate replica in {set:?}");
        }
    }

    #[test]
    fn replica_count_clamps_to_ring_size() {
        let ring = HashRing::new(["a", "b"], 8);
        for k in keys(50) {
            assert_eq!(ring.route_replicas(&k, 5).len(), 2, "{k}");
            assert_eq!(ring.route_replicas(&k, 0), vec![ring.route_index(&k)]);
        }
    }

    #[test]
    fn replica_load_is_balanced() {
        let ring = HashRing::new(["s0", "s1", "s2", "s3"], DEFAULT_VNODES);
        let mut counts = [0usize; 4];
        for k in keys(3000) {
            for shard in ring.route_replicas(&k, 2) {
                counts[shard] += 1;
            }
        }
        // 6000 replica slots over 4 shards: expectation 1500 each. Same
        // deterministic-loose-band style as the single-owner balance test.
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (800..=2400).contains(&c),
                "shard {i} holds {c} of 6000 replica slots: {counts:?}"
            );
        }
    }

    #[test]
    fn adding_a_shard_disrupts_few_replica_sets() {
        let before = HashRing::new(["s0", "s1", "s2"], DEFAULT_VNODES);
        let after = HashRing::new(["s0", "s1", "s2", "s3"], DEFAULT_VNODES);
        let all = keys(2000);
        let mut changed = 0usize;
        for k in &all {
            let old: Vec<&str> = before
                .route_replicas(k, 2)
                .into_iter()
                .map(|i| before.shards()[i].as_str())
                .collect();
            let new: Vec<&str> = after
                .route_replicas(k, 2)
                .into_iter()
                .map(|i| after.shards()[i].as_str())
                .collect();
            if old != new {
                // Every change must involve the new shard somewhere in
                // the new set — keys never reshuffle between old shards.
                assert!(
                    new.contains(&"s3"),
                    "{k}: {old:?} -> {new:?} without the new shard"
                );
                changed += 1;
            }
        }
        // With R=2 a key's set changes when s3 lands in either slot:
        // expect roughly 2/4 of keys affected, and well below all of them.
        assert!(
            (400..=1600).contains(&changed),
            "{changed} of {} replica sets changed",
            all.len()
        );
    }

    #[test]
    fn removing_a_shard_preserves_unaffected_replica_sets() {
        let before = HashRing::new(["s0", "s1", "s2", "s3"], DEFAULT_VNODES);
        let after = HashRing::new(["s0", "s1", "s2"], DEFAULT_VNODES);
        for k in keys(2000) {
            let old: Vec<&str> = before
                .route_replicas(&k, 2)
                .into_iter()
                .map(|i| before.shards()[i].as_str())
                .collect();
            let new: Vec<&str> = after
                .route_replicas(&k, 2)
                .into_iter()
                .map(|i| after.shards()[i].as_str())
                .collect();
            assert!(!new.contains(&"s3"), "{k}");
            if !old.contains(&"s3") {
                assert_eq!(old, new, "{k}: set changed despite not holding s3");
            } else {
                // The survivor keeps its slot; only s3's slot is refilled.
                for shard in old.iter().filter(|s| **s != "s3") {
                    assert!(new.contains(shard), "{k}: survivor {shard} dropped");
                }
            }
        }
    }
}
