//! Service-side request tracing: trace ids, span-tree assembly, the
//! slow-query ring buffer, and pretty-printing.
//!
//! The recording primitives ([`TraceRecorder`], [`TraceContext`],
//! [`SpanRecord`]) live in [`mwc_core::trace`] so the engine and the
//! ws-q pipeline can emit stages without depending on the serving
//! crate; this module re-exports them and adds everything the wire
//! needs: request-scoped trace ids (propagated router → shard), the
//! JSON span-tree shape returned inline by `"trace": true` requests,
//! the always-on [`SlowLog`] served by the `slowlog` command, and the
//! indented renderer `mwc-client --trace` prints.

use std::collections::hash_map::RandomState;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use mwc_core::trace::{SpanRecord, TraceContext, TraceRecorder, NO_PARENT};

use crate::json::Json;

/// A fresh request-scoped trace id: 16 hex chars, unique per process
/// (monotonic counter) and unique across processes with overwhelming
/// probability (the counter is hashed with a per-process random seed).
/// The router generates one per traced request and forwards it to the
/// owning shard, so both sides' spans share the id.
pub fn next_trace_id() -> String {
    static SEED: OnceLock<RandomState> = OnceLock::new();
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut h = SEED.get_or_init(RandomState::new).build_hasher();
    h.write_u64(SEQ.fetch_add(1, Ordering::Relaxed));
    format!("{:016x}", h.finish())
}

fn span_node(spans: &[SpanRecord], children: &HashMap<u32, Vec<usize>>, i: usize) -> Json {
    let s = &spans[i];
    let mut fields = vec![
        ("name", Json::from(s.name)),
        ("start_us", Json::from(s.start_us)),
        ("dur_us", Json::from(s.dur_us)),
    ];
    if !s.counters.is_empty() {
        fields.push((
            "counters",
            Json::Obj(
                s.counters
                    .iter()
                    .map(|(k, v)| (k.to_string(), Json::from(*v)))
                    .collect(),
            ),
        ));
    }
    let kids: Vec<Json> = children
        .get(&s.id)
        .map(|ids| ids.iter().map(|&j| span_node(spans, children, j)).collect())
        .unwrap_or_default();
    fields.push(("children", Json::Arr(kids)));
    Json::obj(fields)
}

/// Assembles the recorder's spans into the wire span tree:
/// `{"trace_id":…,"dropped":…,"root":{"name":…,"start_us":…,"dur_us":…,`
/// `"counters":{…},"children":[…]}}`. Children are ordered by start
/// offset. Spans whose parent was dropped (recorder full) surface as
/// extra roots under a synthetic `request` node rather than vanishing.
pub fn span_tree(trace_id: &str, recorder: &TraceRecorder) -> Json {
    let spans = recorder.finish();
    let ids: HashMap<u32, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut children: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent != NO_PARENT && ids.contains_key(&s.parent) {
            children.entry(s.parent).or_default().push(i);
        } else {
            roots.push(i);
        }
    }
    let root = match roots.as_slice() {
        [] => Json::Null,
        [only] => span_node(&spans, &children, *only),
        many => {
            let start = spans[many[0]].start_us;
            let end = many
                .iter()
                .map(|&i| spans[i].start_us + spans[i].dur_us)
                .max()
                .unwrap_or(start);
            let kids: Vec<Json> = many
                .iter()
                .map(|&i| span_node(&spans, &children, i))
                .collect();
            Json::obj([
                ("name", Json::from("request")),
                ("start_us", Json::from(start)),
                ("dur_us", Json::from(end - start)),
                ("children", Json::Arr(kids)),
            ])
        }
    };
    Json::obj([
        ("trace_id", Json::from(trace_id)),
        ("dropped", Json::from(recorder.dropped() as u64)),
        ("root", root),
    ])
}

fn render_node(out: &mut String, node: &Json, depth: usize, parent_us: Option<u64>) {
    let name = node.get("name").and_then(Json::as_str).unwrap_or("?");
    let dur_us = node.get("dur_us").and_then(Json::as_u64).unwrap_or(0);
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{name}");
    out.push_str(&format!("{label:<28} {:>10.3} ms", dur_us as f64 / 1e3));
    match parent_us {
        Some(p) if p > 0 => out.push_str(&format!(" {:>5.1}%", dur_us as f64 * 100.0 / p as f64)),
        Some(_) => out.push_str("      "),
        None => out.push_str("   100%"),
    }
    if let Some(shard) = node.get("shard").and_then(Json::as_str) {
        out.push_str(&format!("  shard={shard}"));
    }
    if let Some(Json::Obj(counters)) = node.get("counters") {
        for (k, v) in counters {
            out.push_str(&format!("  {k}={v}"));
        }
    }
    out.push('\n');
    if let Some(kids) = node.get("children").and_then(Json::as_array) {
        for kid in kids {
            render_node(out, kid, depth + 1, Some(dur_us));
        }
    }
}

/// Renders a wire span tree (the object [`span_tree`] produces, parsed
/// back from the response) as indented text: one line per span with
/// duration, percent-of-parent, and counters — what `mwc-client
/// --trace` prints.
pub fn render_span_tree(trace: &Json) -> String {
    let mut out = String::new();
    if let Some(id) = trace.get("trace_id").and_then(Json::as_str) {
        out.push_str(&format!("trace {id}\n"));
    }
    if let Some(root) = trace.get("root") {
        if !matches!(root, Json::Null) {
            render_node(&mut out, root, 0, None);
        }
    }
    if let Some(d) = trace.get("dropped").and_then(Json::as_u64) {
        if d > 0 {
            out.push_str(&format!("({d} spans dropped: recorder full)\n"));
        }
    }
    out
}

/// Always-on bounded ring of the slowest-path evidence: every request
/// whose total latency crosses the threshold leaves a JSON entry
/// (command, graph, solver, stage timings, trace id when one existed),
/// newest evicting oldest. Served by the `slowlog` protocol command;
/// the router fans the command out and merges shard rings.
#[derive(Debug)]
pub struct SlowLog {
    threshold: Duration,
    capacity: usize,
    seq: AtomicU64,
    entries: Mutex<VecDeque<(Instant, Json)>>,
}

/// Default `--slowlog-ms` threshold (milliseconds).
pub const DEFAULT_SLOWLOG_MS: u64 = 100;

/// Default ring capacity (entries retained).
pub const DEFAULT_SLOWLOG_CAPACITY: usize = 128;

impl SlowLog {
    /// A ring that records requests slower than `threshold`, keeping
    /// the newest `capacity` entries.
    pub fn new(threshold: Duration, capacity: usize) -> Self {
        SlowLog {
            threshold,
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Records `total` if it crosses the threshold; `build` runs only
    /// then (the fast path costs one comparison). The entry gains
    /// `seq` and `total_ms` fields.
    pub fn observe(&self, total: Duration, build: impl FnOnce() -> Json) {
        if total < self.threshold {
            return;
        }
        let mut entry = build();
        if let Json::Obj(m) = &mut entry {
            m.insert(
                "seq".to_string(),
                Json::from(self.seq.fetch_add(1, Ordering::Relaxed)),
            );
            m.insert(
                "total_ms".to_string(),
                Json::from(total.as_secs_f64() * 1e3),
            );
        }
        let mut ring = self.entries.lock().expect("slowlog poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back((Instant::now(), entry));
    }

    /// The newest `limit` entries, newest first, each annotated with
    /// `age_s` (seconds since it was recorded).
    pub fn snapshot(&self, limit: usize) -> Vec<Json> {
        let ring = self.entries.lock().expect("slowlog poisoned");
        ring.iter()
            .rev()
            .take(limit)
            .map(|(at, e)| {
                let mut e = e.clone();
                if let Json::Obj(m) = &mut e {
                    m.insert("age_s".to_string(), Json::from(at.elapsed().as_secs_f64()));
                }
                e
            })
            .collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("slowlog poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_hex() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn span_tree_nests_children_under_root() {
        let rec = TraceRecorder::new();
        let root = rec.reserve().unwrap();
        let ctx = TraceContext::attached(rec.clone(), root);
        let t0 = rec.origin();
        ctx.record_with(
            "feasibility",
            t0 + Duration::from_micros(10),
            t0 + Duration::from_micros(30),
            vec![("folded", 1)],
        );
        ctx.record(
            "root_sweep",
            t0 + Duration::from_micros(30),
            t0 + Duration::from_micros(400),
        );
        rec.complete(
            root,
            "solve",
            NO_PARENT,
            t0,
            t0 + Duration::from_micros(500),
            Vec::new(),
        );
        let tree = span_tree("deadbeef00000000", &rec);
        assert_eq!(
            tree.get("trace_id").and_then(Json::as_str),
            Some("deadbeef00000000")
        );
        assert_eq!(tree.get("dropped").and_then(Json::as_u64), Some(0));
        let root = tree.get("root").unwrap();
        assert_eq!(root.get("name").and_then(Json::as_str), Some("solve"));
        assert_eq!(root.get("dur_us").and_then(Json::as_u64), Some(500));
        let kids = root.get("children").and_then(Json::as_array).unwrap();
        assert_eq!(kids.len(), 2);
        // Ordered by start offset.
        assert_eq!(
            kids[0].get("name").and_then(Json::as_str),
            Some("feasibility")
        );
        assert_eq!(
            kids[0]
                .get("counters")
                .unwrap()
                .get("folded")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(
            kids[1].get("name").and_then(Json::as_str),
            Some("root_sweep")
        );
        // Children must not out-sum the root.
        let sum: u64 = kids
            .iter()
            .map(|k| k.get("dur_us").and_then(Json::as_u64).unwrap())
            .sum();
        assert!(sum <= 500);
        // And the renderer produces one line per span.
        let text = render_span_tree(&tree);
        assert_eq!(text.lines().count(), 4); // trace id + 3 spans
        assert!(text.contains("feasibility"));
        assert!(text.contains('%'));
    }

    #[test]
    fn slowlog_keeps_only_slow_requests_and_bounds_the_ring() {
        let log = SlowLog::new(Duration::from_millis(10), 2);
        log.observe(Duration::from_millis(1), || unreachable!("fast path"));
        assert!(log.is_empty());
        for i in 0..3u64 {
            log.observe(Duration::from_millis(20 + i), || {
                Json::obj([("cmd", Json::from("solve")), ("i", Json::from(i))])
            });
        }
        assert_eq!(log.len(), 2);
        let snap = log.snapshot(10);
        // Newest first; the oldest entry was evicted.
        assert_eq!(snap[0].get("i").and_then(Json::as_u64), Some(2));
        assert_eq!(snap[1].get("i").and_then(Json::as_u64), Some(1));
        assert!(snap[0].get("total_ms").and_then(Json::as_f64).unwrap() >= 20.0);
        assert!(snap[0].get("age_s").is_some());
        assert!(snap[0].get("seq").and_then(Json::as_u64).unwrap() > 0);
    }
}
