//! Transport-layer tests: framing across partial reads, pipelining,
//! backpressure, drain — run against *both* transports (epoll and
//! threads) where semantics are shared, so the two stay wire-compatible.
//! The epoll-only behaviors (write-buffer cap, pipelined concurrency)
//! are pinned separately.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mwc_service::{server, Catalog, CoalesceConfig, PipelinedClient, ServerConfig, Transport};

/// The transports every shared-semantics test runs under.
fn transports() -> Vec<Transport> {
    if cfg!(target_os = "linux") {
        vec![Transport::Threads, Transport::Epoll]
    } else {
        vec![Transport::Threads]
    }
}

fn start_karate(mut config: ServerConfig) -> server::ServerHandle {
    let catalog = Arc::new(Catalog::new());
    catalog.load("karate", "karate").unwrap();
    // Fast shutdown polls keep the drain tests snappy.
    config.poll_interval = Duration::from_millis(10);
    server::start(catalog, config, "127.0.0.1:0").expect("bind loopback")
}

fn read_response_line(stream: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    let n = stream.read_line(&mut line).expect("read response");
    assert!(n > 0, "connection closed before a response arrived");
    line
}

/// A request frame split at *every* byte boundary must reassemble: the
/// two halves are written as separate TCP segments (a flush + delay in
/// between forces distinct reads on the server side).
#[test]
fn frames_reassemble_across_every_split_point() {
    for transport in transports() {
        let handle = start_karate(ServerConfig {
            transport,
            ..ServerConfig::default()
        });
        let addr = handle.local_addr();
        let request = b"{\"cmd\":\"ping\",\"id\":7}\n";
        for split in 0..request.len() {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.set_nodelay(true).unwrap();
            stream.write_all(&request[..split]).unwrap();
            stream.flush().unwrap();
            // Let the first fragment arrive (and be parked in the
            // server's reassembly buffer) before the rest follows.
            std::thread::sleep(Duration::from_millis(2));
            stream.write_all(&request[split..]).unwrap();
            stream.flush().unwrap();
            let mut reader = BufReader::new(stream);
            let line = read_response_line(&mut reader);
            assert!(
                line.contains("\"pong\":true") && line.contains("\"id\":7"),
                "{transport:?} split at {split}: {line}"
            );
        }
        handle.shutdown();
    }
}

/// Many frames arriving in arbitrary-sized chunks (7-byte writes) must
/// come back as one response per frame, in order.
#[test]
fn chunked_burst_yields_one_response_per_frame_in_order() {
    for transport in transports() {
        let handle = start_karate(ServerConfig {
            transport,
            ..ServerConfig::default()
        });
        let mut burst = Vec::new();
        for id in 1..=10u64 {
            burst.extend_from_slice(format!("{{\"cmd\":\"ping\",\"id\":{id}}}\n").as_bytes());
        }
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        for chunk in burst.chunks(7) {
            stream.write_all(chunk).unwrap();
            stream.flush().unwrap();
        }
        let mut reader = BufReader::new(stream);
        for id in 1..=10u64 {
            let line = read_response_line(&mut reader);
            assert!(
                line.contains(&format!("\"id\":{id}")),
                "{transport:?}: out-of-order or dropped response: {line}"
            );
        }
        handle.shutdown();
    }
}

/// Pipelined solves under coalescing: all solves land in one flush
/// window (which reorders their *execution*), yet responses come back in
/// request order on the wire, interleaved control traffic included.
#[test]
fn pipelined_responses_keep_request_order_under_coalescing() {
    for transport in transports() {
        let handle = start_karate(ServerConfig {
            transport,
            coalesce: CoalesceConfig {
                window: Duration::from_millis(30),
                ..CoalesceConfig::default()
            },
            ..ServerConfig::default()
        });
        let mut client = PipelinedClient::connect(handle.local_addr()).unwrap();
        let mut sent = Vec::new();
        for i in 0..8u64 {
            let q: Vec<u32> = if i % 2 == 0 {
                vec![0, 33]
            } else {
                vec![11, 24, 25]
            };
            sent.push(client.send_solve("karate", "ws-q", &q, None).unwrap());
            if i == 3 {
                sent.push(client.send(vec![("cmd", "ping".into())]).unwrap());
            }
        }
        // Collect in reverse: recv_until must buffer the earlier
        // responses it reads past, proving both order and matching.
        for id in sent.iter().rev() {
            let v = client.recv_until(*id).unwrap();
            assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));
        }
        handle.shutdown();
    }
}

/// An oversized line is rejected with `bad_request` naming the cap, and
/// the connection closes (framing is lost) — identically on both
/// transports.
#[test]
fn oversized_line_rejected_then_closed() {
    for transport in transports() {
        let handle = start_karate(ServerConfig {
            transport,
            max_line_bytes: 256,
            ..ServerConfig::default()
        });
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        let big = vec![b'x'; 1024];
        stream.write_all(&big).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let line = read_response_line(&mut reader);
        assert!(
            line.contains("bad_request") && line.contains("exceeds 256 bytes"),
            "{transport:?}: {line}"
        );
        let mut rest = String::new();
        assert_eq!(
            reader.read_line(&mut rest).unwrap(),
            0,
            "{transport:?}: connection must close after a too-long line"
        );
        handle.shutdown();
    }
}

/// Shutdown pipelined behind solves on the same connection: every solve
/// is answered (the coalescer's 5 s windows are drained early), the ack
/// arrives, then EOF — nothing parked is dropped. Under epoll the wire
/// additionally keeps request order (solves strictly before the ack);
/// the threaded transport only promises delivery, since its reader
/// answers `shutdown` inline while solves sit in the worker queue.
#[test]
fn pipelined_requests_drain_before_shutdown_ack() {
    for transport in transports() {
        let handle = start_karate(ServerConfig {
            transport,
            coalesce: CoalesceConfig {
                // A window far longer than the test: only the shutdown
                // drain can flush it in time.
                window: Duration::from_secs(5),
                ..CoalesceConfig::default()
            },
            ..ServerConfig::default()
        });
        let mut burst = Vec::new();
        for id in 1..=3u64 {
            burst.extend_from_slice(
                format!(
                    "{{\"cmd\":\"solve\",\"graph\":\"karate\",\"solver\":\"ws-q\",\
                     \"q\":[0,33],\"id\":{id}}}\n"
                )
                .as_bytes(),
            );
        }
        burst.extend_from_slice(b"{\"cmd\":\"shutdown\",\"id\":99}\n");
        let started = Instant::now();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.write_all(&burst).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let mut responses = Vec::new();
        for _ in 0..4 {
            responses.push(read_response_line(&mut reader));
        }
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "{transport:?}: drain must cut the 5 s window short"
        );
        let mut rest = String::new();
        assert_eq!(
            reader.read_line(&mut rest).unwrap(),
            0,
            "{transport:?}: EOF after the last pipelined response"
        );
        for id in 1..=3u64 {
            let solve = responses
                .iter()
                .find(|l| l.contains(&format!("\"id\":{id}")))
                .unwrap_or_else(|| panic!("{transport:?}: parked solve {id} was dropped"));
            assert!(solve.contains("\"connector\""), "{transport:?}: {solve}");
        }
        let ack_at = responses
            .iter()
            .position(|l| l.contains("\"id\":99") && l.contains("\"stopping\":true"))
            .unwrap_or_else(|| panic!("{transport:?}: no shutdown ack in {responses:?}"));
        if transport == Transport::Epoll {
            assert_eq!(
                ack_at, 3,
                "epoll answers in request order: ack last, got {responses:?}"
            );
        }
        handle.wait();
    }
}

/// `connections_live` is authoritative from the owning transport's
/// connection table: it counts exactly the open connections, and returns
/// to zero when they close — identically under both transports.
#[test]
fn connections_live_gauge_tracks_open_connections() {
    for transport in transports() {
        let handle = start_karate(ServerConfig {
            transport,
            ..ServerConfig::default()
        });
        let addr = handle.local_addr();
        let gauge = |h: &server::ServerHandle| h.metrics().connections_live.load(Ordering::Relaxed);
        let wait_for = |h: &server::ServerHandle, want: u64| {
            let deadline = Instant::now() + Duration::from_secs(5);
            while gauge(h) != want {
                assert!(
                    Instant::now() < deadline,
                    "{transport:?}: connections_live stuck at {} (want {want})",
                    gauge(h)
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        };
        assert_eq!(gauge(&handle), 0);
        let mut conns = Vec::new();
        for i in 1..=3u64 {
            let mut c = mwc_service::Client::connect(addr).unwrap();
            c.ping().unwrap(); // fully accepted and serving
            conns.push(c);
            assert_eq!(gauge(&handle), i, "{transport:?}");
        }
        drop(conns);
        wait_for(&handle, 0);
        handle.shutdown();
    }
}

/// Weighted solves over the wire are pinned to the direct engine call:
/// the same catalog entry answers a `wba:` graph's query locally and
/// through a TCP round trip, and the connector, weighted Wiener index,
/// and candidate count must coincide — under both transports. The
/// `graphs` listing must also advertise the weighting.
#[test]
fn weighted_wire_solves_match_direct_engine_calls() {
    let queries: [&[u32]; 3] = [&[2, 190, 377], &[5, 41], &[77, 200, 350, 399]];
    for transport in transports() {
        let catalog = Arc::new(Catalog::new());
        let entry = catalog.load("wtoy", "wba:400x3").unwrap();
        let direct: Vec<_> = queries
            .iter()
            .map(|q| {
                entry
                    .solve("ws-q", q, &mwc_core::QueryOptions::default())
                    .unwrap()
            })
            .collect();
        let handle = server::start(
            catalog,
            ServerConfig {
                transport,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .expect("bind loopback");
        let mut client = mwc_service::Client::connect(handle.local_addr()).unwrap();
        let info = client.graphs().unwrap();
        assert!(
            info.iter().any(|g| g.name == "wtoy" && g.weighted),
            "{transport:?}: graphs listing must flag the weighted entry"
        );
        for (q, want) in queries.iter().zip(&direct) {
            let wire = client.solve("wtoy", "ws-q", q, None, None).unwrap();
            assert_eq!(
                wire.connector,
                want.connector.vertices(),
                "{transport:?} q={q:?}"
            );
            assert_eq!(wire.wiener_index, want.wiener_index, "{transport:?} q={q:?}");
            assert_eq!(wire.candidates, want.candidates, "{transport:?} q={q:?}");
        }
        handle.shutdown();
    }
}

/// Epoll backpressure: a client that pipelines requests but never reads
/// its responses crosses the per-connection write-buffer cap and is
/// disconnected (instead of growing the buffer without bound).
#[cfg(target_os = "linux")]
#[test]
fn slow_client_is_disconnected_at_the_write_cap() {
    // A cap smaller than one `stats` response makes the disconnect
    // deterministic: once the kernel socket buffers are full (the client
    // never reads), the first unflushable response jumps the backlog
    // from empty straight past the cap — the loop's read-pausing flow
    // control (which kicks in at half the cap) cannot hold it under.
    let handle = start_karate(ServerConfig {
        transport: Transport::Epoll,
        max_write_buffer: 256,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_write_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let metrics = Arc::clone(handle.metrics());
    let req = b"{\"cmd\":\"stats\",\"id\":1}\n";
    let deadline = Instant::now() + Duration::from_secs(20);
    // Flood without ever reading; write timeouts are just kernel-buffer
    // flow control, hard errors mean the server already cut us off.
    while metrics.slow_client_disconnects.load(Ordering::Relaxed) == 0 {
        assert!(
            Instant::now() < deadline,
            "server never disconnected the non-reading client"
        );
        match stream.write(req) {
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => break,
        }
    }
    let counted = Instant::now() + Duration::from_secs(5);
    while metrics.slow_client_disconnects.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < counted, "disconnect was not counted");
        std::thread::sleep(Duration::from_millis(5));
    }
    // And the socket observes the cut: EOF or reset, never endless data.
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    let mut buf = vec![0u8; 64 << 10];
    let observed = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < observed, "no EOF/reset after disconnect");
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(_) => continue, // responses buffered before the cut
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => break, // reset also counts
        }
    }
    handle.shutdown();
}

/// Wire parity: the same deterministic request script produces the same
/// response lines under both transports (ids, payloads, error codes —
/// everything except timing-dependent fields, which the script strips).
/// The script runs lockstep: pipelined *order* across the data/control
/// plane boundary is a transport property (epoll totally orders it,
/// threads lets control answers overtake queued solves), but each
/// request's response bytes must match.
#[cfg(target_os = "linux")]
#[test]
fn threads_and_epoll_answer_identically() {
    let script: Vec<String> = vec![
        "{\"cmd\":\"ping\",\"id\":1}".into(),
        "{\"cmd\":\"solve\",\"graph\":\"karate\",\"solver\":\"st\",\"q\":[0,33],\"id\":2}".into(),
        "not json at all".into(),
        "{\"cmd\":\"nope\",\"id\":3}".into(),
        "{\"cmd\":\"solve\",\"graph\":\"missing\",\"solver\":\"st\",\"q\":[1],\"id\":4}".into(),
        "{\"cmd\":\"shard\",\"graph\":\"karate\",\"id\":5}".into(),
    ];
    let run = |transport: Transport| -> Vec<String> {
        let handle = start_karate(ServerConfig {
            transport,
            ..ServerConfig::default()
        });
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let responses = script
            .iter()
            .map(|request| {
                writer.write_all(request.as_bytes()).unwrap();
                writer.write_all(b"\n").unwrap();
                writer.flush().unwrap();
                // Strip the one timing field a solve response carries.
                let line = read_response_line(&mut reader);
                let mut v = mwc_service::json::parse(line.trim()).unwrap();
                if let mwc_service::Json::Obj(fields) = &mut v {
                    if let Some(mwc_service::Json::Obj(report)) = fields.get_mut("report") {
                        report.remove("seconds");
                    }
                }
                v.to_string()
            })
            .collect();
        handle.shutdown();
        responses
    };
    assert_eq!(run(Transport::Threads), run(Transport::Epoll));
}
