//! End-to-end serving tests over a loopback TCP socket: an ephemeral-port
//! server driven by real concurrent clients, with results pinned against
//! direct catalog-entry calls on identically constructed graphs (the
//! entry path is the serving unit: a degree-ordered engine plus id
//! translation at the boundary).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use mwc_core::QueryOptions;
use mwc_graph::NodeId;
use mwc_service::{server, Catalog, Client, ClientError, GraphSource, ServerConfig};

fn start_two_graph_server(config: ServerConfig) -> server::ServerHandle {
    let catalog = Arc::new(Catalog::new());
    catalog.load("karate", "karate").unwrap();
    catalog.load("toy", "ba:300x2").unwrap();
    server::start(catalog, config, "127.0.0.1:0").expect("bind loopback")
}

const KARATE_QUERIES: &[&[NodeId]] = &[
    &[0, 33],
    &[11, 24, 25, 29],
    &[3, 11, 16],
    &[5, 28],
    &[1, 8, 30],
];
const TOY_QUERIES: &[&[NodeId]] = &[&[0, 299], &[7, 150, 250], &[42, 84, 126, 168]];

/// Concurrent clients solving on two graphs through several solvers; every
/// wire answer must equal a direct in-process engine call on the same
/// (deterministically rebuilt) graph.
#[test]
fn concurrent_solves_match_direct_engine_calls() {
    let handle = start_two_graph_server(ServerConfig::default());
    let addr = handle.local_addr();

    let solvers = ["ws-q", "ws-q+ls", "ws-q-approx", "st", "cps"];
    let barrier = Arc::new(Barrier::new(solvers.len()));
    let threads: Vec<_> = solvers
        .map(|solver| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait(); // all clients fire together
                let mut answers = Vec::new();
                for (graph, queries) in [("karate", KARATE_QUERIES), ("toy", TOY_QUERIES)] {
                    for q in queries {
                        let r = client.solve(graph, solver, q, None, None).unwrap();
                        assert_eq!(r.solver, solver);
                        answers.push((graph, q.to_vec(), r));
                    }
                }
                answers
            })
        })
        .into_iter()
        .collect();

    // Ground truth at two levels of independence:
    // * reference *entries* rebuilt from the specs pin the wire byte-for-
    //   byte against the serving path (degree ordering + translation);
    // * reference *original-layout graphs* rebuilt via GraphSource pin
    //   the answers against code that never saw the relabeling — a
    //   systematic translation bug cannot cancel out here.
    let reference = Catalog::new();
    reference.load("karate", "karate").unwrap();
    reference.load("toy", "ba:300x2").unwrap();
    let originals = [
        (
            "karate",
            GraphSource::parse("karate").unwrap().build().unwrap(),
        ),
        (
            "toy",
            GraphSource::parse("ba:300x2").unwrap().build().unwrap(),
        ),
    ];

    for t in threads {
        for (graph, q, wire) in t.join().expect("client thread") {
            let entry = reference.get(graph).unwrap();
            let direct = entry
                .solve(&wire.solver, &q, &QueryOptions::default())
                .unwrap();
            assert_eq!(
                wire.connector,
                direct.connector.vertices(),
                "{} on {graph} {q:?}: wire connector diverged",
                wire.solver
            );
            assert_eq!(wire.wiener_index, direct.wiener_index);
            assert_eq!(wire.optimal, direct.optimal);
            // Independent original-layout checks: the wire connector must
            // be a valid connector of the untranslated graph, and its
            // Wiener index (recomputed without any permutation involved)
            // must equal the reported objective.
            let original = &originals.iter().find(|(n, _)| *n == graph).unwrap().1;
            assert!(q.iter().all(|v| wire.connector.contains(v)));
            let sub = original.induced(&wire.connector).unwrap();
            assert!(mwc_graph::connectivity::is_connected(sub.graph()));
            assert_eq!(
                mwc_graph::wiener::wiener_index(sub.graph()),
                Some(wire.wiener_index),
                "{} on {graph} {q:?}: reported W diverges from the \
                 original-layout recomputation",
                wire.solver
            );
        }
    }
    handle.shutdown();
}

/// A wire batch equals the engine's parallel batch, query by query, with
/// per-query errors in place.
#[test]
fn batch_matches_engine_batch_and_reports_errors_in_place() {
    let handle = start_two_graph_server(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let queries: Vec<Vec<NodeId>> = vec![
        vec![0, 33],
        vec![11, 24, 25, 29],
        vec![999], // out of range → per-query error
        vec![3, 11, 16],
    ];
    let wire = client
        .batch("karate", "ws-q", &queries, None, None)
        .unwrap();
    assert_eq!(wire.len(), queries.len());

    let reference = Catalog::new();
    let entry = reference.load("karate", "karate").unwrap();
    let direct = entry.solve_batch("ws-q", &queries, &QueryOptions::default());
    for (i, (w, d)) in wire.iter().zip(&direct).enumerate() {
        match (w, d) {
            (Ok(w), Ok(d)) => {
                assert_eq!(w.connector, d.connector.vertices(), "query {i}");
                assert_eq!(w.wiener_index, d.wiener_index, "query {i}");
            }
            (Err(w), Err(_)) => assert_eq!(w.code, "infeasible", "query {i}"),
            other => panic!("query {i}: wire/direct disagree on feasibility: {other:?}"),
        }
    }
    handle.shutdown();
}

/// The control plane: graphs listing, stats counters, load/evict life
/// cycle, ping.
#[test]
fn control_plane_lists_loads_and_counts() {
    let handle = start_two_graph_server(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.ping().unwrap();

    let graphs = client.graphs().unwrap();
    assert_eq!(
        graphs.iter().map(|g| g.name.as_str()).collect::<Vec<_>>(),
        vec!["karate", "toy"]
    );
    assert_eq!(graphs[0].nodes, 34);
    assert!(graphs[0].solvers.contains(&"ws-q".to_string()));
    // solver_names is served sorted.
    let mut sorted = graphs[0].solvers.clone();
    sorted.sort();
    assert_eq!(graphs[0].solvers, sorted);

    // Load a third graph over the wire, solve on it, evict it.
    let (nodes, _) = client.load("mini", "standin:football@0.5").unwrap();
    assert!(nodes >= 57);
    let r = client.solve("mini", "st", &[0, 1, 2], None, None).unwrap();
    assert!(r.connector.len() >= 3);
    assert!(client.evict("mini").unwrap());
    assert!(!client.evict("mini").unwrap());
    match client.solve("mini", "st", &[0, 1], None, None) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "unknown_graph"),
        other => panic!("expected unknown_graph, got {other:?}"),
    }

    client
        .solve("karate", "ws-q", &[0, 33], None, None)
        .unwrap();
    let stats = client.stats().unwrap();
    let requests = stats.get("requests").unwrap();
    assert!(requests.get("total").unwrap().as_u64().unwrap() >= 8);
    assert!(requests.get("ok").unwrap().as_u64().unwrap() >= 6);
    let ws_q = stats.get("solvers").unwrap().get("ws-q").unwrap();
    assert!(ws_q.get("count").unwrap().as_u64().unwrap() >= 1);
    assert!(ws_q.get("p99_ms").unwrap().as_f64().unwrap() > 0.0);
    handle.shutdown();
}

/// The solve cache is observable over the wire: repeated solves hit,
/// `no_cache` bypasses, and `stats` carries the counters per graph.
#[test]
fn solve_cache_counters_and_no_cache_flag() {
    let handle = start_two_graph_server(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let q: &[NodeId] = &[11, 24, 25, 29];

    let cold = client.solve("karate", "ws-q", q, None, None).unwrap();
    let hot = client.solve("karate", "ws-q", q, None, None).unwrap();
    let fresh = client
        .solve_opts("karate", "ws-q", q, None, None, true)
        .unwrap();
    assert_eq!(cold.connector, hot.connector);
    assert_eq!(cold.connector, fresh.connector);
    assert_eq!(cold.wiener_index, fresh.wiener_index);

    let stats = client.stats().unwrap();
    let cache = stats.get("solve_cache").expect("stats carry solve_cache");
    assert!(cache.get("hits").unwrap().as_u64().unwrap() >= 1);
    // no_cache neither hit nor stored: exactly one resident entry, one
    // miss for the cold solve.
    let karate = cache.get("graphs").unwrap().get("karate").unwrap();
    assert_eq!(karate.get("hits").unwrap().as_u64(), Some(1));
    assert_eq!(karate.get("misses").unwrap().as_u64(), Some(1));
    assert_eq!(karate.get("entries").unwrap().as_u64(), Some(1));
    assert!(karate.get("capacity").unwrap().as_u64().unwrap() > 0);
    // The byte-bounded cache is observable on the wire: one resident
    // entry charges a non-zero approximate size against a non-zero
    // budget, and the aggregate section carries the sum.
    assert!(karate.get("bytes_used").unwrap().as_u64().unwrap() > 0);
    assert!(
        karate.get("capacity_bytes").unwrap().as_u64().unwrap()
            >= karate.get("bytes_used").unwrap().as_u64().unwrap()
    );
    assert!(
        cache.get("bytes_used").unwrap().as_u64().unwrap()
            >= karate.get("bytes_used").unwrap().as_u64().unwrap()
    );

    // Batch requests honor the flag too (and both paths agree).
    let batch = client
        .batch_opts("karate", "ws-q", &[q.to_vec()], None, None, true)
        .unwrap();
    assert_eq!(batch[0].as_ref().unwrap().connector, cold.connector);
    handle.shutdown();
}

/// Malformed lines and bad requests get structured errors (with the id
/// salvaged when possible) and do not poison the connection.
#[test]
fn malformed_requests_get_structured_errors() {
    let handle = start_two_graph_server(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    for (line, code) in [
        ("this is not json", "bad_request"),
        ("[1,2,3]", "bad_request"),
        (r#"{"cmd":"teleport"}"#, "bad_request"),
        (
            r#"{"cmd":"solve","graph":"karate","solver":"ws-q"}"#,
            "bad_request",
        ),
        (
            r#"{"cmd":"solve","graph":"atlantis","solver":"ws-q","q":[0,1]}"#,
            "unknown_graph",
        ),
        (
            r#"{"cmd":"solve","graph":"karate","solver":"quantum","q":[0,1]}"#,
            "unknown_solver",
        ),
        (
            r#"{"cmd":"solve","graph":"karate","solver":"ws-q","q":[0,999]}"#,
            "infeasible",
        ),
        (
            r#"{"cmd":"load","name":"x","source":"warp:10"}"#,
            "bad_source",
        ),
    ] {
        let response = client.roundtrip_line(line).unwrap();
        let v = mwc_service::json::parse(response.trim()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false), "{line}");
        assert_eq!(
            v.get("error").unwrap().get("code").unwrap().as_str(),
            Some(code),
            "{line}"
        );
    }
    // The id is salvaged from well-formed JSON with a bad command.
    let response = client
        .roundtrip_line(r#"{"cmd":"warp","id":"x7"}"#)
        .unwrap();
    let v = mwc_service::json::parse(response.trim()).unwrap();
    assert_eq!(v.get("id").unwrap().as_str(), Some("x7"));
    // The connection still serves after all that abuse.
    client.ping().unwrap();
    client
        .solve("karate", "ws-q", &[0, 33], None, None)
        .unwrap();
    handle.shutdown();
}

/// A newline-free line past `max_line_bytes` is rejected as soon as the
/// cap is exceeded — the buffer never grows with the client's send rate —
/// and the connection is closed (framing is lost).
#[test]
fn oversized_lines_are_rejected_and_the_connection_closed() {
    let config = ServerConfig {
        max_line_bytes: 256,
        ..ServerConfig::default()
    };
    let handle = start_two_graph_server(config);
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream.write_all(&[b'x'; 1024]).unwrap(); // 4x the cap, no newline
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(response.contains("bad_request"), "{response}");
    assert!(response.contains("exceeds"), "{response}");
    let mut rest = String::new();
    assert_eq!(
        reader.read_line(&mut rest).unwrap(),
        0,
        "connection stays open"
    );
    handle.shutdown();
}

/// Beyond `max_connections`, a new connection gets one retryable
/// `too_many_connections` error line and is closed; slots free up when
/// connections drop.
#[test]
fn connection_limit_refuses_with_too_many_connections() {
    let config = ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    };
    let handle = start_two_graph_server(config);
    let addr = handle.local_addr();
    let c1 = Client::connect(addr).unwrap();
    let mut c2 = Client::connect(addr).unwrap();
    c2.ping().unwrap();

    let s3 = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(s3);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"too_many_connections\""), "{line}");
    assert!(line.contains("\"retryable\":true"), "{line}");
    assert!(line.contains("connection limit"), "{line}");
    let mut rest = String::new();
    assert_eq!(
        reader.read_line(&mut rest).unwrap(),
        0,
        "refused conn closed"
    );

    // Dropping a connection frees its slot (pruned on the next accept).
    drop(c1);
    std::thread::sleep(Duration::from_millis(200));
    let mut c4 = Client::connect(addr).unwrap();
    c4.ping().unwrap();
    handle.shutdown();
}

/// Admission control: with one worker and a queue of one, a burst of
/// slow requests must produce explicit `overloaded` rejections while the
/// control plane stays responsive; accepted work still completes.
#[test]
fn overload_sheds_requests_with_explicit_code() {
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    };
    let handle = start_two_graph_server(config);
    let addr = handle.local_addr();

    let n = 10;
    let barrier = Arc::new(Barrier::new(n));
    let threads: Vec<_> = (0..n)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                match client.burn(300) {
                    Ok(()) => "ok",
                    Err(ClientError::Server(e)) if e.code == "overloaded" => "overloaded",
                    Err(e) => panic!("unexpected failure: {e}"),
                }
            })
        })
        .collect();
    // Stats answer while the data plane is saturated (control plane
    // bypasses admission).
    std::thread::sleep(Duration::from_millis(100));
    let mut observer = Client::connect(addr).unwrap();
    let stats = observer.stats().unwrap();
    assert!(
        stats
            .get("queue")
            .unwrap()
            .get("capacity")
            .unwrap()
            .as_u64()
            == Some(1)
    );

    let outcomes: Vec<&str> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let ok = outcomes.iter().filter(|o| **o == "ok").count();
    let shed = outcomes.iter().filter(|o| **o == "overloaded").count();
    assert!(ok >= 1, "some burns must be admitted: {outcomes:?}");
    assert!(shed >= 1, "some burns must be shed: {outcomes:?}");

    let stats = observer.stats().unwrap();
    assert_eq!(
        stats
            .get("requests")
            .unwrap()
            .get("overloaded")
            .unwrap()
            .as_u64(),
        Some(shed as u64)
    );
    handle.shutdown();
}

/// Deadline semantics: a deadline long enough passes; a zero deadline is
/// expired by queue wait alone and fails with `deadline_exceeded` before
/// solving; a short-but-positive deadline still yields a feasible
/// connector (cooperative deadline inside the solver).
#[test]
fn deadlines_cover_queueing_and_map_into_query_options() {
    let handle = start_two_graph_server(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let generous = client
        .solve("karate", "ws-q", &[11, 24, 25, 29], Some(10_000), None)
        .unwrap();
    assert!(generous.connector.len() >= 4);

    match client.solve("karate", "ws-q", &[0, 33], Some(0), None) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "deadline_exceeded"),
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }

    // 1 ms: tight but admitted — the cooperative solver still returns a
    // feasible (if unpolished) connector unless queueing ate the budget.
    match client.solve("toy", "ws-q", &[0, 299], Some(1), None) {
        Ok(r) => {
            assert!(r.connector.contains(&0) && r.connector.contains(&299));
        }
        Err(ClientError::Server(e)) => assert_eq!(e.code, "deadline_exceeded"),
        Err(e) => panic!("unexpected failure: {e}"),
    }

    // max_size maps onto QueryOptions::max_connector_size.
    match client.solve("karate", "ws-q", &[11, 24, 25, 29], None, Some(4)) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "budget_exceeded"),
        other => panic!("expected budget_exceeded, got {other:?}"),
    }
    handle.shutdown();
}

/// Protocol-initiated graceful shutdown: the server drains and `wait`
/// returns; late requests are refused.
#[test]
fn protocol_shutdown_drains_and_stops() {
    let handle = start_two_graph_server(ServerConfig::default());
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.solve("karate", "st", &[0, 33], None, None).unwrap();
    client.shutdown().unwrap();
    assert!(handle.is_shutting_down());
    handle.wait(); // joins acceptor, workers, readers
                   // The listener is gone (or refuses) after drain.
    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
            || Client::connect(addr).and_then(|mut c| c.ping()).is_err()
    );
}

/// A weighted graph's warm cache survives the wire. The exported seeds
/// carry a full-range u64 `weight_digest` (essentially always above
/// 2^53, i.e. past JSON's exact-integer range), so the hex-string
/// encoding is load-bearing: a second server's seeded `load` must
/// accept every seed, serve the warmed queries without a single cold
/// solve, and a differently-weighted twin must still refuse them.
#[test]
fn weighted_cache_seeds_survive_the_wire() {
    use mwc_service::json::{parse, Json};

    let catalog = Arc::new(Catalog::new());
    catalog.load("w", "wba:200x2").unwrap();
    let exporter = server::start(catalog, ServerConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(exporter.local_addr()).unwrap();
    let queries: &[&[NodeId]] = &[&[0, 199], &[7, 150], &[42, 84, 126]];
    for q in queries {
        client.solve("w", "ws-q", q, None, None).unwrap();
    }
    let raw = client
        .roundtrip_line(r#"{"cmd":"cache_export","name":"w"}"#)
        .unwrap();
    let v = parse(raw.trim()).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{raw}");
    let entries = v.get("entries").unwrap().as_array().unwrap().to_vec();
    assert!(entries.len() >= queries.len(), "{raw}");
    for e in &entries {
        let digest = e.get("weight_digest").unwrap();
        assert!(digest.as_str().is_some(), "digest must be a hex string: {e}");
    }
    exporter.shutdown();

    // Seeded load on a fresh server: every seed accepted, replay all-hit.
    let importer = server::start(
        Arc::new(Catalog::new()),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = Client::connect(importer.local_addr()).unwrap();
    let seeds = Json::Arr(entries).to_string();
    let raw = client
        .roundtrip_line(&format!(
            r#"{{"cmd":"load","name":"w","source":"wba:200x2","cache":{seeds}}}"#
        ))
        .unwrap();
    let v = parse(raw.trim()).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{raw}");
    assert!(
        v.get("cache_imported").unwrap().as_u64().unwrap() >= queries.len() as u64,
        "weighted seeds were not imported: {raw}"
    );
    for q in queries {
        client.solve("w", "ws-q", q, None, None).unwrap();
    }
    let stats = client.stats().unwrap();
    let cache = stats.get("solve_cache").unwrap();
    assert_eq!(
        cache.get("misses").unwrap().as_u64(),
        Some(0),
        "warmed importer served cold: {stats}"
    );

    // Same topology, different weighting: the digest check still bites.
    let raw = client
        .roundtrip_line(&format!(
            r#"{{"cmd":"load","name":"w2","source":"wba:200x2x31","cache":{seeds}}}"#
        ))
        .unwrap();
    let v = parse(raw.trim()).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{raw}");
    assert_eq!(
        v.get("cache_imported").unwrap().as_u64(),
        Some(0),
        "foreign weighting must reject the seeds: {raw}"
    );
    importer.shutdown();
}
