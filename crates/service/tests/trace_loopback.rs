//! End-to-end observability tests over loopback TCP: traced solves
//! return a well-formed span tree whose stages appear in pipeline order
//! and nest their durations, the router wraps a shard's tree under its
//! own routing spans without losing the trace id, the slow-query log
//! captures deliberately slow requests, and the Prometheus exposition
//! parses and agrees with the `stats` counters.

use std::sync::Arc;
use std::time::Duration;

use mwc_graph::NodeId;
use mwc_service::json::Json;
use mwc_service::router::{self, RouterConfig, ShardSpec};
use mwc_service::{server, Catalog, Client, RouterClient, ServerConfig};

fn start_server(config: ServerConfig) -> server::ServerHandle {
    let catalog = Arc::new(Catalog::new());
    catalog.load("karate", "karate").unwrap();
    server::start(catalog, config, "127.0.0.1:0").expect("bind loopback")
}

// --- span-tree accessors (raw wire JSON) --------------------------------

fn name(node: &Json) -> &str {
    node.get("name").and_then(Json::as_str).unwrap()
}

fn start_us(node: &Json) -> u64 {
    node.get("start_us").and_then(Json::as_u64).unwrap()
}

fn dur_us(node: &Json) -> u64 {
    node.get("dur_us").and_then(Json::as_u64).unwrap()
}

fn children(node: &Json) -> &[Json] {
    node.get("children").and_then(Json::as_array).unwrap_or(&[])
}

fn child<'a>(node: &'a Json, want: &str) -> Option<&'a Json> {
    children(node).iter().find(|c| name(c) == want)
}

fn counter(node: &Json, key: &str) -> Option<u64> {
    node.get("counters")?.get(key)?.as_u64()
}

/// The traced-solve contract: the inline tree carries a trace id, drops
/// nothing, roots at `solve`, and its children are the pipeline stages
/// in submission order with durations that sum to at most the root's.
/// Tracing must not perturb the answer.
#[test]
fn traced_solve_returns_pipeline_span_tree() {
    let handle = start_server(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let q: &[NodeId] = &[11, 24, 25, 29];

    // Traced solve first: the cold miss exercises the full pipeline
    // (a later repeat would short-circuit at `cache_lookup`).
    let (traced, tree) = client
        .solve_traced("karate", "ws-q", q, None, None, false)
        .unwrap();
    let plain = client
        .solve_opts("karate", "ws-q", q, None, None, true)
        .unwrap();
    assert_eq!(plain.connector, traced.connector, "tracing changed answer");
    assert_eq!(plain.wiener_index, traced.wiener_index);

    let tree = tree.expect("trace:true returns an inline tree");
    let trace_id = tree.get("trace_id").and_then(Json::as_str).unwrap();
    assert_eq!(trace_id.len(), 16, "server-pinned id is 16 hex: {trace_id}");
    assert!(trace_id.chars().all(|c| c.is_ascii_hexdigit()));
    assert_eq!(tree.get("dropped").and_then(Json::as_u64), Some(0));

    let root = tree.get("root").unwrap();
    assert_eq!(name(root), "solve");
    assert_eq!(start_us(root), 0, "root starts at the request origin");

    // Every expected stage is present, in pipeline order. (The coalesced
    // and direct paths differ only in an optional `coalesce_wait` between
    // admission and the engine stages, so order is checked on the stages'
    // first occurrences rather than on fixed child indices. `feasibility`
    // is checked for presence and containment only: ws-q folds the
    // feasibility batches into the shared multi-source sweeps, so its
    // span can start inside `root_sweep`'s window.)
    let expected = [
        "admission",
        "cache_lookup",
        "root_sweep",
        "evaluate",
        "serialize",
    ];
    let mut last = 0u64;
    for stage in expected {
        let span =
            child(root, stage).unwrap_or_else(|| panic!("stage {stage} missing from {tree}"));
        assert!(
            start_us(span) >= last,
            "{stage} starts at {} before the previous stage at {last}",
            start_us(span)
        );
        last = start_us(span);
        assert!(
            start_us(span) + dur_us(span) <= start_us(root) + dur_us(root),
            "{stage} extends past its parent"
        );
    }
    let feas = child(root, "feasibility")
        .unwrap_or_else(|| panic!("stage feasibility missing from {tree}"));
    assert!(start_us(feas) + dur_us(feas) <= start_us(root) + dur_us(root));

    // Sibling stages of a traced solve never overlap, so their durations
    // sum to at most the root's.
    let sum: u64 = children(root).iter().map(dur_us).sum();
    assert!(
        sum <= dur_us(root),
        "children sum {sum}us > root {}us",
        dur_us(root)
    );

    // Kernel counters surface on the sweep span; the fresh solve misses
    // the cache.
    let sweep = child(root, "root_sweep").unwrap();
    assert!(counter(sweep, "roots").unwrap() >= 1);
    assert!(counter(sweep, "lanes").is_some());
    assert_eq!(
        counter(child(root, "cache_lookup").unwrap(), "hit"),
        Some(0)
    );

    // An untraced solve stays untraced: no tree rides along.
    let raw = client
        .roundtrip_line(r#"{"cmd":"solve","graph":"karate","solver":"ws-q","q":[0,33]}"#)
        .unwrap();
    assert!(!raw.contains("\"trace\""), "untraced response grew a tree");
    handle.shutdown();
}

/// A traced request through the router keeps its caller-chosen trace id
/// across the process hop, and the shard's tree comes back nested under
/// the router's `route` → `backend_rtt` spans with composing durations.
#[test]
fn router_wraps_shard_tree_under_route_spans_with_same_id() {
    let shards: Vec<server::ServerHandle> = (0..2)
        .map(|_| {
            server::start(
                Arc::new(Catalog::new()),
                ServerConfig::default(),
                "127.0.0.1:0",
            )
            .expect("bind shard")
        })
        .collect();
    let specs: Vec<ShardSpec> = shards
        .iter()
        .enumerate()
        .map(|(i, h)| ShardSpec::new(format!("shard-{i}"), h.local_addr().to_string()))
        .collect();
    let tier = router::start(specs, RouterConfig::default(), "127.0.0.1:0").expect("bind router");
    let mut client = RouterClient::connect(tier.local_addr()).unwrap();
    client.load("g0", "ba:200x2").unwrap();
    let owner = tier.ring().route("g0").to_string();

    let raw = client
        .inner()
        .roundtrip_line(
            r#"{"cmd":"solve","graph":"g0","solver":"ws-q","q":[0,199],"trace":true,"trace_id":"cafe0123cafe0123","id":"t1"}"#,
        )
        .unwrap();
    let v = mwc_service::json::parse(raw.trim()).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{raw}");
    let tree = v.get("trace").expect("routed trace rides inline");
    assert_eq!(
        tree.get("trace_id").and_then(Json::as_str),
        Some("cafe0123cafe0123"),
        "trace id must survive the router → shard hop"
    );

    let route = tree.get("root").unwrap();
    assert_eq!(name(route), "route");
    let rtt = child(route, "backend_rtt").expect("router annotates the forward");
    assert_eq!(
        rtt.get("shard").and_then(Json::as_str),
        Some(owner.as_str()),
        "backend_rtt names the owning shard"
    );
    let solve = child(rtt, "solve").expect("shard tree nests under backend_rtt");
    assert!(child(solve, "root_sweep").is_some(), "shard stages survive");

    // Clocks across processes are unsynchronized; only durations compose.
    assert!(dur_us(solve) <= dur_us(rtt), "shard solve exceeds the rtt");
    assert!(dur_us(rtt) <= dur_us(route), "rtt exceeds the route total");

    tier.shutdown();
    for s in shards {
        s.shutdown();
    }
}

/// The always-on slow-query ring: a deliberately slow request lands in
/// the log with its duration and shape, fast requests stay out, and the
/// `slowlog` command serves entries newest-first.
#[test]
fn slowlog_captures_slow_requests_and_skips_fast_ones() {
    let config = ServerConfig {
        slowlog_threshold: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let handle = start_server(config);
    let mut client = Client::connect(handle.local_addr()).unwrap();

    client
        .solve("karate", "ws-q", &[0, 33], None, None)
        .unwrap(); // fast: stays out
    client.burn(350).unwrap(); // slow: logged

    let entries = client.slowlog(None).unwrap();
    assert_eq!(entries.len(), 1, "only the burn crosses 200ms: {entries:?}");
    let e = &entries[0];
    assert_eq!(e.get("cmd").and_then(Json::as_str), Some("burn"));
    assert_eq!(e.get("burn_ms").and_then(Json::as_u64), Some(350));
    assert_eq!(e.get("ok").and_then(Json::as_bool), Some(true));
    assert!(e.get("total_ms").and_then(Json::as_f64).unwrap() >= 350.0);
    assert!(e.get("age_s").and_then(Json::as_f64).is_some());

    // A second slow request surfaces first (newest-first), and `limit`
    // caps the answer.
    client.burn(250).unwrap();
    let entries = client.slowlog(None).unwrap();
    assert_eq!(entries.len(), 2);
    assert_eq!(entries[0].get("burn_ms").and_then(Json::as_u64), Some(250));
    assert_eq!(client.slowlog(Some(1)).unwrap().len(), 1);
    handle.shutdown();
}

/// With a zero threshold every request is logged, and a traced solve's
/// slowlog entry carries the same trace id the caller pinned — the
/// cross-exposure join key.
#[test]
fn slowlog_entries_join_traces_by_id() {
    let config = ServerConfig {
        slowlog_threshold: Duration::ZERO,
        ..ServerConfig::default()
    };
    let handle = start_server(config);
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let raw = client
        .roundtrip_line(
            r#"{"cmd":"solve","graph":"karate","solver":"ws-q","q":[0,33],"trace":true,"trace_id":"feed4567feed4567"}"#,
        )
        .unwrap();
    assert!(raw.contains("\"ok\":true"), "{raw}");

    let entries = client.slowlog(None).unwrap();
    let entry = entries
        .iter()
        .find(|e| e.get("trace_id").and_then(Json::as_str) == Some("feed4567feed4567"))
        .unwrap_or_else(|| panic!("traced solve missing from {entries:?}"));
    assert_eq!(entry.get("cmd").and_then(Json::as_str), Some("solve"));
    assert_eq!(entry.get("graph").and_then(Json::as_str), Some("karate"));
    assert_eq!(entry.get("solver").and_then(Json::as_str), Some("ws-q"));
    assert_eq!(entry.get("q_len").and_then(Json::as_u64), Some(2));
    handle.shutdown();
}

/// The `metrics` command emits parseable Prometheus text whose counters
/// agree with the `stats` document, including the per-stage histograms
/// the tracing pipeline feeds.
#[test]
fn metrics_exposition_parses_and_matches_stats() {
    let handle = start_server(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    for _ in 0..3 {
        client
            .solve("karate", "ws-q", &[11, 24, 25, 29], None, None)
            .unwrap();
    }
    assert!(client.solve("karate", "ws-q", &[999], None, None).is_err());

    let text = client.metrics_text().unwrap();
    let mut requests_total = None;
    for line in text.lines().filter(|l| !l.is_empty()) {
        if let Some(comment) = line.strip_prefix('#') {
            assert!(
                comment.starts_with(" HELP ") || comment.starts_with(" TYPE "),
                "bad comment line: {line}"
            );
            continue;
        }
        // Sample lines are `name[{labels}] value` with a float value.
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without value: {line}");
        });
        assert!(!series.is_empty(), "empty series name: {line}");
        let parsed: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value in: {line}"));
        assert!(parsed >= 0.0, "negative sample: {line}");
        if series == "mwc_requests_total" {
            requests_total = Some(parsed as u64);
        }
    }
    let requests_total = requests_total.expect("exposition carries mwc_requests_total");
    assert!(requests_total >= 4, "4 solves issued, saw {requests_total}");

    // The stage histograms the tracing pipeline feeds are exposed.
    for stage in ["admission", "solve", "serialize", "write"] {
        assert!(
            text.contains(&format!(
                "mwc_stage_duration_seconds_count{{stage=\"{stage}\"}}"
            )),
            "stage {stage} missing from exposition"
        );
    }
    assert!(text.contains("mwc_solve_duration_seconds_bucket{solver=\"ws-q\",le=\"+Inf\"}"));

    // Exposition and stats agree (stats runs one request later, so it
    // may only ever be ahead).
    let stats = client.stats().unwrap();
    let stats_total = stats
        .get("requests")
        .unwrap()
        .get("total")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(
        stats_total >= requests_total && stats_total <= requests_total + 2,
        "stats total {stats_total} vs exposition {requests_total}"
    );
    let live = stats
        .get("process")
        .unwrap()
        .get("connections_live")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(live >= 1, "this very connection is live");
    assert!(text.contains("mwc_connections_live"));
    assert!(text.contains("mwc_uptime_seconds"));
    handle.shutdown();
}
