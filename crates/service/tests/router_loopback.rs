//! End-to-end sharded-serving tests: 2–3 in-process `mwc-server` shards
//! behind an in-process `mwc-router`, driven over real loopback TCP.
//! Routed results are pinned against direct catalog-entry calls on
//! identically constructed graphs, and the failure contract is exercised
//! by actually killing a shard.

use std::sync::Arc;
use std::time::Duration;

use mwc_core::QueryOptions;
use mwc_graph::NodeId;
use mwc_service::router::{self, RouterConfig, ShardSpec};
use mwc_service::{server, Catalog, Client, ClientError, HashRing, RouterClient, ServerConfig};

/// Names that the default ring spreads over ≥ 2 of `shard-0..2` (found
/// deterministically at test time, so the test never goes stale against
/// the hash function).
fn graphs_on_distinct_shards(ring: &HashRing, want: usize) -> Vec<(String, String)> {
    let mut picked: Vec<(String, String)> = Vec::new(); // (graph, shard)
    for i in 0.. {
        let name = format!("g{i}");
        let shard = ring.route(&name).to_string();
        if picked.iter().all(|(_, s)| *s != shard) {
            picked.push((name, shard));
            if picked.len() == want {
                break;
            }
        }
        assert!(i < 10_000, "ring never spread {want} names");
    }
    picked
}

struct Tier {
    shards: Vec<server::ServerHandle>,
    router: router::RouterHandle,
}

/// Starts `n` empty shards and a router over them. Graphs are loaded
/// through the router so placement always matches the ring.
fn start_tier(n: usize, config: RouterConfig) -> Tier {
    let shards: Vec<server::ServerHandle> = (0..n)
        .map(|_| {
            server::start(
                Arc::new(Catalog::new()),
                ServerConfig::default(),
                "127.0.0.1:0",
            )
            .expect("bind shard")
        })
        .collect();
    let specs: Vec<ShardSpec> = shards
        .iter()
        .enumerate()
        .map(|(i, h)| ShardSpec::new(format!("shard-{i}"), h.local_addr().to_string()))
        .collect();
    let router = router::start(specs, config, "127.0.0.1:0").expect("bind router");
    Tier { shards, router }
}

const QUERIES: &[&[NodeId]] = &[&[0, 199], &[7, 61, 150], &[42, 84, 126, 168], &[3, 33]];

/// Routed solves over ≥ 2 shards are identical to direct single-engine
/// calls; the `graphs` merge sees every graph with its shard annotation;
/// `shard` introspection matches where graphs actually landed.
#[test]
fn routed_solves_match_direct_engine_calls() {
    let tier = start_tier(3, RouterConfig::default());
    let mut client = RouterClient::connect(tier.router.local_addr()).unwrap();

    // Pick graph names that the ring provably spreads across 2+ shards.
    let placed = graphs_on_distinct_shards(&tier.router.ring(), 2);
    let spec = "ba:200x2";
    for (name, _) in &placed {
        let (nodes, _) = client.load(name, spec).unwrap();
        assert_eq!(nodes, 200);
    }

    // Reference: direct entries, built from the same deterministic spec.
    let reference = Catalog::new();
    for (name, _) in &placed {
        reference.load(name, spec).unwrap();
    }

    for (name, _) in &placed {
        for solver in ["ws-q", "ws-q+ls", "st"] {
            for q in QUERIES {
                let wire = client.solve(name, solver, q, None, None).unwrap();
                let direct = reference
                    .get(name)
                    .unwrap()
                    .solve(solver, q, &QueryOptions::default())
                    .unwrap();
                assert_eq!(
                    wire.connector,
                    direct.connector.vertices(),
                    "{solver} on {name} {q:?} diverged through the router"
                );
                assert_eq!(wire.wiener_index, direct.wiener_index);
            }
        }
    }

    // The merged graphs listing carries every graph, each annotated with
    // the shard the ring assigned (pinned via raw JSON: the typed client
    // drops unknown fields).
    let raw = client
        .inner()
        .roundtrip_line(r#"{"cmd":"graphs"}"#)
        .unwrap();
    let v = mwc_service::json::parse(raw.trim()).unwrap();
    let listed = v.get("graphs").unwrap().as_array().unwrap();
    assert_eq!(listed.len(), placed.len());
    for (name, shard) in &placed {
        let entry = listed
            .iter()
            .find(|g| g.get("name").and_then(|n| n.as_str()) == Some(name))
            .unwrap_or_else(|| panic!("{name} missing from merged listing"));
        assert_eq!(entry.get("shard").unwrap().as_str(), Some(shard.as_str()));
        // And the shard really holds it: ask that backend directly.
        let idx: usize = shard.strip_prefix("shard-").unwrap().parse().unwrap();
        let direct_graphs = Client::connect(tier.shards[idx].local_addr())
            .unwrap()
            .graphs()
            .unwrap();
        assert!(direct_graphs.iter().any(|g| g.name == *name));
    }

    // Introspection agrees with placement and reports healthy shards.
    let info = client.shard_info(Some(&placed[0].0)).unwrap();
    assert_eq!(
        info.get("assignment")
            .unwrap()
            .get("shard")
            .unwrap()
            .as_str(),
        Some(placed[0].1.as_str())
    );
    assert_eq!(
        info.get("ring").unwrap().get("shards").unwrap().as_u64(),
        Some(3)
    );
    let shards = info.get("shards").unwrap().as_array().unwrap();
    assert_eq!(shards.len(), 3);
    assert!(shards
        .iter()
        .all(|s| s.get("healthy").unwrap().as_bool() == Some(true)));

    tier.router.shutdown();
    for s in tier.shards {
        s.shutdown();
    }
}

/// A batch spanning shards comes back in request order, entry for entry
/// equal to direct per-entry solves, with per-entry errors in place.
#[test]
fn batch_fans_out_and_preserves_request_order() {
    let tier = start_tier(3, RouterConfig::default());
    let mut client = Client::connect(tier.router.local_addr()).unwrap();

    let placed = graphs_on_distinct_shards(&tier.router.ring(), 3);
    let spec = "ba:200x2";
    for (name, _) in &placed {
        client.load(name, spec).unwrap();
    }
    let reference = Catalog::new();
    for (name, _) in &placed {
        reference.load(name, spec).unwrap();
    }

    // Interleave graphs so consecutive entries land on different shards,
    // include an infeasible entry and an unknown graph — both must come
    // back *in place*, not reordered or dropped.
    let mut entries: Vec<(String, Vec<NodeId>)> = Vec::new();
    for round in QUERIES.iter().take(3) {
        for (name, _) in &placed {
            entries.push((name.clone(), round.to_vec()));
        }
    }
    entries.insert(2, (placed[0].0.clone(), vec![9999])); // infeasible
    entries.insert(5, ("atlantis".to_string(), vec![0, 1])); // unknown graph

    let line = {
        let mut queries = String::new();
        for (i, (graph, q)) in entries.iter().enumerate() {
            if i > 0 {
                queries.push(',');
            }
            let ids: Vec<String> = q.iter().map(|v| v.to_string()).collect();
            queries.push_str(&format!(r#"{{"graph":"{graph}","q":[{}]}}"#, ids.join(",")));
        }
        format!(r#"{{"cmd":"batch","solver":"ws-q","queries":[{queries}],"id":"b1"}}"#)
    };
    let raw = client.roundtrip_line(&line).unwrap();
    let v = mwc_service::json::parse(raw.trim()).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("id").unwrap().as_str(), Some("b1"));
    let reports = v.get("reports").unwrap().as_array().unwrap();
    assert_eq!(reports.len(), entries.len());
    assert_eq!(
        v.get("solved").unwrap().as_u64(),
        Some(entries.len() as u64 - 2)
    );

    for (i, ((graph, q), report)) in entries.iter().zip(reports).enumerate() {
        match report.get("error") {
            Some(err) => {
                let code = err.get("code").unwrap().as_str().unwrap();
                if graph == "atlantis" {
                    assert_eq!(code, "unknown_graph", "entry {i}");
                } else {
                    assert_eq!(code, "infeasible", "entry {i}");
                }
            }
            None => {
                let direct = reference
                    .get(graph)
                    .unwrap()
                    .solve("ws-q", q, &QueryOptions::default())
                    .unwrap();
                let connector: Vec<u64> = report
                    .get("connector")
                    .unwrap()
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|x| x.as_u64().unwrap())
                    .collect();
                let want: Vec<u64> = direct
                    .connector
                    .vertices()
                    .iter()
                    .map(|&v| u64::from(v))
                    .collect();
                assert_eq!(connector, want, "entry {i} ({graph} {q:?}) out of order");
                assert_eq!(
                    report.get("wiener_index").unwrap().as_u64(),
                    Some(direct.wiener_index),
                    "entry {i}"
                );
            }
        }
    }

    tier.router.shutdown();
    for s in tier.shards {
        s.shutdown();
    }
}

/// Malformed lines and single-server-only commands get structured errors
/// through the router, and the connection keeps serving.
#[test]
fn malformed_requests_get_structured_errors_via_router() {
    let tier = start_tier(2, RouterConfig::default());
    let mut client = Client::connect(tier.router.local_addr()).unwrap();
    client.load("g0", "karate").unwrap();

    for (line, code) in [
        ("this is not json", "bad_request"),
        ("[1,2,3]", "bad_request"),
        (r#"{"cmd":"teleport"}"#, "bad_request"),
        (
            r#"{"cmd":"solve","graph":"g0","solver":"ws-q"}"#,
            "bad_request",
        ),
        (
            r#"{"cmd":"batch","solver":"st","queries":[[0,1]]}"#,
            "bad_request",
        ),
        (
            // Routed to whichever shard owns "nope": the backend's own
            // error code passes through verbatim.
            r#"{"cmd":"solve","graph":"nope","solver":"ws-q","q":[0,1]}"#,
            "unknown_graph",
        ),
        (
            r#"{"cmd":"solve","graph":"g0","solver":"quantum","q":[0,1]}"#,
            "unknown_solver",
        ),
    ] {
        let response = client.roundtrip_line(line).unwrap();
        let v = mwc_service::json::parse(response.trim()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false), "{line}");
        assert_eq!(
            v.get("error").unwrap().get("code").unwrap().as_str(),
            Some(code),
            "{line}"
        );
    }
    // The id survives salvage through the router too.
    let response = client
        .roundtrip_line(r#"{"cmd":"warp","id":"r9"}"#)
        .unwrap();
    let v = mwc_service::json::parse(response.trim()).unwrap();
    assert_eq!(v.get("id").unwrap().as_str(), Some("r9"));
    // Still serving.
    client.ping().unwrap();
    client.solve("g0", "ws-q", &[0, 33], None, None).unwrap();

    tier.router.shutdown();
    for s in tier.shards {
        s.shutdown();
    }
}

/// Killing a shard yields `shard_unavailable` (promptly — not a hang),
/// surviving shards keep serving, the stats merge marks the dead shard,
/// and after enough failures the shard is ejected and fails fast.
#[test]
fn shard_kill_maps_to_shard_unavailable_and_survivors_serve() {
    let config = RouterConfig {
        fail_threshold: 2,
        reprobe_interval: Duration::from_millis(100),
        ..RouterConfig::default()
    };
    let tier = start_tier(2, config);
    let mut client = Client::connect(tier.router.local_addr()).unwrap();

    let placed = graphs_on_distinct_shards(&tier.router.ring(), 2);
    let spec = "ba:200x2";
    for (name, _) in &placed {
        client.load(name, spec).unwrap();
    }
    let (victim_graph, victim_shard) = placed[0].clone();
    let (survivor_graph, _) = placed[1].clone();

    // Kill the shard that owns `victim_graph`.
    let victim_idx: usize = victim_shard
        .strip_prefix("shard-")
        .unwrap()
        .parse()
        .unwrap();
    let mut shards = tier.shards;
    let victim = shards.remove(victim_idx);
    victim.shutdown();

    // Its graphs fail with the stable code, promptly.
    let started = std::time::Instant::now();
    match client.solve(&victim_graph, "ws-q", &[0, 199], None, None) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "shard_unavailable", "{e}"),
        other => panic!("expected shard_unavailable, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "dead shard stalled the router for {:?}",
        started.elapsed()
    );

    // Surviving shards keep serving the same connection.
    let ok = client
        .solve(&survivor_graph, "ws-q", &[0, 199], None, None)
        .unwrap();
    assert!(ok.connector.len() >= 2);

    // A batch spanning both: survivor entries answered, victim entries
    // carry shard_unavailable in place.
    let entries = [
        (survivor_graph.clone(), vec![0u32, 199]),
        (victim_graph.clone(), vec![0u32, 199]),
        (survivor_graph.clone(), vec![7u32, 61]),
    ];
    let mut queries = String::new();
    for (i, (g, q)) in entries.iter().enumerate() {
        if i > 0 {
            queries.push(',');
        }
        let ids: Vec<String> = q.iter().map(|v| v.to_string()).collect();
        queries.push_str(&format!(r#"{{"graph":"{g}","q":[{}]}}"#, ids.join(",")));
    }
    let raw = client
        .roundtrip_line(&format!(
            r#"{{"cmd":"batch","solver":"st","queries":[{queries}]}}"#
        ))
        .unwrap();
    let v = mwc_service::json::parse(raw.trim()).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    let reports = v.get("reports").unwrap().as_array().unwrap();
    assert_eq!(reports.len(), 3);
    assert!(reports[0].get("error").is_none(), "survivor entry 0 failed");
    assert_eq!(
        reports[1]
            .get("error")
            .unwrap()
            .get("code")
            .unwrap()
            .as_str(),
        Some("shard_unavailable")
    );
    assert!(reports[2].get("error").is_none(), "survivor entry 2 failed");
    assert_eq!(v.get("solved").unwrap().as_u64(), Some(2));

    // After fail_threshold failures the shard ejects: introspection and
    // the stats merge both report it, and requests fail fast.
    for _ in 0..2 {
        let _ = client.solve(&victim_graph, "ws-q", &[0, 199], None, None);
    }
    let mut rclient = RouterClient::connect(tier.router.local_addr()).unwrap();
    let info = rclient.shard_info(None).unwrap();
    let shard_entries = info.get("shards").unwrap().as_array().unwrap();
    let dead = shard_entries
        .iter()
        .find(|s| s.get("name").unwrap().as_str() == Some(victim_shard.as_str()))
        .unwrap();
    assert_eq!(dead.get("healthy").unwrap().as_bool(), Some(false));
    let fast = std::time::Instant::now();
    match client.solve(&victim_graph, "ws-q", &[0, 199], None, None) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "shard_unavailable"),
        other => panic!("expected fast-fail, got {other:?}"),
    }
    assert!(
        fast.elapsed() < Duration::from_millis(500),
        "ejected shard did not fail fast: {:?}",
        fast.elapsed()
    );

    // The merged stats mark the dead shard and still aggregate the rest.
    let stats = client.stats().unwrap();
    let per_shard = stats.get("shards").unwrap();
    assert_eq!(
        per_shard
            .get(&victim_shard)
            .unwrap()
            .get("unavailable")
            .unwrap()
            .as_bool(),
        Some(true)
    );
    let aggregate = stats.get("aggregate").unwrap();
    assert!(
        aggregate
            .get("requests")
            .unwrap()
            .get("ok")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1,
        "aggregate lost the survivors' counters"
    );
    let router_section = stats.get("router").unwrap();
    assert!(
        router_section
            .get("requests")
            .unwrap()
            .get("shard_unavailable")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1
    );

    tier.router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

/// The stats merge sums backend counters: drive a known number of solves
/// through two shards and check the aggregate equals the per-shard sum.
#[test]
fn stats_merge_aggregates_across_shards() {
    let tier = start_tier(2, RouterConfig::default());
    let mut client = Client::connect(tier.router.local_addr()).unwrap();
    let placed = graphs_on_distinct_shards(&tier.router.ring(), 2);
    for (name, _) in &placed {
        client.load(name, "ba:200x2").unwrap();
    }
    for (name, _) in &placed {
        for q in QUERIES {
            client.solve(name, "st", q, None, None).unwrap();
        }
    }
    let stats = client.stats().unwrap();
    let aggregate = stats.get("aggregate").unwrap();
    let shards_doc = stats.get("shards").unwrap();
    for field in ["total", "ok", "error"] {
        let agg = aggregate
            .get("requests")
            .unwrap()
            .get(field)
            .unwrap()
            .as_u64()
            .unwrap();
        let sum: u64 = ["shard-0", "shard-1"]
            .iter()
            .map(|s| {
                shards_doc
                    .get(s)
                    .unwrap()
                    .get("requests")
                    .unwrap()
                    .get(field)
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .sum();
        // The two fan-out `stats` sub-requests that build this very
        // response race with the snapshot; allow that slack on `total`.
        assert!(
            agg >= sum.saturating_sub(2) && agg <= sum + 2,
            "aggregate {field} = {agg}, per-shard sum = {sum}"
        );
    }
    // 8 routed solves happened in total, on whichever shard owns each.
    let ok_total = aggregate
        .get("requests")
        .unwrap()
        .get("ok")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(
        ok_total >= 8,
        "expected ≥ 8 ok backend responses: {ok_total}"
    );
    // Solve-cache counters aggregate too (8 distinct queries → 8 misses).
    assert!(
        aggregate
            .get("solve_cache")
            .unwrap()
            .get("misses")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 8
    );
    // The TTL `expired` counter is on the wire end-to-end (zero here).
    assert_eq!(
        aggregate
            .get("solve_cache")
            .unwrap()
            .get("expired")
            .unwrap()
            .as_u64(),
        Some(0)
    );

    tier.router.shutdown();
    for s in tier.shards {
        s.shutdown();
    }
}

/// RouterClient heals a resharding window: a shard that dies and comes
/// back (same address) is re-admitted by the reprobe loop, and the
/// retrying client rides through without surfacing an error.
#[test]
fn router_client_retries_through_shard_recovery() {
    let config = RouterConfig {
        fail_threshold: 1, // eject on the first failure
        reprobe_interval: Duration::from_millis(50),
        ..RouterConfig::default()
    };
    let tier = start_tier(2, config);
    let mut client = RouterClient::connect(tier.router.local_addr())
        .unwrap()
        .with_retry(20, Duration::from_millis(50));

    let placed = graphs_on_distinct_shards(&tier.router.ring(), 2);
    for (name, _) in &placed {
        client.load(name, "karate").unwrap();
    }
    let (victim_graph, victim_shard) = placed[0].clone();
    let victim_idx: usize = victim_shard
        .strip_prefix("shard-")
        .unwrap()
        .parse()
        .unwrap();

    // Kill the owning shard, remembering its address, and eject it.
    let mut shards = tier.shards;
    let victim = shards.remove(victim_idx);
    let victim_addr = victim.local_addr();
    victim.shutdown();
    let plain_err = Client::connect(tier.router.local_addr()).unwrap().solve(
        &victim_graph,
        "ws-q",
        &[0, 33],
        None,
        None,
    );
    match plain_err {
        Err(ClientError::Server(e)) => assert_eq!(e.code, "shard_unavailable"),
        other => panic!("expected shard_unavailable, got {other:?}"),
    }

    // Restart a shard on the same address (a reshard/restart event) in
    // the background while the retrying client is already asking.
    let restarter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(200));
        let catalog = Arc::new(Catalog::new());
        catalog.load(&victim_graph, "karate").unwrap();
        server::start(catalog, ServerConfig::default(), victim_addr).expect("rebind victim addr")
    });
    let report = client
        .solve(&placed[0].0, "ws-q", &[0, 33], None, None)
        .expect("retrying client should ride through the restart");
    assert!(report.connector.contains(&0) && report.connector.contains(&33));
    let revived = restarter.join().unwrap();

    tier.router.shutdown();
    revived.shutdown();
    for s in shards {
        s.shutdown();
    }
}

/// With R = 2, killing one replica must be invisible to readers: every
/// solve (and batch entry) falls through to the surviving copy with
/// zero `shard_unavailable`, both before and after the dead shard is
/// ejected.
#[test]
fn replica_reads_survive_one_shard_kill() {
    let config = RouterConfig {
        replicas: 2,
        fail_threshold: 2,
        reprobe_interval: Duration::from_millis(100),
        ..RouterConfig::default()
    };
    let tier = start_tier(3, config);
    let mut client = Client::connect(tier.router.local_addr()).unwrap();

    // Loads fan out: the raw response acks both replica copies.
    let graph = "replicated";
    let raw = client
        .roundtrip_line(&format!(
            r#"{{"cmd":"load","name":"{graph}","source":"ba:200x2"}}"#
        ))
        .unwrap();
    let v = mwc_service::json::parse(raw.trim()).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    let acks = v.get("replicas").unwrap().as_array().unwrap();
    assert_eq!(acks.len(), 2, "R=2 load must ack two replicas");
    assert!(acks
        .iter()
        .all(|a| a.get("ok").unwrap().as_bool() == Some(true)));
    let holders: Vec<String> = acks
        .iter()
        .map(|a| a.get("shard").unwrap().as_str().unwrap().to_string())
        .collect();

    // Kill the graph's *primary* replica — the worst case for readers.
    let primary = tier.router.ring().route(graph).to_string();
    assert!(holders.contains(&primary));
    let primary_idx: usize = primary.strip_prefix("shard-").unwrap().parse().unwrap();
    let mut shards = tier.shards;
    let victim = shards.remove(primary_idx);
    victim.shutdown();

    // Every read succeeds — across enough attempts to straddle the
    // ejection threshold, so both the fall-through path (primary still
    // tried first) and the ejected path (survivor tried first) run.
    for round in 0..4 {
        for q in QUERIES {
            client
                .solve(graph, "st", q, None, None)
                .unwrap_or_else(|e| {
                    panic!("read failed with one replica down (round {round}): {e}")
                });
        }
    }
    let raw = client
        .roundtrip_line(&format!(
            r#"{{"cmd":"batch","solver":"st","queries":[{{"graph":"{graph}","q":[0,199]}},{{"graph":"{graph}","q":[7,61]}}]}}"#
        ))
        .unwrap();
    let v = mwc_service::json::parse(raw.trim()).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("solved").unwrap().as_u64(), Some(2));

    // Zero shard_unavailable; the fall-throughs were counted instead.
    let stats = client.stats().unwrap();
    let requests = stats.get("router").unwrap().get("requests").unwrap();
    assert_eq!(
        requests.get("shard_unavailable").unwrap().as_u64(),
        Some(0),
        "reads leaked shard_unavailable despite a live replica"
    );
    assert!(
        requests.get("read_fallthrough").unwrap().as_u64().unwrap() >= 1,
        "killing the primary should have forced at least one fall-through"
    );

    tier.router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

/// A live `reshard` migrates graphs to the joining shard *warm*: the
/// source spec and the solve cache stream over before routing flips, so
/// the new owner's first solve of a previously-hot query is a cache hit
/// — zero cold solves — and readers never see an error.
#[test]
fn reshard_streams_warm_caches_to_the_new_owner() {
    let tier = start_tier(2, RouterConfig::default());
    let mut client = Client::connect(tier.router.local_addr()).unwrap();

    // Pick names the *post-reshard* ring will hand to the joining shard.
    let old_ring = tier.router.ring();
    let grown = HashRing::new(
        &[
            "shard-0".to_string(),
            "shard-1".to_string(),
            "shard-2".to_string(),
        ],
        old_ring.vnodes(),
    );
    let moving = (0..)
        .map(|i| format!("m{i}"))
        .find(|name| grown.route(name) == "shard-2")
        .unwrap();
    let staying = (0..)
        .map(|i| format!("s{i}"))
        .find(|name| grown.route(name) != "shard-2")
        .unwrap();

    for name in [&moving, &staying] {
        client.load(name, "ba:200x2").unwrap();
    }
    // Warm the moving graph's cache with real traffic.
    for q in QUERIES {
        client.solve(&moving, "ws-q", q, None, None).unwrap();
    }

    // Join a fresh, empty shard and flip the ring live.
    let joiner = server::start(
        Arc::new(Catalog::new()),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let raw = client
        .roundtrip_line(&format!(
            r#"{{"cmd":"reshard","add":{{"name":"shard-2","addr":"{}"}}}}"#,
            joiner.local_addr()
        ))
        .unwrap();
    let v = mwc_service::json::parse(raw.trim()).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{raw}");
    assert_eq!(v.get("resharded").unwrap().as_bool(), Some(true));
    assert!(
        v.get("streamed_cache_entries").unwrap().as_u64().unwrap() >= QUERIES.len() as u64,
        "warm cache entries did not stream: {raw}"
    );
    let migrated = v.get("migrated").unwrap().as_array().unwrap();
    assert!(
        migrated.iter().any(
            |m| m.get("graph").unwrap().as_str() == Some(moving.as_str())
                && m.get("to").unwrap().as_str() == Some("shard-2")
        ),
        "expected {moving} to migrate to shard-2: {raw}"
    );
    assert_eq!(tier.router.ring().route(&moving), "shard-2");

    // Replaying the warmed queries through the router now lands on the
    // joiner and hits only: its cache had the answers before the flip.
    for q in QUERIES {
        client.solve(&moving, "ws-q", q, None, None).unwrap();
    }
    let joiner_stats = Client::connect(joiner.local_addr())
        .unwrap()
        .stats()
        .unwrap();
    let cache = joiner_stats.get("solve_cache").unwrap();
    assert!(
        cache.get("hits").unwrap().as_u64().unwrap() >= QUERIES.len() as u64,
        "new owner served cold: {joiner_stats}"
    );
    assert_eq!(
        cache.get("misses").unwrap().as_u64(),
        Some(0),
        "zero cold solves on the new owner after a warm handoff"
    );
    // The staying graph still answers, untouched.
    client
        .solve(&staying, "ws-q", &[0, 199], None, None)
        .unwrap();

    tier.router.shutdown();
    joiner.shutdown();
    for s in tier.shards {
        s.shutdown();
    }
}
