//! Loopback tests for cross-request solve coalescing: real concurrent
//! clients over TCP, windows wide enough to provably gather their
//! requests, and every coalesced answer pinned bit-identical to an
//! uncoalesced direct engine call on an identically constructed graph.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use mwc_core::QueryOptions;
use mwc_graph::NodeId;
use mwc_service::coalesce::CoalesceConfig;
use mwc_service::{server, Catalog, Client, ClientError, ServerConfig};

/// A server with solve caches disabled (so parity and sharing are about
/// coalescing, not cache hits) and the given flush window.
fn start_server(window: Duration, enabled: bool) -> server::ServerHandle {
    let catalog = Arc::new(Catalog::new().with_solve_cache_bytes(0));
    catalog.load("karate", "karate").unwrap();
    catalog.load("toy", "ba:600x3").unwrap();
    let config = ServerConfig {
        // Enough workers that concurrent requests actually meet inside a
        // window even on a single-core CI box (workers defaults to the
        // core count, and one worker serializes every window to size 1).
        workers: 8,
        coalesce: CoalesceConfig {
            enabled,
            window,
            ..CoalesceConfig::default()
        },
        ..ServerConfig::default()
    };
    server::start(catalog, config, "127.0.0.1:0").expect("bind loopback")
}

fn reference_catalog() -> Catalog {
    let reference = Catalog::new().with_solve_cache_bytes(0);
    reference.load("karate", "karate").unwrap();
    reference.load("toy", "ba:600x3").unwrap();
    reference
}

/// Every registered solver, mixed solvers and options inside shared
/// windows, against both graphs: coalesced wire answers must be
/// bit-identical to uncoalesced direct engine calls.
#[test]
fn coalesced_results_match_direct_engine_calls_for_every_solver() {
    let handle = start_server(Duration::from_millis(25), true);
    let addr = handle.local_addr();
    let solvers: Vec<String> = handle
        .catalog()
        .get("karate")
        .unwrap()
        .solver_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert!(solvers.len() >= 4, "expected a full method table");

    // One client thread per solver; the barrier lands their requests in
    // overlapping windows, so a single flush mixes solvers and options.
    let barrier = Arc::new(Barrier::new(solvers.len()));
    let threads: Vec<_> = solvers
        .iter()
        .map(|solver| {
            let solver = solver.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                let mut answers = Vec::new();
                let cases: &[(&str, &[NodeId], Option<usize>)] = &[
                    ("karate", &[0, 33], None),
                    ("karate", &[11, 24, 25, 29], None),
                    ("karate", &[3, 11, 16], Some(12)),
                    ("toy", &[0, 599], None),
                    ("toy", &[7, 150, 450], None),
                ];
                for &(graph, q, max_size) in cases {
                    match client.solve(graph, &solver, q, None, max_size) {
                        Ok(r) => answers.push((graph, q.to_vec(), max_size, Ok(r))),
                        Err(ClientError::Server(e)) => {
                            answers.push((graph, q.to_vec(), max_size, Err(e)))
                        }
                        Err(other) => panic!("transport failure: {other}"),
                    }
                }
                (solver, answers)
            })
        })
        .collect();

    let reference = reference_catalog();
    for t in threads {
        let (solver, answers) = t.join().expect("client thread");
        for (graph, q, max_size, wire) in answers {
            let mut options = QueryOptions::default();
            if let Some(m) = max_size {
                options = options.max_connector_size(m);
            }
            let direct = reference.get(graph).unwrap().solve(&solver, &q, &options);
            match (wire, direct) {
                (Ok(wire), Ok(direct)) => {
                    assert_eq!(
                        wire.connector,
                        direct.connector.vertices(),
                        "{solver} on {graph} {q:?}: coalesced connector diverged"
                    );
                    assert_eq!(wire.wiener_index, direct.wiener_index);
                    assert_eq!(wire.candidates, direct.candidates);
                    assert_eq!(wire.optimal, direct.optimal);
                }
                (Err(wire), Err(direct)) => {
                    let direct = mwc_service::ServiceError::Core(direct);
                    assert_eq!(wire.code, direct.code(), "{solver} on {graph} {q:?}");
                }
                (wire, direct) => {
                    panic!("{solver} on {graph} {q:?}: wire {wire:?} vs direct {direct:?}")
                }
            }
        }
    }

    // The windows demonstrably coalesced: requests were parked, and
    // flushes carried more than one request on average.
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    let coalesce = stats.get("coalesce").expect("stats carry coalesce section");
    assert_eq!(coalesce.get("enabled").unwrap().as_bool(), Some(true));
    let enqueued = coalesce.get("enqueued").unwrap().as_u64().unwrap();
    let flushes = coalesce.get("flush_total").unwrap().as_u64().unwrap();
    assert!(enqueued >= 10, "enqueued = {enqueued}");
    assert!(flushes >= 1 && flushes < enqueued, "flushes = {flushes}");
    assert!(
        coalesce
            .get("queue_wait")
            .unwrap()
            .get("count")
            .unwrap()
            .as_u64()
            .unwrap()
            >= enqueued
    );

    // Second phase: six ws-q clients fire distinct queries at the same
    // graph simultaneously, so one window's prefetch must union their
    // roots into shared MS-BFS sweeps (lanes shared across requests).
    let queries: Vec<Vec<NodeId>> = (0..6u32)
        .map(|i| vec![i * 7, 599 - i * 11, 100 + i * 37])
        .collect();
    let barrier = Arc::new(Barrier::new(queries.len()));
    let reference = Arc::new(reference);
    let threads: Vec<_> = queries
        .into_iter()
        .map(|q| {
            let barrier = Arc::clone(&barrier);
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                let wire = client.solve("toy", "ws-q", &q, None, None).unwrap();
                let direct = reference
                    .get("toy")
                    .unwrap()
                    .solve("ws-q", &q, &QueryOptions::default())
                    .unwrap();
                assert_eq!(wire.connector, direct.connector.vertices(), "{q:?}");
                assert_eq!(wire.wiener_index, direct.wiener_index, "{q:?}");
            })
        })
        .collect();
    for t in threads {
        t.join().expect("phase-2 client");
    }
    let stats = client.stats().unwrap();
    let coalesce = stats.get("coalesce").unwrap();
    assert!(coalesce.get("shared_sweeps").unwrap().as_u64().unwrap() >= 1);
    assert!(coalesce.get("shared_roots").unwrap().as_u64().unwrap() >= 2);
    assert!(
        coalesce
            .get("lane_occupancy_mean")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );
    handle.shutdown();
}

/// Coalescing off must behave exactly like the pre-coalescer server and
/// report an inert stats section.
#[test]
fn disabled_coalescing_serves_directly() {
    let handle = start_server(Duration::from_millis(25), false);
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let wire = client
        .solve("karate", "ws-q", &[11, 24, 25, 29], None, None)
        .unwrap();
    let direct = reference_catalog()
        .get("karate")
        .unwrap()
        .solve("ws-q", &[11, 24, 25, 29], &QueryOptions::default())
        .unwrap();
    assert_eq!(wire.connector, direct.connector.vertices());
    assert_eq!(wire.wiener_index, direct.wiener_index);
    let stats = client.stats().unwrap();
    let coalesce = stats.get("coalesce").unwrap();
    assert_eq!(coalesce.get("enabled").unwrap().as_bool(), Some(false));
    assert_eq!(coalesce.get("enqueued").unwrap().as_u64(), Some(0));
    assert_eq!(coalesce.get("flush_total").unwrap().as_u64(), Some(0));
    handle.shutdown();
}

/// A request whose deadline fits inside twice the window must bypass
/// coalescing: answered well before the window would have flushed, and
/// counted as a bypass.
#[test]
fn tight_deadlines_bypass_the_window() {
    let handle = start_server(Duration::from_millis(400), true);
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let started = Instant::now();
    let wire = client
        .solve("karate", "ws-q", &[0, 33], Some(500), None)
        .expect("bypassed solve succeeds");
    // 500 ms deadline ≤ 2×400 ms window → direct execution: the answer
    // cannot have waited out the 400 ms window.
    assert!(
        started.elapsed() < Duration::from_millis(300),
        "took {:?} — parked in the window instead of bypassing",
        started.elapsed()
    );
    let direct = reference_catalog()
        .get("karate")
        .unwrap()
        .solve("ws-q", &[0, 33], &QueryOptions::default())
        .unwrap();
    assert_eq!(wire.connector, direct.connector.vertices());
    let stats = client.stats().unwrap();
    let coalesce = stats.get("coalesce").unwrap();
    assert!(coalesce.get("bypassed").unwrap().as_u64().unwrap() >= 1);
    assert_eq!(coalesce.get("enqueued").unwrap().as_u64(), Some(0));
    handle.shutdown();
}

/// Evicting (or load-replacing) a graph fails everything parked in its
/// window with the stable retryable `graph_evicted` code — promptly, not
/// after the window expires — and a retry against the reloaded graph
/// succeeds.
#[test]
fn evict_fails_parked_requests_with_graph_evicted() {
    let handle = start_server(Duration::from_secs(5), true);
    let addr = handle.local_addr();

    let solver_thread = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let started = Instant::now();
        let outcome = client.solve("toy", "ws-q", &[0, 599], None, None);
        (started.elapsed(), outcome)
    });
    // Let the solve get parked (reader → queue → worker → window).
    std::thread::sleep(Duration::from_millis(300));
    let mut control = Client::connect(addr).unwrap();
    assert!(control.evict("toy").unwrap());

    let (elapsed, outcome) = solver_thread.join().expect("solver thread");
    match outcome {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, "graph_evicted", "{e}");
        }
        other => panic!("expected graph_evicted, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(4),
        "abort took {elapsed:?} — waited out the window instead"
    );

    // The code is retryable for real: reload and retry succeeds.
    control.load("toy", "ba:600x3").unwrap();
    let mut retry = Client::connect(addr).unwrap();
    let wire = retry.solve("toy", "ws-q", &[0, 599], None, None).unwrap();
    let direct = reference_catalog()
        .get("toy")
        .unwrap()
        .solve("ws-q", &[0, 599], &QueryOptions::default())
        .unwrap();
    assert_eq!(wire.connector, direct.connector.vertices());

    let stats = retry.stats().unwrap();
    assert!(
        stats
            .get("coalesce")
            .unwrap()
            .get("aborted")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1
    );
    handle.shutdown();
}

/// Graceful shutdown flushes open coalescing windows before the ack: a
/// request parked in a long window is answered, not silently dropped,
/// even though `shutdown` arrives mid-window.
#[test]
fn shutdown_drains_open_windows_before_acking() {
    let handle = start_server(Duration::from_secs(5), true);
    let addr = handle.local_addr();

    let solver_thread = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.solve("karate", "ws-q", &[11, 24, 25, 29], None, None)
    });
    std::thread::sleep(Duration::from_millis(300));

    let shutdown_at = Instant::now();
    let mut control = Client::connect(addr).unwrap();
    control.shutdown().expect("shutdown acked");
    assert!(
        shutdown_at.elapsed() < Duration::from_secs(4),
        "ack waited out the window: {:?}",
        shutdown_at.elapsed()
    );

    let wire = solver_thread
        .join()
        .expect("solver thread")
        .expect("drained request must be answered, not dropped");
    let direct = reference_catalog()
        .get("karate")
        .unwrap()
        .solve("ws-q", &[11, 24, 25, 29], &QueryOptions::default())
        .unwrap();
    assert_eq!(wire.connector, direct.connector.vertices());
    assert_eq!(wire.wiener_index, direct.wiener_index);
    handle.wait();
}
