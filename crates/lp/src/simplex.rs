//! Dense two-phase tableau simplex.
//!
//! Phase 1 minimizes the sum of artificial variables to find a basic
//! feasible solution; phase 2 minimizes the real objective. Pivots use
//! Dantzig's rule (most negative reduced cost) for speed and fall back to
//! Bland's rule after a streak of degenerate pivots, which guarantees
//! termination (Bland's anti-cycling theorem). Every pivot touches the
//! whole tableau — dense is the right trade-off for the small §5 programs
//! this crate exists to solve.

use crate::error::{LpError, Result};
use crate::model::{Cmp, LpProblem, Var};

/// Outcome classification of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective decreases without bound over the feasible region.
    Unbounded,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Outcome classification.
    pub status: LpStatus,
    /// Optimal assignment in the *original* variable space (empty unless
    /// [`LpStatus::Optimal`]).
    pub x: Vec<f64>,
    /// Optimal objective value; `+∞` when infeasible, `−∞` when unbounded
    /// (the conventional values for a minimization problem).
    pub objective: f64,
    /// Pivots performed across both phases.
    pub pivots: usize,
}

impl LpSolution {
    fn infeasible(pivots: usize) -> Self {
        LpSolution {
            status: LpStatus::Infeasible,
            x: Vec::new(),
            objective: f64::INFINITY,
            pivots,
        }
    }

    fn unbounded(pivots: usize) -> Self {
        LpSolution {
            status: LpStatus::Unbounded,
            x: Vec::new(),
            objective: f64::NEG_INFINITY,
            pivots,
        }
    }
}

/// Tuning knobs of the simplex.
#[derive(Debug, Clone)]
pub struct SimplexConfig {
    /// Hard cap on total pivots across both phases; exceeding it returns
    /// [`LpError::IterationLimit`]. Bland's rule guarantees finite
    /// termination, so the cap only bounds worst-case *time*.
    pub max_pivots: usize,
    /// Numerical tolerance for pivot eligibility and feasibility.
    pub tol: f64,
    /// Consecutive degenerate pivots before switching from Dantzig's rule
    /// to Bland's rule.
    pub bland_after: usize,
}

impl Default for SimplexConfig {
    fn default() -> Self {
        SimplexConfig {
            max_pivots: 500_000,
            tol: 1e-9,
            bland_after: 64,
        }
    }
}

/// One row of the standardized problem, before tableau assembly.
struct StdRow {
    terms: Vec<(usize, f64)>,
    op: Cmp,
    rhs: f64,
}

/// The working tableau: `rows × width` constraint matrix (rhs in the last
/// column) plus a separate reduced-cost row.
struct Tableau {
    a: Vec<f64>,
    width: usize,
    m: usize,
    basis: Vec<usize>,
    cost: Vec<f64>,
    blocked: Vec<bool>,
    pivots: usize,
}

impl Tableau {
    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.width + j]
    }

    fn rhs(&self, i: usize) -> f64 {
        self.at(i, self.width - 1)
    }

    /// Gauss-Jordan pivot on `(prow, pcol)`, updating the cost row.
    fn pivot(&mut self, prow: usize, pcol: usize) {
        let w = self.width;
        let piv = self.a[prow * w + pcol];
        debug_assert!(piv.abs() > 0.0);
        let inv = 1.0 / piv;
        for j in 0..w {
            self.a[prow * w + j] *= inv;
        }
        // Snapshot the pivot row to keep the borrow checker and the cache
        // both happy during elimination.
        let prow_vals: Vec<f64> = self.a[prow * w..(prow + 1) * w].to_vec();
        for i in 0..self.m {
            if i == prow {
                continue;
            }
            let f = self.a[i * w + pcol];
            if f != 0.0 {
                for (a, pv) in self.a[i * w..(i + 1) * w].iter_mut().zip(&prow_vals) {
                    *a -= f * pv;
                }
                self.a[i * w + pcol] = 0.0; // exact, not just tiny
            }
        }
        let f = self.cost[pcol];
        if f != 0.0 {
            for (c, pv) in self.cost.iter_mut().zip(&prow_vals) {
                *c -= f * pv;
            }
            self.cost[pcol] = 0.0;
        }
        self.basis[prow] = pcol;
        self.pivots += 1;
    }

    /// Entering column: Dantzig unless `bland`, in which case the lowest
    /// eligible index (anti-cycling).
    fn entering(&self, tol: f64, bland: bool) -> Option<usize> {
        let ncols = self.width - 1;
        if bland {
            (0..ncols).find(|&j| !self.blocked[j] && self.cost[j] < -tol)
        } else {
            let mut best: Option<(usize, f64)> = None;
            for j in 0..ncols {
                if !self.blocked[j]
                    && self.cost[j] < -tol
                    && best.is_none_or(|(_, c)| self.cost[j] < c)
                {
                    best = Some((j, self.cost[j]));
                }
            }
            best.map(|(j, _)| j)
        }
    }

    /// Leaving row by the minimum-ratio test, ties broken by the smallest
    /// basic variable index (required for Bland's rule to terminate).
    fn leaving(&self, pcol: usize, tol: f64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.m {
            let a = self.at(i, pcol);
            if a > tol {
                let ratio = self.rhs(i) / a;
                match best {
                    None => best = Some((i, ratio)),
                    Some((bi, br)) => {
                        if ratio < br - tol || (ratio < br + tol && self.basis[i] < self.basis[bi])
                        {
                            best = Some((i, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Runs pivots until optimality/unboundedness; returns `None` on
    /// optimal, `Some(Unbounded)` otherwise.
    fn optimize(&mut self, config: &SimplexConfig) -> Result<Option<LpStatus>> {
        let mut degenerate_streak = 0usize;
        loop {
            if self.pivots > config.max_pivots {
                return Err(LpError::IterationLimit {
                    pivots: self.pivots,
                });
            }
            let bland = degenerate_streak >= config.bland_after;
            let Some(pcol) = self.entering(config.tol, bland) else {
                return Ok(None);
            };
            let Some(prow) = self.leaving(pcol, config.tol) else {
                return Ok(Some(LpStatus::Unbounded));
            };
            let before = *self.cost.last().expect("cost row has rhs entry");
            self.pivot(prow, pcol);
            let after = *self.cost.last().expect("cost row has rhs entry");
            if (after - before).abs() <= config.tol {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }
        }
    }

    /// Removes constraint row `i` (used for redundant rows discovered at
    /// the end of phase 1).
    fn remove_row(&mut self, i: usize) {
        let w = self.width;
        self.a.drain(i * w..(i + 1) * w);
        self.basis.remove(i);
        self.m -= 1;
    }
}

/// Solves `problem` (with optional per-variable bound overrides) by the
/// two-phase simplex. See [`LpProblem::solve`].
pub(crate) fn solve_simplex(
    problem: &LpProblem,
    overrides: &[(Var, f64, f64)],
    config: &SimplexConfig,
) -> Result<LpSolution> {
    let n = problem.num_vars();

    // Effective bounds; empty-interval overrides mean an infeasible
    // branch-and-bound node, not a modelling error.
    let mut lo = problem.lo.clone();
    let mut hi = problem.hi.clone();
    for &(v, l, h) in overrides {
        if v.index() >= n {
            return Err(LpError::UnknownVariable {
                index: v.index(),
                num_vars: n,
            });
        }
        if l.is_nan() || h.is_nan() {
            return Err(LpError::NotANumber {
                context: "bound override",
            });
        }
        if !l.is_finite() {
            return Err(LpError::FreeVariable { index: v.index() });
        }
        lo[v.index()] = lo[v.index()].max(l);
        hi[v.index()] = hi[v.index()].min(h);
    }
    if lo.iter().zip(&hi).any(|(l, h)| l > h) {
        return Ok(LpSolution::infeasible(0));
    }

    // Shift to x̂ = x − lo ≥ 0 and collect rows: model rows first, then
    // upper-bound rows x̂_j ≤ hi_j − lo_j for finite upper bounds.
    let mut rows: Vec<StdRow> = Vec::with_capacity(problem.rows.len() + n);
    for row in &problem.rows {
        let shift: f64 = row.terms.iter().map(|&(j, c)| c * lo[j]).sum();
        rows.push(StdRow {
            terms: row.terms.clone(),
            op: row.op,
            rhs: row.rhs - shift,
        });
    }
    for j in 0..n {
        if hi[j].is_finite() {
            rows.push(StdRow {
                terms: vec![(j, 1.0)],
                op: Cmp::Le,
                rhs: hi[j] - lo[j],
            });
        }
    }
    // Normalize to rhs ≥ 0 (flip inequality direction when negating).
    for row in &mut rows {
        if row.rhs < 0.0 {
            row.rhs = -row.rhs;
            for t in &mut row.terms {
                t.1 = -t.1;
            }
            row.op = match row.op {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: structural (n) | slack/surplus (one per row) |
    // artificial (Ge/Eq rows) | rhs.
    let num_art = rows.iter().filter(|r| r.op != Cmp::Le).count();
    let ncols = n + m + num_art;
    let width = ncols + 1;

    let mut tab = Tableau {
        a: vec![0.0; m * width],
        width,
        m,
        basis: vec![usize::MAX; m],
        cost: vec![0.0; width],
        blocked: vec![false; ncols],
        pivots: 0,
    };

    let mut art_cursor = n + m;
    for (i, row) in rows.iter().enumerate() {
        for &(j, c) in &row.terms {
            tab.a[i * width + j] = c;
        }
        tab.a[i * width + width - 1] = row.rhs;
        let slack_col = n + i;
        match row.op {
            Cmp::Le => {
                tab.a[i * width + slack_col] = 1.0;
                tab.basis[i] = slack_col;
            }
            Cmp::Ge => {
                tab.a[i * width + slack_col] = -1.0;
                tab.a[i * width + art_cursor] = 1.0;
                tab.basis[i] = art_cursor;
                art_cursor += 1;
            }
            Cmp::Eq => {
                // The slack column stays identically zero for Eq rows;
                // block it so it can never be chosen as an entering column.
                tab.blocked[slack_col] = true;
                tab.a[i * width + art_cursor] = 1.0;
                tab.basis[i] = art_cursor;
                art_cursor += 1;
            }
        }
    }
    debug_assert_eq!(art_cursor, ncols);

    // Phase 1: minimize the sum of artificials.
    if num_art > 0 {
        for j in (n + m)..ncols {
            tab.cost[j] = 1.0;
        }
        // Price out the initial basis (artificials are basic with cost 1).
        for i in 0..m {
            if tab.basis[i] >= n + m {
                for j in 0..width {
                    tab.cost[j] -= tab.a[i * width + j];
                }
            }
        }
        match tab.optimize(config)? {
            None => {}
            // Phase 1 has optimum ≥ 0 so it can never be unbounded; treat
            // a claim of unboundedness as numerical failure via the limit.
            Some(_) => return Err(LpError::IterationLimit { pivots: tab.pivots }),
        }
        let phase1_obj = -tab.cost[width - 1];
        if phase1_obj > 1e-7 {
            return Ok(LpSolution::infeasible(tab.pivots));
        }
        // Drive basic artificials (necessarily at value 0) out of the
        // basis; rows where no structural/slack pivot exists are redundant.
        let mut i = 0;
        while i < tab.m {
            if tab.basis[i] >= n + m {
                let pcol = (0..n + m).find(|&j| !tab.blocked[j] && tab.at(i, j).abs() > config.tol);
                match pcol {
                    Some(j) => tab.pivot(i, j),
                    None => {
                        tab.remove_row(i);
                        continue;
                    }
                }
            }
            i += 1;
        }
        for j in (n + m)..ncols {
            tab.blocked[j] = true;
        }
    }

    // Phase 2: real objective over the shifted space (shifting by a
    // constant does not change the argmin).
    tab.cost.fill(0.0);
    for j in 0..n {
        tab.cost[j] = problem.objective[j];
    }
    for i in 0..tab.m {
        let b = tab.basis[i];
        let cb = if b < n { problem.objective[b] } else { 0.0 };
        if cb != 0.0 {
            for j in 0..width {
                tab.cost[j] -= cb * tab.a[i * width + j];
            }
        }
    }
    if let Some(LpStatus::Unbounded) = tab.optimize(config)? {
        return Ok(LpSolution::unbounded(tab.pivots));
    }

    // Extract x = lo + x̂.
    let mut x = lo;
    for i in 0..tab.m {
        let b = tab.basis[i];
        if b < n {
            x[b] += tab.rhs(i).max(0.0);
        }
    }
    let objective = problem.objective_value(&x);
    Ok(LpSolution {
        status: LpStatus::Optimal,
        x,
        objective,
        pivots: tab.pivots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, LpProblem};

    const TOL: f64 = 1e-7;

    fn solve(lp: &LpProblem) -> LpSolution {
        lp.solve(&SimplexConfig::default()).expect("solver error")
    }

    #[test]
    fn trivial_empty_model_is_optimal_at_lower_bounds() {
        let mut lp = LpProblem::minimize();
        lp.add_var("x", 2.0, 10.0, 5.0).unwrap();
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.x[0] - 2.0).abs() < TOL);
        assert!((sol.objective - 10.0).abs() < TOL);
    }

    #[test]
    fn negative_cost_with_upper_bound_hits_the_bound() {
        let mut lp = LpProblem::minimize();
        lp.add_var("x", 0.0, 7.5, -2.0).unwrap();
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.x[0] - 7.5).abs() < TOL);
        assert!((sol.objective + 15.0).abs() < TOL);
    }

    #[test]
    fn negative_cost_without_upper_bound_is_unbounded() {
        let mut lp = LpProblem::minimize();
        lp.add_var("x", 0.0, f64::INFINITY, -1.0).unwrap();
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Unbounded);
        assert_eq!(sol.objective, f64::NEG_INFINITY);
    }

    #[test]
    fn dantzig_factory_problem() {
        // min -3x - 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), -36.
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.0, f64::INFINITY, -3.0).unwrap();
        let y = lp.add_var("y", 0.0, f64::INFINITY, -5.0).unwrap();
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0).unwrap();
        lp.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0).unwrap();
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0)
            .unwrap();
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.x[0] - 2.0).abs() < TOL);
        assert!((sol.x[1] - 6.0).abs() < TOL);
        assert!((sol.objective + 36.0).abs() < TOL);
    }

    #[test]
    fn equality_constraints_via_phase_one() {
        // min x + y s.t. x + y = 10, x − y = 4 → (7, 3), 10.
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.0, f64::INFINITY, 1.0).unwrap();
        let y = lp.add_var("y", 0.0, f64::INFINITY, 1.0).unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0)
            .unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 4.0)
            .unwrap();
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.x[0] - 7.0).abs() < TOL);
        assert!((sol.x[1] - 3.0).abs() < TOL);
    }

    #[test]
    fn ge_constraints_diet_problem() {
        // min 0.6x + y s.t. 10x + 4y ≥ 20, 5x + 5y ≥ 20. Vertices: (0,5)
        // costs 5, the intersection (2/3, 10/3) costs 3.73̄, (4,0) costs
        // 2.4 — the optimum.
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.0, f64::INFINITY, 0.6).unwrap();
        let y = lp.add_var("y", 0.0, f64::INFINITY, 1.0).unwrap();
        lp.add_constraint(vec![(x, 10.0), (y, 4.0)], Cmp::Ge, 20.0)
            .unwrap();
        lp.add_constraint(vec![(x, 5.0), (y, 5.0)], Cmp::Ge, 20.0)
            .unwrap();
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 2.4).abs() < 1e-6, "got {}", sol.objective);
        assert!((sol.x[0] - 4.0).abs() < 1e-6);
        assert!(sol.x[1].abs() < 1e-6);
    }

    #[test]
    fn infeasible_system_is_detected() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.0, f64::INFINITY, 1.0).unwrap();
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 5.0).unwrap();
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 3.0).unwrap();
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Infeasible);
        assert_eq!(sol.objective, f64::INFINITY);
    }

    #[test]
    fn contradictory_equalities_are_infeasible() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.0, 10.0, 0.0).unwrap();
        let y = lp.add_var("y", 0.0, 10.0, 0.0).unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 3.0)
            .unwrap();
        lp.add_constraint(vec![(x, 2.0), (y, 2.0)], Cmp::Eq, 7.0)
            .unwrap();
        assert_eq!(solve(&lp).status, LpStatus::Infeasible);
    }

    #[test]
    fn redundant_equality_rows_are_dropped_not_fatal() {
        // x + y = 3 stated twice: phase 1 ends with a basic artificial in
        // a redundant row, which must be removed, not crash phase 2.
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.0, f64::INFINITY, 1.0).unwrap();
        let y = lp.add_var("y", 0.0, f64::INFINITY, 2.0).unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 3.0)
            .unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 3.0)
            .unwrap();
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.x[0] - 3.0).abs() < TOL); // all mass on the cheap var
        assert!((sol.objective - 3.0).abs() < TOL);
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale (1955): Dantzig's rule cycles forever on this LP without
        // anti-cycling. min -0.75a + 150b - 0.02c + 6d subject to the
        // classic three rows; optimum value -0.05.
        let mut lp = LpProblem::minimize();
        let a = lp.add_var("a", 0.0, f64::INFINITY, -0.75).unwrap();
        let b = lp.add_var("b", 0.0, f64::INFINITY, 150.0).unwrap();
        let c = lp.add_var("c", 0.0, f64::INFINITY, -0.02).unwrap();
        let d = lp.add_var("d", 0.0, f64::INFINITY, 6.0).unwrap();
        lp.add_constraint(
            vec![(a, 0.25), (b, -60.0), (c, -0.04), (d, 9.0)],
            Cmp::Le,
            0.0,
        )
        .unwrap();
        lp.add_constraint(
            vec![(a, 0.5), (b, -90.0), (c, -0.02), (d, 3.0)],
            Cmp::Le,
            0.0,
        )
        .unwrap();
        lp.add_constraint(vec![(c, 1.0)], Cmp::Le, 1.0).unwrap();
        // Force Bland from the start to exercise the anti-cycling path.
        let config = SimplexConfig {
            bland_after: 0,
            ..SimplexConfig::default()
        };
        let sol = lp.solve(&config).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 0.05).abs() < 1e-6, "got {}", sol.objective);
    }

    #[test]
    fn shifted_lower_bounds_are_respected() {
        // min x + y with x ≥ 2, y ≥ 3, x + y ≥ 7 → objective 7.
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 2.0, f64::INFINITY, 1.0).unwrap();
        let y = lp.add_var("y", 3.0, f64::INFINITY, 1.0).unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 7.0)
            .unwrap();
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 7.0).abs() < TOL);
        assert!(sol.x[0] >= 2.0 - TOL && sol.x[1] >= 3.0 - TOL);
    }

    #[test]
    fn bound_overrides_tighten_without_mutating_model() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.0, 10.0, -1.0).unwrap();
        let base = solve(&lp);
        assert!((base.x[0] - 10.0).abs() < TOL);
        let fixed = lp
            .solve_with_bounds(&[(x, 4.0, 4.0)], &SimplexConfig::default())
            .unwrap();
        assert!((fixed.x[0] - 4.0).abs() < TOL);
        // Original model unchanged.
        assert_eq!(lp.bounds(x).unwrap(), (0.0, 10.0));
    }

    #[test]
    fn empty_override_interval_is_infeasible_status_not_error() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.0, 10.0, 1.0).unwrap();
        let sol = lp
            .solve_with_bounds(&[(x, 6.0, 5.0)], &SimplexConfig::default())
            .unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn degenerate_lp_still_reaches_optimum() {
        // Multiple constraints active at the origin (primal degeneracy).
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.0, f64::INFINITY, -1.0).unwrap();
        let y = lp.add_var("y", 0.0, f64::INFINITY, -1.0).unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.0)
            .unwrap();
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0).unwrap();
        lp.add_constraint(vec![(y, 1.0)], Cmp::Le, 1.0).unwrap();
        lp.add_constraint(vec![(x, 2.0), (y, 1.0)], Cmp::Le, 2.0)
            .unwrap();
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 1.0).abs() < TOL);
    }

    #[test]
    fn solution_is_feasible_for_the_model() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.0, 4.0, 2.0).unwrap();
        let y = lp.add_var("y", 1.0, 9.0, -3.0).unwrap();
        let z = lp.add_var("z", 0.0, f64::INFINITY, 1.0).unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, 2.0), (z, -1.0)], Cmp::Le, 11.0)
            .unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 2.0)
            .unwrap();
        lp.add_constraint(vec![(y, 1.0), (z, 3.0)], Cmp::Eq, 9.0)
            .unwrap();
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(lp.is_feasible(&sol.x, 1e-6), "x = {:?}", sol.x);
    }

    #[test]
    fn iteration_limit_is_reported() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.0, f64::INFINITY, -3.0).unwrap();
        let y = lp.add_var("y", 0.0, f64::INFINITY, -5.0).unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0)
            .unwrap();
        let config = SimplexConfig {
            max_pivots: 0,
            ..SimplexConfig::default()
        };
        assert!(matches!(
            lp.solve(&config),
            Err(LpError::IterationLimit { .. })
        ));
    }
}
