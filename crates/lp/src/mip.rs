//! Best-first branch-and-bound over LP relaxations.
//!
//! Branching fixes variable-bound intervals (`x ≤ ⌊v⌋` / `x ≥ ⌈v⌉`) rather
//! than copying the model, so each node is a cheap bound-override list on
//! top of the shared [`LpProblem`]. The open-node frontier is ordered by
//! LP bound, which keeps the reported `lower_bound` tight: when the solver
//! is truncated by node or time limits it still returns a certified
//! `[lower_bound, incumbent]` interval — the same semantics the paper
//! reports in Table 2 when Gurobi runs out of memory ("we report the best
//! lower bound found so far").

use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use crate::error::Result;
use crate::model::{LpProblem, Var};
use crate::simplex::{LpStatus, SimplexConfig};

/// Tuning knobs of branch-and-bound.
#[derive(Debug, Clone)]
pub struct MipConfig {
    /// Configuration of the per-node LP solves.
    pub simplex: SimplexConfig,
    /// Maximum explored nodes before truncation.
    pub max_nodes: usize,
    /// Wall-clock budget; `None` means unlimited.
    pub time_limit: Option<Duration>,
    /// Tolerance for declaring a value integral.
    pub int_tol: f64,
    /// Nodes with an LP bound within `gap_tol` of the incumbent are
    /// pruned. With an integral objective, a value just below `1.0` proves
    /// optimality much earlier; the conservative default never prunes a
    /// strictly better solution.
    pub gap_tol: f64,
}

impl Default for MipConfig {
    fn default() -> Self {
        MipConfig {
            simplex: SimplexConfig::default(),
            max_nodes: 50_000,
            time_limit: None,
            int_tol: 1e-6,
            gap_tol: 1e-9,
        }
    }
}

/// Outcome classification of a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MipStatus {
    /// The incumbent is optimal (within `gap_tol`).
    Optimal,
    /// Truncated with an incumbent; optimality not proved.
    Feasible,
    /// Proved that no integer-feasible point exists.
    Infeasible,
    /// A relaxation was unbounded — the model has no finite optimum.
    Unbounded,
    /// Truncated before any integer-feasible point was found.
    Unknown,
}

/// Result of a branch-and-bound run.
#[derive(Debug, Clone)]
pub struct MipResult {
    /// Outcome classification.
    pub status: MipStatus,
    /// Best integer-feasible assignment found, if any.
    pub x: Option<Vec<f64>>,
    /// Objective of the incumbent, if any.
    pub objective: Option<f64>,
    /// Certified lower bound on the optimal objective (`−∞` if the root
    /// relaxation was never solved).
    pub lower_bound: f64,
    /// Nodes whose LP relaxation was solved.
    pub nodes: usize,
}

/// An open node: the LP bound inherited from its parent plus the chain of
/// bound overrides that define its subproblem.
struct Node {
    bound: f64,
    overrides: Vec<(Var, f64, f64)>,
}

/// Max-heap adapter that pops the *smallest* bound first.
struct ByBound(Node);

impl PartialEq for ByBound {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound
    }
}
impl Eq for ByBound {}
impl PartialOrd for ByBound {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ByBound {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the least bound.
        other.0.bound.total_cmp(&self.0.bound)
    }
}

/// Minimizes `problem` with the listed variables required to take integer
/// values. Returns a certified interval even when truncated.
pub fn branch_and_bound(
    problem: &LpProblem,
    integer_vars: &[Var],
    config: &MipConfig,
) -> Result<MipResult> {
    let started = Instant::now();
    let mut heap: BinaryHeap<ByBound> = BinaryHeap::new();
    heap.push(ByBound(Node {
        bound: f64::NEG_INFINITY,
        overrides: Vec::new(),
    }));

    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    let mut nodes = 0usize;
    let mut truncated = false;

    while let Some(ByBound(node)) = heap.pop() {
        // Best-first order: once the least open bound cannot beat the
        // incumbent, nothing can — the incumbent is optimal.
        if let Some((_, inc_obj)) = &incumbent {
            if node.bound >= inc_obj - config.gap_tol {
                heap.clear();
                heap.push(ByBound(node)); // preserved for the bound report
                break;
            }
        }
        if nodes >= config.max_nodes
            || config
                .time_limit
                .is_some_and(|lim| started.elapsed() >= lim)
        {
            heap.push(ByBound(node));
            truncated = true;
            break;
        }

        let sol = problem.solve_with_bounds(&node.overrides, &config.simplex)?;
        nodes += 1;
        match sol.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                // An unbounded relaxation at any node means the mixed
                // program itself has no finite optimum (our models always
                // bound integer variables, so the ray is continuous).
                return Ok(MipResult {
                    status: MipStatus::Unbounded,
                    x: None,
                    objective: None,
                    lower_bound: f64::NEG_INFINITY,
                    nodes,
                });
            }
            LpStatus::Optimal => {}
        }
        if let Some((_, inc_obj)) = &incumbent {
            if sol.objective >= inc_obj - config.gap_tol {
                continue;
            }
        }

        // Most-fractional branching variable.
        let frac = integer_vars
            .iter()
            .filter_map(|&v| {
                let val = sol.x[v.index()];
                let f = (val - val.round()).abs();
                (f > config.int_tol).then_some((v, val, f))
            })
            .max_by(|a, b| a.2.total_cmp(&b.2));

        match frac {
            None => {
                // Integer feasible; sol.objective < incumbent was checked.
                incumbent = Some((sol.x, sol.objective));
            }
            Some((v, val, _)) => {
                let down = val.floor();
                for (lo, hi) in [(f64::NEG_INFINITY, down), (down + 1.0, f64::INFINITY)] {
                    let mut overrides = node.overrides.clone();
                    // Branch bounds intersect the model bounds inside the
                    // solver; −∞ lower overrides are "no-ops" there, so
                    // substitute the declared bound.
                    let lo = if lo.is_finite() {
                        lo
                    } else {
                        problem.lo[v.index()]
                    };
                    overrides.push((v, lo, hi));
                    heap.push(ByBound(Node {
                        bound: sol.objective,
                        overrides,
                    }));
                }
            }
        }
    }

    // The certified lower bound: the least open-node bound, or the
    // incumbent itself when the tree is exhausted.
    let open_min = heap.peek().map(|n| n.0.bound);
    let (status, lower_bound) = match (&incumbent, open_min, truncated) {
        (Some((_, obj)), None, _) => (MipStatus::Optimal, *obj),
        (Some((_, obj)), Some(b), false) => {
            (MipStatus::Optimal, b.max(*obj - config.gap_tol).min(*obj))
        }
        (Some(_), Some(b), true) => (MipStatus::Feasible, b),
        (None, None, false) => (MipStatus::Infeasible, f64::INFINITY),
        (None, Some(b), _) => (MipStatus::Unknown, b),
        (None, None, true) => (MipStatus::Unknown, f64::NEG_INFINITY),
    };
    let (x, objective) = match incumbent {
        Some((x, obj)) => (Some(x), Some(obj)),
        None => (None, None),
    };
    Ok(MipResult {
        status,
        x,
        objective,
        lower_bound,
        nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, LpProblem};

    const TOL: f64 = 1e-6;

    #[test]
    fn knapsack_toy_is_solved_exactly() {
        // max 8a + 11b + 6c + 4d s.t. 5a + 7b + 4c + 3d ≤ 14, binary.
        // Optimum picks {b, c, d}: value 21 at weight exactly 14.
        let mut lp = LpProblem::minimize();
        let vals = [8.0, 11.0, 6.0, 4.0];
        let wts = [5.0, 7.0, 4.0, 3.0];
        let vars: Vec<Var> = (0..4)
            .map(|i| lp.add_var(format!("v{i}"), 0.0, 1.0, -vals[i]).unwrap())
            .collect();
        lp.add_constraint(vars.iter().copied().zip(wts).collect(), Cmp::Le, 14.0)
            .unwrap();
        let res = branch_and_bound(&lp, &vars, &MipConfig::default()).unwrap();
        assert_eq!(res.status, MipStatus::Optimal);
        assert!(
            (res.objective.unwrap() + 21.0).abs() < TOL,
            "{:?}",
            res.objective
        );
        // LP bound ≤ MIP optimum for minimization.
        assert!(res.lower_bound <= res.objective.unwrap() + TOL);
        // All chosen values integral.
        for v in &vars {
            let val = res.x.as_ref().unwrap()[v.index()];
            assert!((val - val.round()).abs() < TOL);
        }
    }

    #[test]
    fn integrality_gap_lp_below_mip() {
        // min x + y s.t. 2x + 2y ≥ 3, binary: LP relaxation gives 1.5,
        // MIP must pay 2.
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.0, 1.0, 1.0).unwrap();
        let y = lp.add_var("y", 0.0, 1.0, 1.0).unwrap();
        lp.add_constraint(vec![(x, 2.0), (y, 2.0)], Cmp::Ge, 3.0)
            .unwrap();
        let relax = lp.solve(&SimplexConfig::default()).unwrap();
        assert!((relax.objective - 1.5).abs() < TOL);
        let res = branch_and_bound(&lp, &[x, y], &MipConfig::default()).unwrap();
        assert_eq!(res.status, MipStatus::Optimal);
        assert!((res.objective.unwrap() - 2.0).abs() < TOL);
    }

    #[test]
    fn infeasible_mip_is_proved() {
        // 0.4 ≤ x ≤ 0.6 contains no integer; branching proves it.
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.4, 0.6, 1.0).unwrap();
        let res = branch_and_bound(&lp, &[x], &MipConfig::default()).unwrap();
        assert_eq!(res.status, MipStatus::Infeasible);
        assert!(res.x.is_none());
    }

    #[test]
    fn truncation_reports_certified_interval() {
        // Large enough tree that max_nodes = 1 truncates after the root.
        let mut lp = LpProblem::minimize();
        let vars: Vec<Var> = (0..6)
            .map(|i| {
                lp.add_var(format!("v{i}"), 0.0, 1.0, -((i + 1) as f64))
                    .unwrap()
            })
            .collect();
        lp.add_constraint(vars.iter().map(|&v| (v, 2.0)).collect(), Cmp::Le, 7.0)
            .unwrap();
        let config = MipConfig {
            max_nodes: 1,
            ..MipConfig::default()
        };
        let res = branch_and_bound(&lp, &vars, &config).unwrap();
        assert!(matches!(
            res.status,
            MipStatus::Unknown | MipStatus::Feasible
        ));
        assert_eq!(res.nodes, 1);
        // The reported bound must lower-bound the true optimum (-15: take
        // the three most valuable items at weight 6 ≤ 7).
        let full = branch_and_bound(&lp, &vars, &MipConfig::default()).unwrap();
        assert_eq!(full.status, MipStatus::Optimal);
        assert!(res.lower_bound <= full.objective.unwrap() + TOL);
    }

    #[test]
    fn pure_lp_passthrough_when_no_integer_vars() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.0, f64::INFINITY, -1.0).unwrap();
        lp.add_constraint(vec![(x, 2.0)], Cmp::Le, 3.0).unwrap();
        let res = branch_and_bound(&lp, &[], &MipConfig::default()).unwrap();
        assert_eq!(res.status, MipStatus::Optimal);
        assert!((res.objective.unwrap() + 1.5).abs() < TOL);
    }

    #[test]
    fn unbounded_relaxation_is_reported() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.0, f64::INFINITY, -1.0).unwrap();
        let b = lp.add_var("b", 0.0, 1.0, 0.0).unwrap();
        lp.add_constraint(vec![(x, 1.0), (b, -1.0)], Cmp::Ge, 0.0)
            .unwrap();
        let res = branch_and_bound(&lp, &[b], &MipConfig::default()).unwrap();
        assert_eq!(res.status, MipStatus::Unbounded);
    }

    #[test]
    fn equality_tied_binaries() {
        // min a + 2b + 3c s.t. a + b + c = 2, binary → {a, b}: 3.
        let mut lp = LpProblem::minimize();
        let a = lp.add_var("a", 0.0, 1.0, 1.0).unwrap();
        let b = lp.add_var("b", 0.0, 1.0, 2.0).unwrap();
        let c = lp.add_var("c", 0.0, 1.0, 3.0).unwrap();
        lp.add_constraint(vec![(a, 1.0), (b, 1.0), (c, 1.0)], Cmp::Eq, 2.0)
            .unwrap();
        let res = branch_and_bound(&lp, &[a, b, c], &MipConfig::default()).unwrap();
        assert_eq!(res.status, MipStatus::Optimal);
        assert!((res.objective.unwrap() - 3.0).abs() < TOL);
    }

    #[test]
    fn general_integers_not_just_binaries() {
        // min -x s.t. 3x ≤ 10, x integer in [0, 9] → x = 3.
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.0, 9.0, -1.0).unwrap();
        lp.add_constraint(vec![(x, 3.0)], Cmp::Le, 10.0).unwrap();
        let res = branch_and_bound(&lp, &[x], &MipConfig::default()).unwrap();
        assert_eq!(res.status, MipStatus::Optimal);
        assert!((res.x.unwrap()[0] - 3.0).abs() < TOL);
    }
}
