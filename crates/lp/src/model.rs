//! LP model construction: variables with bounds, sparse constraints, and a
//! linear minimization objective.

use crate::error::{LpError, Result};
use crate::simplex::{solve_simplex, LpSolution, SimplexConfig};

/// Handle to a model variable.
///
/// Returned by [`LpProblem::add_var`]; indices are dense and allocated in
/// insertion order, so callers that build a model from an external layout
/// (e.g. `mwc-core`'s `IntegerProgram`) can rely on `Var(i).index() == i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0
    }

    /// Constructs a handle from a raw index. The index is validated on
    /// first use in [`LpProblem::add_constraint`] / objective access.
    pub fn from_index(index: usize) -> Self {
        Var(index)
    }
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ aᵢxᵢ ≤ rhs`
    Le,
    /// `Σ aᵢxᵢ ≥ rhs`
    Ge,
    /// `Σ aᵢxᵢ = rhs`
    Eq,
}

/// A sparse constraint row.
#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub terms: Vec<(usize, f64)>,
    pub op: Cmp,
    pub rhs: f64,
}

/// A linear program `min c·x  s.t.  rows, lo ≤ x ≤ hi`.
///
/// Every variable needs a finite lower bound (the simplex operates on the
/// shifted nonnegative space `x − lo`); upper bounds may be infinite.
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    pub(crate) names: Vec<String>,
    pub(crate) objective: Vec<f64>,
    pub(crate) lo: Vec<f64>,
    pub(crate) hi: Vec<f64>,
    pub(crate) rows: Vec<Row>,
}

impl LpProblem {
    /// Creates an empty minimization problem.
    pub fn minimize() -> Self {
        LpProblem::default()
    }

    /// Adds a variable with bounds `[lo, hi]` and objective coefficient
    /// `obj`; returns its handle.
    pub fn add_var(&mut self, name: impl Into<String>, lo: f64, hi: f64, obj: f64) -> Result<Var> {
        let index = self.names.len();
        if lo.is_nan() || hi.is_nan() {
            return Err(LpError::NotANumber {
                context: "variable bounds",
            });
        }
        if obj.is_nan() {
            return Err(LpError::NotANumber {
                context: "objective coefficient",
            });
        }
        if !lo.is_finite() {
            return Err(LpError::FreeVariable { index });
        }
        if lo > hi {
            return Err(LpError::EmptyBounds { index, lo, hi });
        }
        self.names.push(name.into());
        self.objective.push(obj);
        self.lo.push(lo);
        self.hi.push(hi);
        Ok(Var(index))
    }

    /// Adds `n` variables sharing the same bounds and a zero objective;
    /// coefficients can be set later with [`set_objective`](Self::set_objective).
    pub fn add_vars(&mut self, n: usize, lo: f64, hi: f64) -> Result<Vec<Var>> {
        (0..n)
            .map(|i| self.add_var(format!("x{}", self.names.len() + i), lo, hi, 0.0))
            .collect()
    }

    /// Overwrites the objective coefficient of `var`.
    pub fn set_objective(&mut self, var: Var, coeff: f64) -> Result<()> {
        self.check_var(var.0)?;
        if coeff.is_nan() {
            return Err(LpError::NotANumber {
                context: "objective coefficient",
            });
        }
        self.objective[var.0] = coeff;
        Ok(())
    }

    /// Adds a sparse constraint `Σ coeff · var (op) rhs`. Duplicate
    /// variables in `terms` are summed.
    pub fn add_constraint(&mut self, terms: Vec<(Var, f64)>, op: Cmp, rhs: f64) -> Result<()> {
        if rhs.is_nan() {
            return Err(LpError::NotANumber {
                context: "constraint rhs",
            });
        }
        let mut collected: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            self.check_var(v.0)?;
            if c.is_nan() {
                return Err(LpError::NotANumber {
                    context: "constraint coefficient",
                });
            }
            collected.push((v.0, c));
        }
        // Sum duplicates so the tableau assembly can assume unique columns.
        collected.sort_unstable_by_key(|&(i, _)| i);
        collected.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 += later.1;
                true
            } else {
                false
            }
        });
        self.rows.push(Row {
            terms: collected,
            op,
            rhs,
        });
        Ok(())
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints (excluding variable bounds).
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// The declared bounds of `var`.
    pub fn bounds(&self, var: Var) -> Result<(f64, f64)> {
        self.check_var(var.0)?;
        Ok((self.lo[var.0], self.hi[var.0]))
    }

    /// Objective value of an assignment (no feasibility check).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Whether `x` satisfies all rows and bounds within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for ((xi, lo), hi) in x.iter().zip(&self.lo).zip(&self.hi) {
            if *xi < lo - tol || *xi > hi + tol {
                return false;
            }
        }
        self.rows.iter().all(|row| {
            let lhs: f64 = row.terms.iter().map(|&(i, c)| c * x[i]).sum();
            match row.op {
                Cmp::Le => lhs <= row.rhs + tol,
                Cmp::Ge => lhs >= row.rhs - tol,
                Cmp::Eq => (lhs - row.rhs).abs() <= tol,
            }
        })
    }

    /// Solves the LP with the two-phase simplex.
    pub fn solve(&self, config: &SimplexConfig) -> Result<LpSolution> {
        solve_simplex(self, &[], config)
    }

    /// Solves with per-variable bound overrides `(var, lo, hi)` applied on
    /// top of the declared bounds — the branching mechanism of
    /// [`branch_and_bound`](crate::branch_and_bound). The model itself is
    /// not mutated.
    pub fn solve_with_bounds(
        &self,
        overrides: &[(Var, f64, f64)],
        config: &SimplexConfig,
    ) -> Result<LpSolution> {
        solve_simplex(self, overrides, config)
    }

    fn check_var(&self, index: usize) -> Result<()> {
        if index >= self.num_vars() {
            return Err(LpError::UnknownVariable {
                index,
                num_vars: self.num_vars(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_var_validates_bounds_and_nan() {
        let mut lp = LpProblem::minimize();
        assert!(matches!(
            lp.add_var("bad", 2.0, 1.0, 0.0),
            Err(LpError::EmptyBounds { .. })
        ));
        assert!(matches!(
            lp.add_var("nan", f64::NAN, 1.0, 0.0),
            Err(LpError::NotANumber { .. })
        ));
        assert!(matches!(
            lp.add_var("free", f64::NEG_INFINITY, 1.0, 0.0),
            Err(LpError::FreeVariable { .. })
        ));
        assert!(lp.add_var("ok", 0.0, f64::INFINITY, 1.0).is_ok());
    }

    #[test]
    fn add_constraint_rejects_unknown_vars() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.0, 1.0, 1.0).unwrap();
        assert!(lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0).is_ok());
        let ghost = Var::from_index(7);
        assert!(matches!(
            lp.add_constraint(vec![(ghost, 1.0)], Cmp::Le, 1.0),
            Err(LpError::UnknownVariable { index: 7, .. })
        ));
    }

    #[test]
    fn duplicate_terms_are_summed() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 0.0, 10.0, 1.0).unwrap();
        lp.add_constraint(vec![(x, 1.0), (x, 2.0)], Cmp::Eq, 6.0)
            .unwrap();
        assert_eq!(lp.rows[0].terms, vec![(0, 3.0)]);
        // 3x = 6 → x = 2 is the only feasible point.
        assert!(lp.is_feasible(&[2.0], 1e-9));
        assert!(!lp.is_feasible(&[3.0], 1e-9));
    }

    #[test]
    fn feasibility_checks_bounds_and_ops() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x", 1.0, 5.0, 0.0).unwrap();
        let y = lp.add_var("y", 0.0, f64::INFINITY, 0.0).unwrap();
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 3.0)
            .unwrap();
        lp.add_constraint(vec![(y, 1.0)], Cmp::Le, 4.0).unwrap();
        assert!(lp.is_feasible(&[2.0, 2.0], 1e-9));
        assert!(!lp.is_feasible(&[0.5, 4.0], 1e-9)); // below lo of x
        assert!(!lp.is_feasible(&[2.0, 0.5], 1e-9)); // violates Ge
        assert!(!lp.is_feasible(&[2.0, 5.0], 1e-9)); // violates Le
        assert!(!lp.is_feasible(&[2.0], 1e-9)); // wrong arity
    }

    #[test]
    fn objective_value_is_dot_product() {
        let mut lp = LpProblem::minimize();
        lp.add_var("x", 0.0, 1.0, 2.0).unwrap();
        lp.add_var("y", 0.0, 1.0, -1.0).unwrap();
        assert_eq!(lp.objective_value(&[3.0, 4.0]), 2.0);
    }
}
