//! Error type for model construction and solving.
//!
//! Infeasibility and unboundedness are *statuses* (a well-posed question
//! with a negative answer), not errors; [`LpError`] covers misuse of the
//! API and resource exhaustion.

use std::fmt;

/// Errors raised by model construction or the solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A constraint or objective referenced a variable that was never
    /// added to the model.
    UnknownVariable {
        /// The offending index.
        index: usize,
        /// Number of variables in the model.
        num_vars: usize,
    },
    /// A coefficient, bound, or right-hand side was NaN.
    NotANumber {
        /// Where the NaN appeared.
        context: &'static str,
    },
    /// A variable was declared with `lo > hi`.
    EmptyBounds {
        /// Variable index.
        index: usize,
        /// Declared lower bound.
        lo: f64,
        /// Declared upper bound.
        hi: f64,
    },
    /// A variable was declared with an infinite lower bound. The simplex
    /// works in the shifted space `x' = x − lo ≥ 0`, so every variable
    /// needs a finite lower bound (free variables are not required by the
    /// §5 programs).
    FreeVariable {
        /// Variable index.
        index: usize,
    },
    /// The pivot-count cap was exceeded (see
    /// [`SimplexConfig::max_pivots`](crate::SimplexConfig)).
    IterationLimit {
        /// Pivots performed before giving up.
        pivots: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::UnknownVariable { index, num_vars } => {
                write!(
                    f,
                    "variable index {index} out of range (model has {num_vars})"
                )
            }
            LpError::NotANumber { context } => write!(f, "NaN encountered in {context}"),
            LpError::EmptyBounds { index, lo, hi } => {
                write!(f, "variable {index} has empty bounds [{lo}, {hi}]")
            }
            LpError::FreeVariable { index } => {
                write!(
                    f,
                    "variable {index} has an infinite lower bound (unsupported)"
                )
            }
            LpError::IterationLimit { pivots } => {
                write!(f, "simplex exceeded the pivot limit ({pivots} pivots)")
            }
        }
    }
}

impl std::error::Error for LpError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LpError>;
