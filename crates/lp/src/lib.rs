//! A self-contained linear-programming substrate: dense two-phase simplex
//! plus best-first branch-and-bound for mixed-integer programs.
//!
//! The paper ("The Minimum Wiener Connector Problem", SIGMOD 2015) obtains
//! its Table 2 lower/upper bounds (`GL`/`GU`) by handing the §5 integer
//! programs to Gurobi. A commercial solver is outside this reproduction's
//! dependency policy, so this crate implements the solving machinery from
//! scratch:
//!
//! * [`LpProblem`] — a minimization model with per-variable bounds and
//!   sparse `≤ / ≥ / =` constraints,
//! * [`solve`](LpProblem::solve) — dense tableau two-phase simplex with a
//!   Dantzig pivot rule that falls back to Bland's rule under degeneracy
//!   (guaranteeing termination),
//! * [`branch_and_bound`] — best-first branch-and-bound over a declared
//!   set of integer variables, returning a certified `[lower bound,
//!   incumbent]` interval even when truncated by node or time limits —
//!   exactly the semantics Table 2 reports when Gurobi runs out of memory.
//!
//! The solver is *dense*: every pivot touches the full tableau. That is the
//! right trade-off here — the §5 programs are only ever instantiated on
//! small graphs (the paper itself restricts Table 2 to graphs where the
//! number of variables is not "too large to even formulate") — and it keeps the
//! implementation small enough to test exhaustively.
//!
//! # Example
//!
//! ```
//! use mwc_lp::{Cmp, LpProblem, LpStatus, SimplexConfig};
//!
//! // minimize -3x - 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  (Dantzig's
//! // classic factory problem; optimum at (2, 6) with value -36).
//! let mut lp = LpProblem::minimize();
//! let x = lp.add_var("x", 0.0, f64::INFINITY, -3.0).unwrap();
//! let y = lp.add_var("y", 0.0, f64::INFINITY, -5.0).unwrap();
//! lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0).unwrap();
//! lp.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0).unwrap();
//! lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0).unwrap();
//! let sol = lp.solve(&SimplexConfig::default()).unwrap();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective - (-36.0)).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod mip;
pub mod model;
pub mod simplex;

pub use error::{LpError, Result};
pub use mip::{branch_and_bound, MipConfig, MipResult, MipStatus};
pub use model::{Cmp, LpProblem, Var};
pub use simplex::{LpSolution, LpStatus, SimplexConfig};
