//! Property-based tests for the simplex and branch-and-bound solvers.
//!
//! The generators build LPs that are feasible *by construction* (the
//! right-hand sides are derived from a known witness point), so every
//! solver claim can be checked against the witness: the optimum can never
//! exceed the witness objective, returned points must be feasible, and
//! bound tightening must be monotone in the optimal value.

use mwc_lp::{
    branch_and_bound, Cmp, LpProblem, LpStatus, MipConfig, MipStatus, SimplexConfig, Var,
};
use proptest::prelude::*;

const TOL: f64 = 1e-6;

/// A randomly generated LP together with a feasible witness point.
#[derive(Debug, Clone)]
struct FeasibleLp {
    costs: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>, // dense coefficients, rhs (all Le)
    witness: Vec<f64>,
}

impl FeasibleLp {
    fn build(&self) -> (LpProblem, Vec<Var>) {
        let mut lp = LpProblem::minimize();
        let vars: Vec<Var> = self
            .costs
            .iter()
            .enumerate()
            .map(|(i, &c)| lp.add_var(format!("x{i}"), 0.0, 10.0, c).unwrap())
            .collect();
        for (coeffs, rhs) in &self.rows {
            let terms: Vec<(Var, f64)> = vars.iter().copied().zip(coeffs.iter().copied()).collect();
            lp.add_constraint(terms, Cmp::Le, *rhs).unwrap();
        }
        (lp, vars)
    }
}

/// LPs over `n ∈ [1, 6]` bounded variables with `m ∈ [0, 8]` Le rows whose
/// rhs is `A·witness + slack`, keeping the witness feasible.
fn feasible_lp() -> impl Strategy<Value = FeasibleLp> {
    (1usize..=6, 0usize..=8).prop_flat_map(|(n, m)| {
        let costs = proptest::collection::vec(-5.0f64..5.0, n);
        let witness = proptest::collection::vec(0.0f64..5.0, n);
        let coeffs =
            proptest::collection::vec((proptest::collection::vec(-4.0f64..4.0, n), 0.0f64..3.0), m);
        (costs, witness, coeffs).prop_map(|(costs, witness, coeffs)| {
            let rows = coeffs
                .into_iter()
                .map(|(row, slack)| {
                    let dot: f64 = row.iter().zip(&witness).map(|(a, x)| a * x).sum();
                    (row, dot + slack)
                })
                .collect();
            FeasibleLp {
                costs,
                rows,
                witness,
            }
        })
    })
}

/// Like [`feasible_lp`] but with a binary witness, so the MIP is feasible
/// by construction too.
fn feasible_binary_mip() -> impl Strategy<Value = FeasibleLp> {
    (1usize..=6, 0usize..=6).prop_flat_map(|(n, m)| {
        let costs = proptest::collection::vec(-5.0f64..5.0, n);
        let witness = proptest::collection::vec(proptest::bool::ANY, n).prop_map(|bits| {
            bits.into_iter()
                .map(|b| if b { 1.0 } else { 0.0 })
                .collect()
        });
        let coeffs =
            proptest::collection::vec((proptest::collection::vec(-4.0f64..4.0, n), 0.0f64..3.0), m);
        (costs, witness, coeffs).prop_map(|(costs, witness, coeffs): (Vec<f64>, Vec<f64>, _)| {
            let rows = coeffs
                .into_iter()
                .map(|(row, slack): (Vec<f64>, f64)| {
                    let dot: f64 = row.iter().zip(&witness).map(|(a, x)| a * x).sum();
                    (row, dot + slack)
                })
                .collect();
            FeasibleLp {
                costs,
                rows,
                witness,
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn simplex_never_beats_nor_misses_the_witness(instance in feasible_lp()) {
        let (lp, _) = instance.build();
        let sol = lp.solve(&SimplexConfig::default()).unwrap();
        // Bounded + feasible by construction.
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        prop_assert!(lp.is_feasible(&sol.x, TOL), "returned point infeasible: {:?}", sol.x);
        let witness_obj = lp.objective_value(&instance.witness);
        prop_assert!(
            sol.objective <= witness_obj + TOL,
            "optimum {} worse than witness {}",
            sol.objective,
            witness_obj
        );
    }

    #[test]
    fn simplex_is_deterministic(instance in feasible_lp()) {
        let (lp, _) = instance.build();
        let a = lp.solve(&SimplexConfig::default()).unwrap();
        let b = lp.solve(&SimplexConfig::default()).unwrap();
        prop_assert_eq!(a.status, b.status);
        prop_assert!((a.objective - b.objective).abs() <= TOL);
    }

    #[test]
    fn bland_and_dantzig_agree_on_the_optimum(instance in feasible_lp()) {
        let (lp, _) = instance.build();
        let dantzig = lp.solve(&SimplexConfig::default()).unwrap();
        let bland = lp
            .solve(&SimplexConfig { bland_after: 0, ..SimplexConfig::default() })
            .unwrap();
        prop_assert!(
            (dantzig.objective - bland.objective).abs() <= TOL,
            "dantzig {} vs bland {}",
            dantzig.objective,
            bland.objective
        );
    }

    #[test]
    fn tightening_bounds_is_monotone(instance in feasible_lp(), which in 0usize..6) {
        let (lp, vars) = instance.build();
        let base = lp.solve(&SimplexConfig::default()).unwrap();
        let v = vars[which % vars.len()];
        // Shrink [0, 10] to [1, 9]: a subset, so the optimum cannot improve.
        let tightened = lp
            .solve_with_bounds(&[(v, 1.0, 9.0)], &SimplexConfig::default())
            .unwrap();
        if tightened.status == LpStatus::Optimal {
            prop_assert!(tightened.objective >= base.objective - TOL);
        }
    }

    #[test]
    fn mip_interval_brackets_relaxation_and_witness(instance in feasible_binary_mip()) {
        let (lp, vars) = instance.build();
        // The LP relaxation: the same model with bounds tightened to [0, 1].
        let overrides: Vec<(Var, f64, f64)> =
            vars.iter().map(|&v| (v, 0.0, 1.0)).collect();
        let relax = lp.solve_with_bounds(&overrides, &SimplexConfig::default()).unwrap();

        // Rebuild the model with [0,1] bounds baked in for the MIP run.
        let mut mip = LpProblem::minimize();
        let mvars: Vec<Var> = instance
            .costs
            .iter()
            .enumerate()
            .map(|(i, &c)| mip.add_var(format!("x{i}"), 0.0, 1.0, c).unwrap())
            .collect();
        for (coeffs, rhs) in &instance.rows {
            let terms: Vec<(Var, f64)> =
                mvars.iter().copied().zip(coeffs.iter().copied()).collect();
            mip.add_constraint(terms, Cmp::Le, *rhs).unwrap();
        }
        let res = branch_and_bound(&mip, &mvars, &MipConfig::default()).unwrap();
        prop_assert_eq!(res.status, MipStatus::Optimal);
        let obj = res.objective.unwrap();
        let x = res.x.unwrap();
        // Incumbent: integral, feasible, no better than the LP relaxation,
        // no worse than the binary witness.
        for &v in &mvars {
            prop_assert!((x[v.index()] - x[v.index()].round()).abs() <= TOL);
        }
        prop_assert!(mip.is_feasible(&x, TOL));
        prop_assert!(obj >= relax.objective - TOL, "MIP {obj} beat its relaxation {}", relax.objective);
        let witness_obj = mip.objective_value(&instance.witness);
        prop_assert!(obj <= witness_obj + TOL, "MIP {obj} worse than witness {witness_obj}");
        prop_assert!(res.lower_bound <= obj + TOL);
    }
}
