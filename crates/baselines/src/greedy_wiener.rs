//! `gw` — greedy Wiener expansion (an extension beyond the paper).
//!
//! A natural straw-man the paper does not evaluate: grow the solution from
//! `Q` by repeatedly adding the frontier vertex that minimizes an
//! admissible completion estimate, until `Q` is connected; then prune.
//! Used by the ablation study as a sanity baseline — ws-q should dominate
//! it on quality or runtime (greedy needs `O(|S| · frontier)` Wiener-style
//! evaluations per step, which is far costlier than ws-q's Steiner calls
//! on large graphs).

use mwc_core::{wsq::normalize_query, Connector, CoreError, Result};
use mwc_graph::connectivity::is_connected_subset;
use mwc_graph::traversal::bfs::BfsWorkspace;
use mwc_graph::{Graph, NodeId, INF_DIST};

/// Budget for the greedy expansion.
#[derive(Debug, Clone)]
pub struct GreedyWienerConfig {
    /// Abort (with [`CoreError::UnsupportedInstance`]) if the solution
    /// exceeds this size before connecting `Q` — guards the quadratic
    /// evaluation cost.
    pub max_size: usize,
}

impl Default for GreedyWienerConfig {
    fn default() -> Self {
        GreedyWienerConfig { max_size: 256 }
    }
}

/// Runs the greedy-Wiener baseline with default budget.
pub fn greedy_wiener(g: &Graph, q: &[NodeId]) -> Result<Connector> {
    greedy_wiener_with_config(g, q, &GreedyWienerConfig::default())
}

/// Runs the greedy-Wiener baseline.
///
/// Scoring: for the current partial set `S` (which may induce several
/// fragments), a candidate `v` is scored by the sum of its distances *in
/// `G`* to all members of `S` — a cheap proxy for the Wiener mass `v`
/// would contribute. The candidate minimizing the proxy joins; once `Q`
/// lies in one induced component, that component is returned after a
/// removal pass (dropping members that no longer help).
pub fn greedy_wiener_with_config(
    g: &Graph,
    q: &[NodeId],
    cfg: &GreedyWienerConfig,
) -> Result<Connector> {
    let q = normalize_query(g, q)?;
    let mut ws = BfsWorkspace::new();

    // Distance rows from every member, grown incrementally.
    let mut members: Vec<NodeId> = q.clone();
    let mut rows: Vec<Vec<u32>> = Vec::with_capacity(members.len());
    for &s in &members {
        rows.push(ws.run(g, s).to_vec());
    }
    // Infeasible queries surface immediately.
    for &t in &q[1..] {
        if rows[0][t as usize] == INF_DIST {
            return Err(CoreError::QueryNotConnectable);
        }
    }

    while !is_connected_subset(g, &members)? {
        if members.len() >= cfg.max_size {
            return Err(CoreError::UnsupportedInstance {
                what: format!("greedy-wiener exceeded max_size = {}", cfg.max_size),
            });
        }
        // Frontier of the current member set.
        let mut frontier: Vec<NodeId> = Vec::new();
        for &u in &members {
            for &v in g.neighbors(u) {
                if !members.contains(&v) {
                    frontier.push(v);
                }
            }
        }
        frontier.sort_unstable();
        frontier.dedup();
        debug_assert!(!frontier.is_empty(), "connected component exhausted");

        let best = frontier
            .into_iter()
            .map(|v| {
                let score: u64 = rows
                    .iter()
                    .map(|row| row[v as usize].min(1 << 20) as u64)
                    .sum();
                (score, v)
            })
            .min()
            .expect("non-empty frontier");
        members.push(best.1);
        rows.push(ws.run(g, best.1).to_vec());
    }

    // Keep only Q's component, then drop members whose removal improves W.
    let mut solution: Vec<NodeId> = members;
    solution.sort_unstable();
    solution.dedup();
    let mut best_w = match mwc_graph::wiener::wiener_index_of_subset(g, &solution)? {
        Some(w) => w,
        None => {
            // Disconnected leftovers: restrict to Q's component.
            let sub = g.induced(&solution)?;
            let q0 = sub.to_local(q[0]).expect("query member");
            let dist = ws.run(sub.graph(), q0).to_vec();
            solution = (0..sub.num_nodes() as NodeId)
                .filter(|&v| dist[v as usize] != INF_DIST)
                .map(|v| sub.to_global(v))
                .collect();
            mwc_graph::wiener::wiener_index_of_subset(g, &solution)?
                .expect("component is connected")
        }
    };
    loop {
        let mut improved = false;
        for &v in &solution.clone() {
            if q.binary_search(&v).is_ok() {
                continue;
            }
            let candidate: Vec<NodeId> = solution.iter().copied().filter(|&x| x != v).collect();
            if let Some(w) = mwc_graph::wiener::wiener_index_of_subset(g, &candidate)? {
                if w < best_w {
                    solution = candidate;
                    best_w = w;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    Ok(Connector::new_unchecked(g, solution))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{karate::karate_club, structured};

    #[test]
    fn connects_and_contains_query() {
        let g = karate_club();
        let q: Vec<NodeId> = vec![11, 24, 25, 29];
        let c = greedy_wiener(&g, &q).unwrap();
        assert!(c.contains_all(&q));
        assert!(Connector::new(&g, c.vertices()).is_ok());
        assert!(c.len() <= 12, "greedy solution too large: {}", c.len());
    }

    #[test]
    fn already_connected_query_is_kept_small() {
        let g = structured::complete(6);
        let c = greedy_wiener(&g, &[1, 4]).unwrap();
        assert_eq!(c.vertices(), &[1, 4]);
    }

    #[test]
    fn path_query() {
        let g = structured::path(9);
        let c = greedy_wiener(&g, &[0, 8]).unwrap();
        assert_eq!(c.len(), 9);
    }

    #[test]
    fn figure2_adds_a_root() {
        let g = structured::figure2_graph(10);
        let q: Vec<NodeId> = (0..10).collect();
        let c = greedy_wiener(&g, &q).unwrap();
        let w = c.wiener_index(&g).unwrap();
        assert!(w <= 165, "greedy should not exceed the bare line (got {w})");
    }

    #[test]
    fn infeasible_errors() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(greedy_wiener(&g, &[0, 3]).is_err());
    }

    #[test]
    fn budget_guard_fires() {
        let g = structured::path(40);
        let cfg = GreedyWienerConfig { max_size: 5 };
        let err = greedy_wiener_with_config(&g, &[0, 39], &cfg).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedInstance { .. }));
    }

    #[test]
    fn wsq_is_no_worse_on_karate() {
        let g = karate_club();
        for q in [vec![0u32, 33], vec![11, 24, 25, 29]] {
            let gw = greedy_wiener(&g, &q).unwrap().wiener_index(&g).unwrap();
            let wsq = mwc_core::minimum_wiener_connector(&g, &q)
                .unwrap()
                .wiener_index;
            // ws-q should be competitive with the greedy straw man.
            assert!(
                wsq as f64 <= 1.3 * gw as f64,
                "wsq {wsq} vs greedy {gw} for {q:?}"
            );
        }
    }
}
