//! Random walk with restart (RWR) — the scoring engine behind the `ppr`
//! and `cps` baselines.
//!
//! §6.1: "following the literature on random walks with restart, cps is
//! initialized with a restart parameter c = 0.85, number of iterations
//! m = 100, and a convergence error threshold ξ = 10⁻⁷. For the
//! personalized PageRank method, ppr, we use the same settings."

use mwc_graph::{Graph, NodeId};

/// RWR parameters; defaults match the paper (§6.1).
#[derive(Debug, Clone, Copy)]
pub struct RwrParams {
    /// Probability of following an edge (1 − restart probability).
    pub damping: f64,
    /// Maximum power-iteration steps.
    pub max_iterations: usize,
    /// L1 convergence threshold ξ.
    pub tolerance: f64,
}

impl Default for RwrParams {
    fn default() -> Self {
        RwrParams {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-7,
        }
    }
}

/// Stationary scores of a random walk restarting uniformly over
/// `restart_set`.
///
/// Power iteration on
/// `p ← (1 − c) · e + c · (Pᵀ p + dangling-mass · e)`
/// where `P` is the degree-normalized adjacency and `e` the uniform
/// distribution over `restart_set`. Returns a probability vector (sums to
/// 1 over the reachable part).
///
/// # Panics
/// Panics if `restart_set` is empty or contains out-of-range ids (callers
/// validate queries first).
pub fn random_walk_with_restart(g: &Graph, restart_set: &[NodeId], params: RwrParams) -> Vec<f64> {
    assert!(!restart_set.is_empty(), "restart set must be non-empty");
    let n = g.num_nodes();
    let c = params.damping;
    let mut restart = vec![0.0f64; n];
    let share = 1.0 / restart_set.len() as f64;
    for &v in restart_set {
        restart[v as usize] += share;
    }

    let mut p = restart.clone();
    let mut next = vec![0.0f64; n];
    for _ in 0..params.max_iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0f64;
        for u in g.nodes() {
            let mass = p[u as usize];
            if mass == 0.0 {
                continue;
            }
            let deg = g.degree(u);
            if deg == 0 {
                dangling += mass;
                continue;
            }
            let out = mass / deg as f64;
            for &v in g.neighbors(u) {
                next[v as usize] += out;
            }
        }
        let mut delta = 0.0f64;
        for v in 0..n {
            let val = (1.0 - c) * restart[v] + c * (next[v] + dangling * restart[v]);
            delta += (val - p[v]).abs();
            p[v] = val;
        }
        if delta < params.tolerance {
            break;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::structured;

    #[test]
    fn mass_concentrates_near_restart_vertex() {
        let g = structured::path(9);
        let p = random_walk_with_restart(&g, &[4], RwrParams::default());
        // Scores decay monotonically away from the restart vertex.
        assert!(p[4] > p[3] && p[3] > p[2] && p[2] > p[1] && p[1] > p[0]);
        assert!(p[4] > p[5] && p[5] > p[6]);
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "not a distribution: {total}");
    }

    #[test]
    fn hub_attracts_walks() {
        let g = structured::star(10);
        let p = random_walk_with_restart(&g, &[3], RwrParams::default());
        // The hub should outrank every non-restart leaf.
        for leaf in 1..10 {
            if leaf != 3 {
                assert!(
                    p[0] > p[leaf],
                    "hub {} vs leaf {} = {}",
                    p[0],
                    leaf,
                    p[leaf]
                );
            }
        }
    }

    #[test]
    fn multi_restart_is_symmetric() {
        let g = structured::path(7);
        let p = random_walk_with_restart(&g, &[0, 6], RwrParams::default());
        for i in 0..=3 {
            assert!((p[i] - p[6 - i]).abs() < 1e-9, "asymmetry at {i}");
        }
    }

    #[test]
    fn unreachable_component_gets_no_mass() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let p = random_walk_with_restart(&g, &[0], RwrParams::default());
        assert_eq!(p[3], 0.0);
        assert_eq!(p[4], 0.0);
        assert!(p[0] > 0.0 && p[2] > 0.0);
    }

    #[test]
    fn dangling_mass_returns_to_restart() {
        // Isolated restart vertex: all mass stays there.
        let g = Graph::from_edges(3, &[(1, 2)]).unwrap();
        let p = random_walk_with_restart(&g, &[0], RwrParams::default());
        assert!((p[0] - 1.0).abs() < 1e-9);
        assert_eq!(p[1] + p[2], 0.0);
    }

    #[test]
    fn respects_iteration_budget() {
        let g = structured::cycle(20);
        let one = random_walk_with_restart(
            &g,
            &[0],
            RwrParams {
                max_iterations: 1,
                ..Default::default()
            },
        );
        let many = random_walk_with_restart(&g, &[0], RwrParams::default());
        // After one iteration mass has spread at most one hop.
        assert_eq!(one[5], 0.0);
        assert!(many[5] > 0.0);
    }
}
