//! `ppr` — personalized PageRank seed-set expansion.
//!
//! The paper follows Kloumann & Kleinberg's findings (§1.1, ref. 37):
//! standard
//! (non-degree-normalized) PageRank personalized over the query set,
//! then greedy addition of the highest-scoring vertices until `Q` is
//! connected (§6.1).

use mwc_core::{Connector, Result};
use mwc_graph::{Graph, NodeId};

use crate::greedy::greedy_connect;
use crate::rwr::{random_walk_with_restart, RwrParams};

/// Runs the `ppr` baseline with the paper's default RWR parameters.
pub fn ppr(g: &Graph, q: &[NodeId]) -> Result<Connector> {
    ppr_with_params(g, q, RwrParams::default())
}

/// Runs the `ppr` baseline with explicit RWR parameters.
pub fn ppr_with_params(g: &Graph, q: &[NodeId], params: RwrParams) -> Result<Connector> {
    let scores = random_walk_with_restart(g, q, params);
    greedy_connect(g, q, &scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{karate::karate_club, structured};

    #[test]
    fn connects_query_on_karate() {
        let g = karate_club();
        let q: Vec<NodeId> = vec![11, 24, 25, 29];
        let c = ppr(&g, &q).unwrap();
        assert!(c.contains_all(&q));
        assert!(c.len() < 34, "ppr should not need the whole graph");
    }

    #[test]
    fn two_distant_vertices_on_a_path() {
        let g = structured::path(8);
        let c = ppr(&g, &[0, 7]).unwrap();
        assert_eq!(c.len(), 8); // only one way to connect
    }

    #[test]
    fn solutions_tend_to_be_larger_than_wsq() {
        // The qualitative Table 3 relation on a hub-rich graph: ppr's greedy
        // expansion adds at least as many vertices as ws-q's connector.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(91);
        let g = mwc_graph::generators::barabasi_albert(400, 3, &mut rng);
        use rand::Rng;
        let mut larger = 0;
        for _ in 0..5 {
            let q: Vec<NodeId> = (0..5).map(|_| rng.gen_range(0..400)).collect();
            let p = ppr(&g, &q).unwrap();
            let w = mwc_core::minimum_wiener_connector(&g, &q).unwrap();
            if p.len() >= w.connector.len() {
                larger += 1;
            }
        }
        assert!(
            larger >= 4,
            "ppr smaller than ws-q in {} of 5 runs",
            5 - larger
        );
    }
}
