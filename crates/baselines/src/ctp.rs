//! `ctp` — the Cocktail Party / community-search baseline (Sozio & Gionis,
//! KDD 2010).
//!
//! The original problem maximizes the minimum degree of a connected
//! subgraph containing `Q`. Its parameter-free greedy returns near-whole
//! graphs, so the paper's evaluation (§6.1) first shrinks the arena: run a
//! BFS from each query vertex until the rest of `Q` is covered, keep the
//! *smallest* such ball, and apply the Sozio–Gionis greedy inside it.
//!
//! The greedy repeatedly deletes a minimum-degree non-query vertex
//! (stopping when only query vertices attain the minimum degree) and
//! returns, among all intermediate graphs in which `Q` is still connected,
//! the one maximizing the minimum degree — implemented with a bucket queue
//! in `O(|ball| + |E(ball)|)` plus one connectivity check per candidate
//! snapshot.

use mwc_core::{wsq::normalize_query, Connector, CoreError, Result};
use mwc_graph::traversal::bfs::BfsWorkspace;
use mwc_graph::{Graph, InducedSubgraph, NodeId};

/// Runs the `ctp` baseline.
pub fn ctp(g: &Graph, q: &[NodeId]) -> Result<Connector> {
    let q = normalize_query(g, q)?;
    if q.len() == 1 {
        return Ok(Connector::new_unchecked(g, q));
    }

    // Smallest covering ball over all query sources.
    let mut ws = BfsWorkspace::new();
    let mut best_ball: Option<Vec<NodeId>> = None;
    for &s in &q {
        let visited = ws.run_until_covered(g, s, &q);
        let covered = {
            let mut in_ball = vec![false; g.num_nodes()];
            for &v in &visited {
                in_ball[v as usize] = true;
            }
            q.iter().all(|&v| in_ball[v as usize])
        };
        if !covered {
            return Err(CoreError::QueryNotConnectable);
        }
        if best_ball.as_ref().is_none_or(|b| visited.len() < b.len()) {
            best_ball = Some(visited);
        }
    }
    let ball = best_ball.expect("query is non-empty");
    let sub = g.induced(&ball)?;
    let local_q: Vec<NodeId> = sub.to_local_many(&q).expect("ball contains the query set");

    let chosen_local = sozio_gionis_greedy(&sub, &local_q);
    let global: Vec<NodeId> = chosen_local.iter().map(|&v| sub.to_global(v)).collect();
    Ok(Connector::new_unchecked(g, global))
}

/// The greedy min-degree peel, over the ball's local ids. Returns the
/// vertex set (local ids) of the best valid intermediate graph.
fn sozio_gionis_greedy(sub: &InducedSubgraph, local_q: &[NodeId]) -> Vec<NodeId> {
    let gsub = sub.graph();
    let n = gsub.num_nodes();
    let mut is_q = vec![false; n];
    for &v in local_q {
        is_q[v as usize] = true;
    }

    let mut alive = vec![true; n];
    let mut degree: Vec<u32> = (0..n as NodeId).map(|v| gsub.degree(v) as u32).collect();
    // Bucket queue with lazy (stale) entries: every degree decrease pushes
    // a fresh entry, so `buckets[d]` always contains every vertex whose
    // current degree is `d` (possibly alongside stale entries).
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n as NodeId {
        buckets[degree[v as usize] as usize].push(v);
    }

    let mut deletion_order: Vec<NodeId> = Vec::with_capacity(n);
    // Candidate snapshots (deletions-so-far, min-degree-at-that-time);
    // recorded whenever the min degree reaches a new maximum, plus the
    // final stopped graph.
    let mut snapshots: Vec<(usize, u32)> = Vec::new();
    let mut best_mindeg_seen: Option<u32> = None;

    let mut cur = 0usize;
    'peel: loop {
        // Find the smallest degree with a live vertex; prefer deleting a
        // non-query vertex, stop if only query vertices attain the minimum.
        let mut victim: Option<NodeId> = None;
        let mut q_blocked = false;
        while cur <= max_deg {
            let mut q_at_cur: Vec<NodeId> = Vec::new();
            while let Some(v) = buckets[cur].pop() {
                if !alive[v as usize] || degree[v as usize] as usize != cur {
                    continue; // stale
                }
                if is_q[v as usize] {
                    q_at_cur.push(v);
                    continue;
                }
                victim = Some(v);
                break;
            }
            // Query vertices at the minimum stay in the graph.
            for v in q_at_cur.iter().copied() {
                buckets[cur].push(v);
            }
            if victim.is_some() {
                break;
            }
            if !q_at_cur.is_empty() {
                q_blocked = true;
                break;
            }
            cur += 1;
        }
        let Some(v) = victim else {
            // Either the min degree is attained only by query vertices, or
            // everything deletable is gone: stop and snapshot.
            let mindeg = if q_blocked { cur as u32 } else { u32::MAX };
            if mindeg != u32::MAX {
                snapshots.push((deletion_order.len(), mindeg));
            }
            break 'peel;
        };

        // The graph *before* this deletion has min degree `cur`.
        if best_mindeg_seen.is_none_or(|m| (cur as u32) > m) {
            best_mindeg_seen = Some(cur as u32);
            snapshots.push((deletion_order.len(), cur as u32));
        }

        alive[v as usize] = false;
        deletion_order.push(v);
        for &nb in gsub.neighbors(v) {
            if alive[nb as usize] {
                degree[nb as usize] -= 1;
                buckets[degree[nb as usize] as usize].push(nb);
            }
        }
        cur = cur.saturating_sub(1);
    }

    // Among snapshots where Q is still connected, pick the one with maximum
    // min degree (ties: the latest, i.e. smallest graph). The t = 0 ball is
    // always valid, so a solution exists.
    snapshots.push((0, 0));
    snapshots.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.cmp(&a.0)));
    for &(t, _) in &snapshots {
        if let Some(comp) = query_component_at(gsub, &deletion_order, t, local_q) {
            return comp;
        }
    }
    unreachable!("the initial ball always connects the query");
}

/// The component of `local_q[0]` in the graph after the first `t`
/// deletions, if it contains all of `local_q`.
fn query_component_at(
    gsub: &Graph,
    deletion_order: &[NodeId],
    t: usize,
    local_q: &[NodeId],
) -> Option<Vec<NodeId>> {
    let n = gsub.num_nodes();
    let mut alive = vec![true; n];
    for &v in &deletion_order[..t] {
        alive[v as usize] = false;
    }
    debug_assert!(
        local_q.iter().all(|&v| alive[v as usize]),
        "query never deleted"
    );

    let mut seen = vec![false; n];
    let mut queue = vec![local_q[0]];
    seen[local_q[0] as usize] = true;
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for &v in gsub.neighbors(u) {
            if alive[v as usize] && !seen[v as usize] {
                seen[v as usize] = true;
                queue.push(v);
            }
        }
    }
    if local_q.iter().all(|&v| seen[v as usize]) {
        queue.sort_unstable();
        Some(queue)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{karate::karate_club, structured};
    use mwc_graph::metrics;

    #[test]
    fn contains_query_and_is_connected() {
        let g = karate_club();
        let q: Vec<NodeId> = vec![11, 24, 25, 29];
        let c = ctp(&g, &q).unwrap();
        assert!(c.contains_all(&q));
        // Connector::new re-validates connectivity.
        assert!(Connector::new(&g, c.vertices()).is_ok());
    }

    #[test]
    fn returns_dense_community_like_solutions() {
        // ctp maximizes min degree: on a clique-with-tail, querying two
        // clique members keeps the clique, not the tail.
        // Clique 0..5, tail 5-6-7.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        edges.extend_from_slice(&[(4, 5), (5, 6), (6, 7)]);
        let g = Graph::from_edges(8, &edges).unwrap();
        let c = ctp(&g, &[0, 2]).unwrap();
        assert!(
            c.contains_all(&[0, 1, 2, 3, 4]),
            "clique kept: {:?}",
            c.vertices()
        );
        assert!(!c.contains(7), "tail should be peeled: {:?}", c.vertices());
    }

    #[test]
    fn single_query_vertex() {
        let g = structured::path(4);
        let c = ctp(&g, &[2]).unwrap();
        assert_eq!(c.vertices(), &[2]);
    }

    #[test]
    fn path_query_keeps_path() {
        let g = structured::path(9);
        let c = ctp(&g, &[2, 6]).unwrap();
        assert!(c.contains_all(&[2, 3, 4, 5, 6]));
    }

    #[test]
    fn disconnected_query_errors() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(ctp(&g, &[0, 2]).is_err());
    }

    #[test]
    fn solutions_are_larger_and_denser_than_trees() {
        // Table 3's qualitative shape: ctp returns community-like chunks.
        let g = karate_club();
        let q: Vec<NodeId> = vec![0, 33];
        let c = ctp(&g, &q).unwrap();
        let st = crate::st::steiner_tree_baseline(&g, &q).unwrap();
        assert!(c.len() >= st.len());
        let sub = c.induced(&g).unwrap();
        assert!(metrics::average_degree(sub.graph()) >= 2.0);
    }
}
