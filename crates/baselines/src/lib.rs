//! The query-dependent subgraph baselines the paper compares against
//! (§6.1), implemented from scratch:
//!
//! * [`ppr`](crate::ppr::ppr) — personalized PageRank expansion
//!   (Kloumann & Kleinberg's recommended setup);
//! * [`cps`](crate::cps::cps) — Center-piece Subgraph (Tong & Faloutsos)
//!   with Hadamard-product scoring;
//! * [`ctp`](crate::ctp::ctp) — the Cocktail Party community search
//!   (Sozio & Gionis) on the smallest covering BFS ball;
//! * [`st`](crate::st::steiner_tree_baseline) — Mehlhorn's Steiner tree.
//!
//! All baselines consume a graph + query set and return a
//! [`mwc_core::Connector`], so the evaluation harness can measure size,
//! density, centrality, and Wiener index uniformly (Table 3).
//!
//! Every method also implements [`mwc_core::ConnectorSolver`] (see
//! [`solvers`]); [`full_engine`] assembles the complete method table into
//! one [`mwc_core::QueryEngine`] keyed by the paper's method names.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cps;
pub mod ctp;
pub mod greedy;
pub mod greedy_wiener;
pub mod ppr;
pub mod rwr;
pub mod solvers;
pub mod st;

pub use cps::cps;
pub use ctp::ctp;
pub use greedy_wiener::greedy_wiener;
pub use ppr::ppr;
pub use rwr::RwrParams;
pub use solvers::{full_engine, full_engine_shared, register_baselines, PAPER_METHODS};
pub use st::steiner_tree_baseline;

use mwc_core::{Connector, Result};
use mwc_graph::{Graph, NodeId};

/// The five methods of the paper's evaluation, including `ws-q` itself.
///
/// Legacy shim: kept for existing callers and tests. New code should
/// select methods by registry name through [`full_engine`] /
/// [`mwc_core::QueryEngine`] instead of matching on this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Cocktail party (community search).
    Ctp,
    /// Center-piece subgraph.
    Cps,
    /// Personalized PageRank.
    Ppr,
    /// Steiner tree (Mehlhorn).
    St,
    /// The paper's algorithm (Algorithm 1).
    WsQ,
}

impl Method {
    /// All methods, in the row order of Table 3.
    pub const ALL: [Method; 5] = [
        Method::Ctp,
        Method::Cps,
        Method::Ppr,
        Method::St,
        Method::WsQ,
    ];

    /// The paper's short name for the method.
    pub fn name(self) -> &'static str {
        match self {
            Method::Ctp => "ctp",
            Method::Cps => "cps",
            Method::Ppr => "ppr",
            Method::St => "st",
            Method::WsQ => "ws-q",
        }
    }

    /// Runs the method on `(g, q)` and returns its connector.
    pub fn run(self, g: &Graph, q: &[NodeId]) -> Result<Connector> {
        match self {
            Method::Ctp => ctp::ctp(g, q),
            Method::Cps => cps::cps(g, q),
            Method::Ppr => ppr::ppr(g, q),
            Method::St => st::steiner_tree_baseline(g, q),
            Method::WsQ => Ok(mwc_core::minimum_wiener_connector(g, q)?.connector),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::karate::karate_club;

    #[test]
    fn all_methods_produce_valid_connectors() {
        let g = karate_club();
        let q: Vec<NodeId> = vec![11, 24, 25, 29];
        for m in Method::ALL {
            let c = m
                .run(&g, &q)
                .unwrap_or_else(|e| panic!("{} failed: {e}", m.name()));
            assert!(c.contains_all(&q), "{} missing query vertices", m.name());
            assert!(
                Connector::new(&g, c.vertices()).is_ok(),
                "{} returned a disconnected set",
                m.name()
            );
        }
    }

    #[test]
    fn wsq_has_smallest_wiener_index_on_karate() {
        // The defining property (Table 3's W(H) row): ws-q minimizes the
        // Wiener index among all methods.
        let g = karate_club();
        let q: Vec<NodeId> = vec![11, 24, 25, 29];
        let wsq_w = Method::WsQ.run(&g, &q).unwrap().wiener_index(&g).unwrap();
        for m in [Method::Ctp, Method::Cps, Method::Ppr, Method::St] {
            let w = m.run(&g, &q).unwrap().wiener_index(&g).unwrap();
            assert!(wsq_w <= w, "{} achieved W = {w} < ws-q's {wsq_w}", m.name());
        }
    }

    #[test]
    fn method_names_match_paper() {
        let names: Vec<&str> = Method::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["ctp", "cps", "ppr", "st", "ws-q"]);
    }
}
