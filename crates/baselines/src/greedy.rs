//! Shared greedy "add by score until the query connects" expansion used by
//! the `ppr` and `cps` baselines (§6.1: "we greedily add to the solution
//! the highest-score vertex, until we connect the vertices in Q").

use mwc_core::steiner::UnionFind;
use mwc_core::{wsq::normalize_query, Connector, CoreError, Result};
use mwc_graph::{Graph, NodeId};

/// Expands `Q` by repeatedly adding the highest-scoring vertex until the
/// query vertices lie in one component of the induced subgraph; returns
/// that component as the solution connector.
///
/// Vertices are ranked by `(score desc, id asc)` — deterministic under
/// ties. Vertices never added: those with `-∞` score. Errors if the scores
/// cannot connect `Q` (e.g. the query spans graph components).
pub fn greedy_connect(g: &Graph, q: &[NodeId], score: &[f64]) -> Result<Connector> {
    let q = normalize_query(g, q)?;
    assert_eq!(
        score.len(),
        g.num_nodes(),
        "score vector must cover the graph"
    );

    let n = g.num_nodes();
    let mut added = vec![false; n];
    let mut uf = UnionFind::new(n);
    let add = |v: NodeId, added: &mut Vec<bool>, uf: &mut UnionFind| {
        added[v as usize] = true;
        for &nb in g.neighbors(v) {
            if added[nb as usize] {
                uf.union(v, nb);
            }
        }
    };

    for &v in &q {
        add(v, &mut added, &mut uf);
    }
    let connected = |uf: &mut UnionFind| -> bool {
        let root = uf.find(q[0]);
        q.iter().all(|&v| uf.find(v) == root)
    };

    if !connected(&mut uf) {
        // Rank all remaining vertices once; stop as soon as Q connects.
        let mut order: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| !added[v as usize] && score[v as usize].is_finite())
            .collect();
        order.sort_unstable_by(|&a, &b| {
            score[b as usize]
                .total_cmp(&score[a as usize])
                .then(a.cmp(&b))
        });
        for v in order {
            add(v, &mut added, &mut uf);
            if connected(&mut uf) {
                break;
            }
        }
        if !connected(&mut uf) {
            return Err(CoreError::QueryNotConnectable);
        }
    }

    // Solution = Q's component within the added set.
    let root = uf.find(q[0]);
    let solution: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| added[v as usize] && uf.find(v) == root)
        .collect();
    Ok(Connector::new_unchecked(g, solution))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::structured;

    #[test]
    fn adds_along_best_scores() {
        // Path 0-1-2-3-4, Q = {0, 4}; interior scores force the whole path.
        let g = structured::path(5);
        let score = vec![0.0, 3.0, 2.0, 1.0, 0.0];
        let c = greedy_connect(&g, &[0, 4], &score).unwrap();
        assert_eq!(c.vertices(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn stops_as_soon_as_connected() {
        // Diamond: 0-1-3, 0-2-3; vertex 1 scores higher → 2 is never added.
        let g = Graph::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
        let score = vec![0.0, 10.0, 1.0, 0.0];
        let c = greedy_connect(&g, &[0, 3], &score).unwrap();
        assert_eq!(c.vertices(), &[0, 1, 3]);
    }

    #[test]
    fn prunes_disconnected_additions() {
        // High-scoring vertex 4 is irrelevant to connecting {0, 2}; it may
        // be added but must not appear in the final component.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (4, 5)]).unwrap();
        let score = vec![0.0, 0.5, 0.0, 0.0, 9.0, 8.0];
        let c = greedy_connect(&g, &[0, 2], &score).unwrap();
        assert_eq!(c.vertices(), &[0, 1, 2]);
    }

    #[test]
    fn already_connected_query_returns_query() {
        let g = structured::complete(5);
        let score = vec![1.0; 5];
        let c = greedy_connect(&g, &[1, 3], &score).unwrap();
        assert_eq!(c.vertices(), &[1, 3]);
    }

    #[test]
    fn infeasible_query_errors() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let score = vec![1.0; 4];
        assert!(matches!(
            greedy_connect(&g, &[0, 3], &score),
            Err(CoreError::QueryNotConnectable)
        ));
    }

    #[test]
    fn neg_infinity_scores_are_never_added() {
        let g = structured::path(3);
        let mut score = vec![1.0; 3];
        score[1] = f64::NEG_INFINITY;
        assert!(greedy_connect(&g, &[0, 2], &score).is_err());
    }
}
