//! [`ConnectorSolver`] adapters for the §6.1 baselines, plus the
//! [`full_engine`] constructor assembling the paper's complete method
//! table into one [`QueryEngine`].
//!
//! Each adapter wraps one baseline function behind the engine trait so
//! harness code selects methods by registry name (`engine.solve("cps",
//! &q)`) instead of matching on an enum. Baselines have no `(root, λ)`
//! candidate notion and no optimality certificates, so reports carry
//! `candidates = 0` and `optimal = None`; the Wiener index is evaluated
//! exactly once per solve (it is the paper's comparison metric — Table 3).

use mwc_core::engine::{ConnectorSolver, QueryContext, QueryEngine, SolveReport};
use mwc_core::{Connector, Result};
use mwc_graph::{Graph, NodeId};

use crate::{cps, ctp, greedy_wiener, ppr, st};

/// Builds a uniform report around a baseline's connector. The Wiener
/// evaluation is the expensive part for the large connectors `ctp`/`cps`
/// return; it honors the context's `prefer_sequential` contract so batch
/// workers (already one per core) never nest the parallel kernel.
fn report(solver: &str, ctx: &QueryContext<'_>, connector: Connector) -> Result<SolveReport> {
    let wiener_index = connector.wiener_index_with(ctx.graph(), ctx.prefer_sequential())?;
    Ok(SolveReport {
        solver: solver.to_string(),
        connector,
        wiener_index,
        seconds: 0.0,
        candidates: 0,
        optimal: None,
    })
}

macro_rules! baseline_solver {
    ($(#[$doc:meta])* $ty:ident, $name:literal, $f:path) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $ty;

        impl ConnectorSolver for $ty {
            fn name(&self) -> &str {
                $name
            }

            fn solve(&self, ctx: &QueryContext<'_>, q: &[NodeId]) -> Result<SolveReport> {
                report($name, ctx, $f(ctx.graph(), q)?)
            }
        }
    };
}

baseline_solver!(
    /// `"ctp"` — Cocktail Party community search (Sozio & Gionis), §6.1.
    CtpSolver,
    "ctp",
    ctp::ctp
);
baseline_solver!(
    /// `"cps"` — Center-piece Subgraph (Tong & Faloutsos), §6.1.
    CpsSolver,
    "cps",
    cps::cps
);
baseline_solver!(
    /// `"ppr"` — personalized PageRank expansion (Kloumann & Kleinberg),
    /// §6.1.
    PprSolver,
    "ppr",
    ppr::ppr
);
baseline_solver!(
    /// `"st"` — Mehlhorn's Steiner tree, §6.1.
    StSolver,
    "st",
    st::steiner_tree_baseline
);
baseline_solver!(
    /// `"greedy-wiener"` — greedy Wiener expansion (an extension beyond
    /// the paper; the ablation study's sanity baseline).
    GreedyWienerSolver,
    "greedy-wiener",
    greedy_wiener::greedy_wiener
);

/// The five methods of the paper's evaluation, in Table 3 row order.
/// All are registered by [`full_engine`]; kept next to it so harness
/// code and examples share one definition.
pub const PAPER_METHODS: [&str; 5] = ["ctp", "cps", "ppr", "st", "ws-q"];

/// Registers the five baseline methods on `engine`, in the paper's
/// Table 3 row order (`ctp`, `cps`, `ppr`, `st`) followed by the
/// `greedy-wiener` extension.
pub fn register_baselines(engine: &mut QueryEngine<'_>) {
    engine
        .register(Box::new(CtpSolver))
        .register(Box::new(CpsSolver))
        .register(Box::new(PprSolver))
        .register(Box::new(StSolver))
        .register(Box::new(GreedyWienerSolver));
}

/// A [`QueryEngine`] with the complete method table: the core solvers
/// (`ws-q`, `ws-q-approx`, `ws-q+ls`, `exact`) plus every baseline.
/// The standard entry point for the bench harness and the facade crate.
pub fn full_engine(graph: &Graph) -> QueryEngine<'_> {
    let mut engine = QueryEngine::new(graph);
    register_baselines(&mut engine);
    engine
}

/// An [`OwnedEngine`](mwc_core::OwnedEngine) with the complete method
/// table, sharing ownership of `graph`. The serving-side counterpart of
/// [`full_engine`]: `mwc_service`'s catalog stores one per loaded graph.
pub fn full_engine_shared(graph: std::sync::Arc<Graph>) -> mwc_core::OwnedEngine {
    let mut engine = QueryEngine::new_shared(graph);
    register_baselines(&mut engine);
    engine
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::karate::karate_club;

    #[test]
    fn full_engine_registry_is_sorted() {
        let g = karate_club();
        let engine = full_engine(&g);
        // `solver_names` reports the registry deterministically sorted.
        assert_eq!(
            engine.solver_names(),
            vec![
                "cps",
                "ctp",
                "exact",
                "greedy-wiener",
                "ppr",
                "st",
                "ws-q",
                "ws-q+ls",
                "ws-q-approx"
            ]
        );
        let shared = full_engine_shared(std::sync::Arc::new(karate_club()));
        assert_eq!(shared.solver_names(), engine.solver_names());
    }

    #[test]
    fn baseline_solvers_match_direct_calls() {
        let g = karate_club();
        let engine = full_engine(&g);
        let q: Vec<NodeId> = vec![11, 24, 25, 29];
        for (name, direct) in [
            ("ctp", ctp::ctp(&g, &q).unwrap()),
            ("cps", cps::cps(&g, &q).unwrap()),
            ("ppr", ppr::ppr(&g, &q).unwrap()),
            ("st", st::steiner_tree_baseline(&g, &q).unwrap()),
            (
                "greedy-wiener",
                greedy_wiener::greedy_wiener(&g, &q).unwrap(),
            ),
        ] {
            let r = engine.solve(name, &q).unwrap();
            assert_eq!(r.connector.vertices(), direct.vertices(), "{name}");
            assert_eq!(r.wiener_index, direct.wiener_index(&g).unwrap(), "{name}");
            assert_eq!(r.solver, name);
        }
    }

    #[test]
    fn wsq_beats_every_baseline_on_karate() {
        let g = karate_club();
        let engine = full_engine(&g);
        let q: Vec<NodeId> = vec![11, 24, 25, 29];
        let wsq = engine.solve("ws-q", &q).unwrap().wiener_index;
        for name in ["ctp", "cps", "ppr", "st"] {
            let w = engine.solve(name, &q).unwrap().wiener_index;
            assert!(wsq <= w, "{name} achieved W = {w} < ws-q's {wsq}");
        }
    }
}
