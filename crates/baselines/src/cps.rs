//! `cps` — Center-piece Subgraph (Tong & Faloutsos, KDD 2006).
//!
//! One random walk with restart *per query vertex*; per-vertex scores are
//! combined with the Hadamard (component-wise) product — the "k-softAND"
//! that rewards vertices close to *all* query vertices simultaneously.
//! As in the paper's setup (§6.1), no budget is imposed: vertices are
//! added greedily by combined score until `Q` is connected.

use mwc_core::{wsq::normalize_query, Connector, Result};
use mwc_graph::{Graph, NodeId};

use crate::greedy::greedy_connect;
use crate::rwr::{random_walk_with_restart, RwrParams};

/// Runs the `cps` baseline with the paper's default RWR parameters.
pub fn cps(g: &Graph, q: &[NodeId]) -> Result<Connector> {
    cps_with_params(g, q, RwrParams::default())
}

/// Runs the `cps` baseline with explicit RWR parameters.
pub fn cps_with_params(g: &Graph, q: &[NodeId], params: RwrParams) -> Result<Connector> {
    let q = normalize_query(g, q)?;
    // Hadamard product in log-space: vertices unreachable from any single
    // query vertex get -∞ and are never added (a vertex that no walk
    // reaches cannot sit "between" the queries).
    let mut combined = vec![0.0f64; g.num_nodes()];
    for &s in &q {
        let scores = random_walk_with_restart(g, &[s], params);
        for (acc, &x) in combined.iter_mut().zip(scores.iter()) {
            *acc += if x > 0.0 { x.ln() } else { f64::NEG_INFINITY };
        }
    }
    greedy_connect(g, &q, &combined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{karate::karate_club, structured};

    #[test]
    fn connects_query_on_karate() {
        let g = karate_club();
        let q: Vec<NodeId> = vec![11, 24, 25, 29];
        let c = cps(&g, &q).unwrap();
        assert!(c.contains_all(&q));
    }

    #[test]
    fn prefers_vertices_between_queries() {
        // Barbell-ish: two stars joined by a middle vertex. The middle
        // vertex scores high for both queries and should be chosen.
        // star A: hub 0, leaves 1..4; star B: hub 5, leaves 6..9; bridge 10.
        let mut edges = vec![(0u32, 10), (5u32, 10)];
        for leaf in 1..5 {
            edges.push((0, leaf));
        }
        for leaf in 6..10 {
            edges.push((5, leaf));
        }
        let g = Graph::from_edges(11, &edges).unwrap();
        let c = cps(&g, &[1, 6]).unwrap();
        assert!(
            c.contains(10),
            "bridge vertex not selected: {:?}",
            c.vertices()
        );
        assert!(c.contains(0) && c.contains(5));
    }

    #[test]
    fn softand_excludes_one_sided_vertices() {
        // A pendant far from one query vertex has a tiny product score and
        // must not be included when a direct connection exists.
        let g = structured::path(5);
        let c = cps(&g, &[1, 3]).unwrap();
        assert!(!c.contains(0) || !c.contains(4));
        assert!(c.contains(2));
    }

    #[test]
    fn single_query_vertex() {
        let g = structured::path(3);
        let c = cps(&g, &[1]).unwrap();
        assert_eq!(c.vertices(), &[1]);
    }
}
