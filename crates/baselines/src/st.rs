//! `st` — the Steiner tree baseline: Mehlhorn's 2-approximation with unit
//! edge weights, exactly the algorithm `ws-q` invokes internally on the
//! reweighted graphs (§6.1).

use mwc_core::{mehlhorn_steiner, Connector, Result};
use mwc_graph::{Graph, NodeId};

/// Runs the `st` baseline; the solution is the vertex set of the
/// approximate Steiner tree (evaluated, like every method, as the induced
/// subgraph over its vertices).
pub fn steiner_tree_baseline(g: &Graph, q: &[NodeId]) -> Result<Connector> {
    let tree = mehlhorn_steiner(g, q, |_, _| 1.0)?;
    Ok(Connector::new_unchecked(g, tree.nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{karate::karate_club, structured};

    #[test]
    fn steiner_on_figure2_is_the_line() {
        // Fig 2: the optimal Steiner tree for the line query is the line
        // itself (W = 165) — the example of st being arbitrarily worse in
        // Wiener index than ws-q.
        let g = structured::figure2_graph(10);
        let q: Vec<NodeId> = (0..10).collect();
        let c = steiner_tree_baseline(&g, &q).unwrap();
        assert_eq!(c.vertices(), q.as_slice());
        assert_eq!(c.wiener_index(&g).unwrap(), 165);
    }

    #[test]
    fn small_solution_on_karate() {
        let g = karate_club();
        let q: Vec<NodeId> = vec![11, 24, 25, 29];
        let c = steiner_tree_baseline(&g, &q).unwrap();
        assert!(c.contains_all(&q));
        assert!(c.len() <= 10);
    }

    #[test]
    fn two_terminals_shortest_path_length() {
        let g = structured::grid(5, 5, false);
        let c = steiner_tree_baseline(&g, &[0, 24]).unwrap();
        assert_eq!(c.len(), 9);
    }
}
