//! Minimal argument parsing shared by all harness binaries (no external
//! CLI crate — two flags do not justify a dependency).

/// Experiment scale: trades runtime for fidelity to the paper's sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds: smallest graphs, fewest repetitions.
    Quick,
    /// Minutes: medium stand-ins, paper repetition counts.
    Medium,
    /// Paper-scale graphs where memory allows; expect long runtimes.
    Full,
}

impl Scale {
    /// Parses `quick` / `medium` / `full`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "medium" => Some(Scale::Medium),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Picks among three values by scale.
    pub fn pick<T>(self, quick: T, medium: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Medium => medium,
            Scale::Full => full,
        }
    }
}

/// Parsed harness arguments.
#[derive(Debug, Clone, Copy)]
pub struct HarnessArgs {
    /// Requested scale (default: quick).
    pub scale: Scale,
    /// Workload seed (default: 42).
    pub seed: u64,
}

/// Parses `--scale` and `--seed` from `std::env::args`, exiting with a
/// usage message on malformed input.
pub fn parse_args() -> HarnessArgs {
    parse_from(std::env::args().skip(1))
}

fn parse_from(args: impl Iterator<Item = String>) -> HarnessArgs {
    let mut out = HarnessArgs {
        scale: Scale::Quick,
        seed: 42,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                out.scale = Scale::parse(&v).unwrap_or_else(|| usage(&format!("bad scale {v:?}")));
            }
            "--seed" => {
                let v = args.next().unwrap_or_default();
                out.seed = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad seed {v:?}")));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    out
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: <binary> [--scale quick|medium|full] [--seed <u64>]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> HarnessArgs {
        parse_from(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, Scale::Quick);
        assert_eq!(a.seed, 42);
    }

    #[test]
    fn parses_flags() {
        let a = parse(&["--scale", "full", "--seed", "7"]);
        assert_eq!(a.scale, Scale::Full);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2, 3), 1);
        assert_eq!(Scale::Medium.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }
}
