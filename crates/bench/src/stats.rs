//! Small statistics helpers for the harness.

use std::time::{Duration, Instant};

/// Wall-clock timer.
#[derive(Debug)]
pub struct Timer(Instant);

impl Timer {
    /// Starts a timer.
    pub fn start() -> Self {
        Timer(Instant::now())
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed seconds as `f64`.
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Times a closure, returning its output and the elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Timer::start();
    let out = f();
    (out, t.seconds())
}

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Empirical CDF evaluated at `x`: the fraction of samples `<= x`.
pub fn cdf_at(samples: &[f64], x: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&s| s <= x).count() as f64 / samples.len() as f64
}

/// Quantile by linear interpolation over sorted data (`q ∈ [0, 1]`).
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn cdf_fractions() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(cdf_at(&s, 0.5), 0.0);
        assert_eq!(cdf_at(&s, 2.0), 0.5);
        assert_eq!(cdf_at(&s, 9.0), 1.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = [0.0, 10.0];
        assert_eq!(quantile(&s, 0.0), 0.0);
        assert_eq!(quantile(&s, 0.5), 5.0);
        assert_eq!(quantile(&s, 1.0), 10.0);
    }

    #[test]
    fn timer_measures_something() {
        let (out, secs) = timed(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(out > 0);
        assert!(secs >= 0.0);
    }
}
