//! Figure 2 — the Steiner tree vs Wiener connector separation example.
//!
//! Reproduces the exact numbers of §2 (W(Q) = 165, W(Q ∪ {r1}) = 151,
//! W(Q ∪ {r1, r2}) = 142) and then sweeps the generalized family (line of
//! length h plus a hub) to exhibit the Ω(h³) vs O(h²) gap the paper
//! derives.

use mwc_baselines::steiner_tree_baseline;
use mwc_bench::parse_args;
use mwc_bench::table::Table;
use mwc_core::exact::{exact_minimum, ExactConfig};
use mwc_core::minimum_wiener_connector;
use mwc_graph::generators::structured;
use mwc_graph::wiener::wiener_index_of_subset;

fn main() {
    let args = parse_args();

    println!("Figure 2: line of 10 vertices plus two half-covering roots\n");
    let g = structured::figure2_graph(10);
    let line: Vec<u32> = (0..10).collect();
    let w = |set: &[u32]| wiener_index_of_subset(&g, set).unwrap().unwrap();
    println!("W(Q)              = {}   (paper: 165)", w(&line));
    let one: Vec<u32> = (0..11).collect();
    println!("W(Q ∪ {{r1}})       = {}   (paper: 151)", w(&one));
    let both: Vec<u32> = (0..12).collect();
    println!("W(Q ∪ {{r1, r2}})   = {}   (paper: 142)", w(&both));

    let st = steiner_tree_baseline(&g, &line).expect("steiner");
    println!(
        "\nSteiner tree solution: {} vertices, W = {}",
        st.len(),
        st.wiener_index(&g).unwrap()
    );
    let wsq = minimum_wiener_connector(&g, &line).expect("wsq");
    println!(
        "ws-q solution:        {} vertices, W = {}",
        wsq.connector.len(),
        wsq.wiener_index
    );
    let exact = exact_minimum(&g, &line, Some(&wsq.connector), &ExactConfig::default()).unwrap();
    println!(
        "exact optimum:        {} vertices, W = {}",
        exact.connector.len(),
        exact.wiener_index
    );

    // Generalization: line of length h + full hub; Steiner keeps the line
    // (W = (h³ - h)/6 = Ω(h³)), the Wiener connector adds the hub (O(h²)).
    println!("\nGeneralized family (line_with_hub): Steiner Ω(h³) vs connector O(h²)\n");
    let hs: Vec<usize> = match args.scale {
        mwc_bench::Scale::Quick => vec![10, 20, 40],
        _ => vec![10, 20, 40, 80, 160, 320],
    };
    let mut t = Table::new(&[
        "h",
        "W(line) = st",
        "W(line+hub)",
        "ratio",
        "ws-q W",
        "hub picked",
    ]);
    for h in hs {
        let g = structured::line_with_hub(h);
        let line: Vec<u32> = (0..h as u32).collect();
        let line_w = wiener_index_of_subset(&g, &line).unwrap().unwrap();
        let all: Vec<u32> = (0..=h as u32).collect();
        let hub_w = wiener_index_of_subset(&g, &all).unwrap().unwrap();
        let wsq = minimum_wiener_connector(&g, &line).expect("wsq");
        t.add_row(vec![
            h.to_string(),
            line_w.to_string(),
            hub_w.to_string(),
            format!("{:.1}", line_w as f64 / hub_w as f64),
            wsq.wiener_index.to_string(),
            wsq.connector.contains(h as u32).to_string(),
        ]);
    }
    t.print();
    println!("\nthe ratio grows linearly in h — the separation is unbounded, as claimed.");
}
