//! Table 4 — ground-truth community workloads (§6.4).
//!
//! On graphs with planted communities (dblp/youtube stand-ins), builds the
//! paper's two workloads — all query vertices in the same community (`sc`)
//! vs in different communities (`dc`), 10 queries per size in
//! {3, 5, 10, 20} — and reports each method's average solution size and
//! the dc/sc blow-up ratio.

use mwc_baselines::full_engine;
use mwc_bench::table::{fmt_big, fmt_f64, Table};
use mwc_bench::PAPER_METHODS;
use mwc_bench::{parse_args, Scale};
use mwc_core::QueryOptions;
use mwc_datasets::{realworld, workloads};
use mwc_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Paper Table 4: (dataset, method, dc size, sc size, ratio).
const PAPER: &[(&str, &str, f64, f64, f64)] = &[
    ("dblp", "ctp", 1.4e5, 2.8e4, 5.03),
    ("dblp", "cps", 4.1e4, 3.69e3, 11.3),
    ("dblp", "ppr", 3.4e4, 3.5e3, 8.6),
    ("dblp", "st", 40.0, 29.0, 1.43),
    ("dblp", "ws-q", 36.0, 26.0, 1.38),
    ("youtube", "ctp", 8e5, 2.3e5, 3.5),
    ("youtube", "cps", 3.6e5, 5.0e4, 7.4),
    ("youtube", "ppr", 3.9e5, 4.1e4, 9.2),
    ("youtube", "st", 20.0, 16.0, 1.3),
    ("youtube", "ws-q", 18.0, 14.0, 1.3),
];

fn workload(
    g: &Graph,
    membership: &[u32],
    sizes: &[usize],
    per_size: usize,
    same_community: bool,
    min_comm: usize,
    rng: &mut StdRng,
) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    for &s in sizes {
        let mut made = 0;
        let mut guard = 0;
        while made < per_size && guard < per_size * 20 {
            guard += 1;
            let q = if same_community {
                workloads::same_community_query(g, membership, s, min_comm, rng)
            } else {
                workloads::different_communities_query(g, membership, s, rng)
            };
            if let Some(q) = q {
                // Only queries within one component are usable.
                if mwc_graph::connectivity::is_connected_subset(g, &q.vertices).is_ok() {
                    out.push(q.vertices);
                    made += 1;
                }
            }
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let mut rng = StdRng::seed_from_u64(args.seed);

    // Paper: queries of each size in {3,5,10,20}, 10 per size; avoid
    // communities smaller than 100 vertices for sc.
    let (datasets, sizes, per_size, min_comm): (Vec<(&str, f64)>, Vec<usize>, usize, usize) =
        match args.scale {
            Scale::Quick => (vec![("dblp", 0.01)], vec![3, 5], 3, 20),
            Scale::Medium => (
                vec![("dblp", 0.05), ("youtube", 0.02)],
                vec![3, 5, 10, 20],
                5,
                50,
            ),
            Scale::Full => (
                vec![("dblp", 0.5), ("youtube", 0.25)],
                vec![3, 5, 10, 20],
                10,
                100,
            ),
        };

    println!("Table 4: average solution size, dc vs sc community workloads");
    println!("(ours | paper reference for the full-size original)\n");
    let mut t = Table::new(&[
        "dataset",
        "method",
        "dc ours",
        "dc paper",
        "sc ours",
        "sc paper",
        "dc/sc ours",
        "dc/sc paper",
    ]);

    for (name, scale) in datasets {
        let si = realworld::standin_scaled(name, scale).expect("dataset");
        let g = &si.graph;
        let membership = si.membership.as_ref().expect("community stand-in");
        eprintln!(
            "[table4] {name}: n = {}, m = {}",
            g.num_nodes(),
            g.num_edges()
        );

        let dc = workload(g, membership, &sizes, per_size, false, min_comm, &mut rng);
        let sc = workload(g, membership, &sizes, per_size, true, min_comm, &mut rng);

        let engine = full_engine(g);
        for method in PAPER_METHODS {
            // Each workload is served as one parallel batch per method.
            let avg_size = |qs: &[Vec<NodeId>]| -> f64 {
                let reports = engine.solve_batch(method, qs, &QueryOptions::default());
                let sizes: Vec<f64> = reports
                    .into_iter()
                    .filter_map(|r| r.ok())
                    .map(|r| r.connector.len() as f64)
                    .collect();
                if sizes.is_empty() {
                    f64::NAN
                } else {
                    sizes.iter().sum::<f64>() / sizes.len() as f64
                }
            };
            let dc_size = avg_size(&dc);
            let sc_size = avg_size(&sc);
            let paper = PAPER.iter().find(|r| r.0 == name && r.1 == method);
            t.add_row(vec![
                name.to_string(),
                method.to_string(),
                fmt_big(dc_size),
                paper.map(|r| fmt_big(r.2)).unwrap_or_else(|| "-".into()),
                fmt_big(sc_size),
                paper.map(|r| fmt_big(r.3)).unwrap_or_else(|| "-".into()),
                fmt_f64(dc_size / sc_size, 2),
                paper.map(|r| fmt_f64(r.4, 2)).unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    t.print();
    println!("\nExpected shape: ppr/cps blow up several-fold on dc queries; ctp is large");
    println!("on both; st and ws-q grow only slightly (ratio ≈ 1.3-1.4).");
}
