//! Figure 7 / Table 5 — the Twitter #kdd2014 case study (§7).
//!
//! Extracts minimum Wiener connectors for the two cross-community query
//! sets on the synthetic mention-graph stand-in, and reports the Table 5
//! style statistics (degree = mention count, betweenness rank) for the
//! recruited users — the paper's observation being that both connectors
//! contain the graph's global influencers (kdnuggets, drewconway).

use mwc_bench::parse_args;
use mwc_bench::table::Table;
use mwc_core::minimum_wiener_connector;
use mwc_datasets::twitter;
use mwc_graph::centrality;
use mwc_graph::community::{cnm, communities_spanned, rand_index, CnmStop};
use rand::SeedableRng;

fn main() {
    let _ = parse_args();
    let tw = twitter::kdd2014_network();
    let g = &tw.network.graph;
    println!(
        "Figure 7 / Table 5: #kdd2014 stand-in ({} users, {} edges, 10 communities)\n",
        g.num_nodes(),
        g.num_edges()
    );

    // The paper: "The Clauset-Newman-Moore algorithm was used to cluster
    // the graph into 10 communities." Run the same clustering and report
    // how well it recovers the planted structure.
    let clustering = cnm(g, CnmStop::Communities(10));
    println!(
        "CNM clustering: {} communities, modularity {:.3}, rand index vs planted {:.3}\n",
        clustering.num_communities,
        clustering.modularity,
        rand_index(&clustering.membership, &tw.membership),
    );

    let bc =
        centrality::betweenness_sampled(g, 500, true, &mut rand::rngs::StdRng::seed_from_u64(5));
    let mut bc_rank: Vec<usize> = (0..g.num_nodes()).collect();
    bc_rank.sort_by(|&a, &b| bc[b].total_cmp(&bc[a]));
    let rank_of = |v: u32| bc_rank.iter().position(|&x| x == v as usize).unwrap() + 1;

    // Table 5 analog for the named users.
    println!("Table 5 analog (named users):");
    let mut t = Table::new(&["user", "community", "degree", "bc rank"]);
    for handle in twitter::GLOBAL_HUBS
        .iter()
        .chain(twitter::INFLUENCERS.iter().map(|(h, _)| h))
    {
        let id = tw.network.id_of(handle).expect("named user");
        t.add_row(vec![
            format!("@{handle}"),
            format!("G{}", tw.membership[id as usize] + 1),
            g.degree(id).to_string(),
            format!("#{}", rank_of(id)),
        ]);
    }
    t.print();

    for (i, q_labels) in twitter::figure7_queries().iter().enumerate() {
        println!("\n=== connector {} ===", i + 1);
        let q = tw.network.ids_of(q_labels);
        println!(
            "query: {q_labels:?} (spans {} CNM communities)",
            communities_spanned(&clustering.membership, &q)
        );
        let sol = minimum_wiener_connector(g, &q).expect("solve");
        println!(
            "connector ({} users, W = {}):",
            sol.connector.len(),
            sol.wiener_index
        );
        for &v in sol.connector.vertices() {
            let tag = if q.contains(&v) { "query" } else { "ADDED" };
            println!(
                "  {tag}  @{:<18} G{:<2} degree {:>3} bc-rank #{}",
                tw.network.label(v),
                tw.membership[v as usize] + 1,
                g.degree(v),
                rank_of(v)
            );
        }
    }
    println!("\npaper: both connectors contain kdnuggets (23.1k followers, top-1");
    println!("mentioned & top-1 betweenness) and/or drewconway (10.7k followers), plus");
    println!("per-community influencers — i.e. the added vertices are the graph's most");
    println!("influential users.");
}
