//! `loadgen` — closed-loop load generator for `mwc-server`, emitting
//! `BENCH_service.json` with throughput and latency per solver.
//!
//! ```text
//! cargo run --release -p mwc-bench --bin loadgen -- [options]
//!
//!   --addr HOST:PORT    drive an already-running server (default: spawn
//!                       an in-process server on an ephemeral port)
//!   --graph NAME=SPEC   graph(s) for the in-process server; repeatable
//!                       (default: karate=karate and ba2k=ba:2000x3)
//!   --clients N         concurrent closed-loop clients (default 8)
//!   --duration-secs N   measured wall-clock per run (default 5)
//!   --solvers A,B,...   solvers to exercise (default ws-q,ws-q-approx,st)
//!   --deadline-ms N     per-request deadline (default: none)
//!   --out PATH          output path (default BENCH_service.json)
//!   --seed N            workload RNG seed (default 42)
//! ```
//!
//! Closed loop: each client keeps exactly one request in flight —
//! throughput measures what the server sustains at `--clients`
//! concurrency, and client-side latency includes queueing and the wire.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use mwc_graph::NodeId;
use mwc_service::{server, Catalog, Client, ClientError, Json, ServerConfig};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

#[derive(Clone)]
struct Args {
    addr: Option<String>,
    graphs: Vec<(String, String)>,
    clients: usize,
    duration: Duration,
    solvers: Vec<String>,
    deadline_ms: Option<u64>,
    out: String,
    seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--graph NAME=SPEC]... [--clients N]\n\
         \x20      [--duration-secs N] [--solvers A,B,..] [--deadline-ms N]\n\
         \x20      [--out PATH] [--seed N]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Args {
    let mut args = Args {
        addr: None,
        graphs: Vec::new(),
        clients: 8,
        duration: Duration::from_secs(5),
        solvers: vec!["ws-q".into(), "ws-q-approx".into(), "st".into()],
        deadline_ms: None,
        out: "BENCH_service.json".into(),
        seed: 42,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => args.addr = Some(value()),
            "--graph" => match value().split_once('=') {
                Some((n, s)) => args.graphs.push((n.to_string(), s.to_string())),
                None => usage(),
            },
            "--clients" => args.clients = value().parse().unwrap_or_else(|_| usage()),
            "--duration-secs" => {
                args.duration = Duration::from_secs_f64(value().parse().unwrap_or_else(|_| usage()))
            }
            "--solvers" => args.solvers = value().split(',').map(str::to_string).collect(),
            "--deadline-ms" => args.deadline_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            "--out" => args.out = value(),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if args.graphs.is_empty() {
        args.graphs = vec![
            ("karate".into(), "karate".into()),
            ("ba2k".into(), "ba:2000x3".into()),
        ];
    }
    args
}

/// One completed request, as observed by a client.
struct Sample {
    solver: usize, // index into args.solvers
    latency: Duration,
    outcome: Outcome,
}

#[derive(PartialEq)]
enum Outcome {
    Ok,
    Overloaded,
    OtherError,
}

fn client_loop(
    mut client: Client, // connected by main before the barrier exists
    args: &Args,
    graphs: &[(String, usize)], // (name, node count)
    thread_id: u64,
    stop: &AtomicBool,
    barrier: &Barrier,
) -> Vec<Sample> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed ^ (thread_id << 32));
    let mut samples = Vec::new();
    barrier.wait();
    while !stop.load(Ordering::Relaxed) {
        let (graph, nodes) = graphs.choose(&mut rng).expect("at least one graph");
        let solver = rng.gen_range(0..args.solvers.len());
        let size = rng.gen_range(2..=4usize);
        let mut q: Vec<NodeId> = (0..size)
            .map(|_| rng.gen_range(0..*nodes as NodeId))
            .collect();
        q.sort_unstable();
        q.dedup();
        if q.len() < 2 {
            continue;
        }
        let start = Instant::now();
        let outcome = match client.solve(graph, &args.solvers[solver], &q, args.deadline_ms, None) {
            Ok(_) => Outcome::Ok,
            Err(ClientError::Server(e)) if e.code == "overloaded" => Outcome::Overloaded,
            Err(ClientError::Server(_)) => Outcome::OtherError,
            Err(e) => panic!("transport failure mid-run: {e}"),
        };
        samples.push(Sample {
            solver,
            latency: start.elapsed(),
            outcome,
        });
    }
    samples
}

fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let args = parse_cli();

    // Spawn an in-process server unless we were pointed at one.
    let handle = if args.addr.is_none() {
        let catalog = Arc::new(Catalog::new());
        for (name, spec) in &args.graphs {
            eprint!("loadgen: loading {name} from {spec} ... ");
            let entry = catalog.load(name, spec).expect("load graph");
            eprintln!("{} nodes, {} edges", entry.num_nodes(), entry.num_edges());
        }
        Some(
            server::start(catalog, ServerConfig::default(), "127.0.0.1:0")
                .expect("bind in-process server"),
        )
    } else {
        None
    };
    let addr = match &args.addr {
        Some(a) => a.clone(),
        None => handle.as_ref().unwrap().local_addr().to_string(),
    };

    // Discover node counts for query sampling (and validate the solvers).
    let mut probe = Client::connect(addr.as_str()).expect("connect");
    let graphs: Vec<(String, usize)> = probe
        .graphs()
        .expect("graphs")
        .into_iter()
        .map(|g| {
            for s in &args.solvers {
                assert!(
                    g.solvers.contains(s),
                    "solver {s:?} not registered on graph {:?}",
                    g.name
                );
            }
            (g.name, g.nodes)
        })
        .collect();
    assert!(!graphs.is_empty(), "server has no graphs loaded");

    eprintln!(
        "loadgen: {} clients, {:?} per run, solvers {:?}, graphs {:?}",
        args.clients,
        args.duration,
        args.solvers,
        graphs.iter().map(|g| g.0.as_str()).collect::<Vec<_>>()
    );

    // Connect every client up front: a refused connection fails fast here
    // instead of deadlocking the start barrier from inside a thread.
    let clients: Vec<Client> = (0..args.clients)
        .map(|i| {
            Client::connect(addr.as_str())
                .unwrap_or_else(|e| panic!("loadgen client {i} connect: {e}"))
        })
        .collect();

    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(args.clients + 1);
    let started = std::thread::scope(|scope| {
        let threads: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(i, client)| {
                let (args, graphs, stop, barrier) = (&args, graphs.as_slice(), &stop, &barrier);
                scope.spawn(move || client_loop(client, args, graphs, i as u64, stop, barrier))
            })
            .collect();
        barrier.wait(); // all clients connected: measurement starts now
        let started = Instant::now();
        std::thread::sleep(args.duration);
        stop.store(true, Ordering::Relaxed);
        let samples: Vec<Sample> = threads
            .into_iter()
            .flat_map(|t| t.join().expect("client thread"))
            .collect();
        (started.elapsed(), samples)
    });
    let (elapsed, samples) = started;

    // Aggregate.
    let secs = elapsed.as_secs_f64();
    let total = samples.len();
    let ok = samples.iter().filter(|s| s.outcome == Outcome::Ok).count();
    let overloaded = samples
        .iter()
        .filter(|s| s.outcome == Outcome::Overloaded)
        .count();
    let mut per_solver: Vec<(&'static str, Json)> = Vec::new();
    println!(
        "{:<14} {:>8} {:>12} {:>9} {:>9} {:>9} {:>9}",
        "solver", "count", "thruput r/s", "mean ms", "p50 ms", "p99 ms", "max ms"
    );
    let mut solver_entries: Vec<(String, Json)> = Vec::new();
    for (i, solver) in args.solvers.iter().enumerate() {
        let mut lat: Vec<f64> = samples
            .iter()
            .filter(|s| s.solver == i && s.outcome == Outcome::Ok)
            .map(|s| s.latency.as_secs_f64() * 1e3)
            .collect();
        lat.sort_by(|a, b| a.total_cmp(b));
        let count = lat.len();
        let errors = samples
            .iter()
            .filter(|s| s.solver == i && s.outcome != Outcome::Ok)
            .count();
        let mean = if count == 0 {
            0.0
        } else {
            lat.iter().sum::<f64>() / count as f64
        };
        let (p50, p99) = (quantile_ms(&lat, 0.50), quantile_ms(&lat, 0.99));
        let max = lat.last().copied().unwrap_or(0.0);
        let throughput = count as f64 / secs;
        println!(
            "{solver:<14} {count:>8} {throughput:>12.1} {mean:>9.3} {p50:>9.3} {p99:>9.3} {max:>9.3}"
        );
        solver_entries.push((
            solver.clone(),
            Json::obj([
                ("count", Json::from(count)),
                ("errors", Json::from(errors)),
                ("throughput_rps", Json::from(throughput)),
                ("mean_ms", Json::from(mean)),
                ("p50_ms", Json::from(p50)),
                ("p99_ms", Json::from(p99)),
                ("max_ms", Json::from(max)),
            ]),
        ));
    }
    per_solver.push((
        "per_solver",
        Json::Obj(solver_entries.into_iter().collect()),
    ));

    // Grab the server's own view before shutting it down.
    let server_stats = probe.stats().ok();
    if let Some(h) = handle {
        h.shutdown();
    }

    let mut doc = vec![
        (
            "config",
            Json::obj([
                ("clients", Json::from(args.clients)),
                ("duration_secs", Json::from(secs)),
                (
                    "solvers",
                    Json::Arr(
                        args.solvers
                            .iter()
                            .map(|s| Json::from(s.as_str()))
                            .collect(),
                    ),
                ),
                (
                    "graphs",
                    Json::Arr(
                        graphs
                            .iter()
                            .map(|(n, size)| {
                                Json::obj([
                                    ("name", Json::from(n.as_str())),
                                    ("nodes", Json::from(*size)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "deadline_ms",
                    args.deadline_ms.map(Json::from).unwrap_or(Json::Null),
                ),
                ("seed", Json::from(args.seed)),
            ]),
        ),
        (
            "totals",
            Json::obj([
                ("requests", Json::from(total)),
                ("ok", Json::from(ok)),
                ("overloaded", Json::from(overloaded)),
                ("errors", Json::from(total - ok - overloaded)),
                ("throughput_rps", Json::from(total as f64 / secs)),
            ]),
        ),
    ];
    doc.extend(per_solver);
    if let Some(stats) = server_stats {
        doc.push(("server_stats", stats));
    }
    let rendered = Json::obj(doc).to_string();
    let mut file = std::fs::File::create(&args.out).expect("create output file");
    file.write_all(rendered.as_bytes()).expect("write output");
    file.write_all(b"\n").expect("write output");
    eprintln!(
        "loadgen: {total} requests in {secs:.2}s ({:.1} r/s overall) → {}",
        total as f64 / secs,
        args.out
    );
}
