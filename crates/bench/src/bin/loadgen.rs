//! `loadgen` — closed-loop load generator for `mwc-server` (and the
//! sharded `mwc-router` tier), emitting `BENCH_service.json` /
//! `BENCH_router.json` with throughput and latency.
//!
//! ```text
//! cargo run --release -p mwc-bench --bin loadgen -- [options]
//!
//!   --addr HOST:PORT    drive an already-running server (default: spawn
//!                       an in-process server on an ephemeral port)
//!   --graph NAME=SPEC   graph(s) for the in-process server; repeatable
//!                       (default: karate=karate and ba2k=ba:2000x3)
//!   --clients N         concurrent closed-loop clients (default 8)
//!   --duration-secs N   measured wall-clock per run (default 5)
//!   --solvers A,B,...   solvers to exercise (default ws-q,ws-q-approx,st;
//!                       router mode: cps)
//!   --deadline-ms N     per-request deadline (default: none)
//!   --out PATH          output path (default BENCH_service.json, or
//!                       BENCH_router.json in router mode)
//!   --seed N            workload RNG seed (default 42)
//!
//!   --router            sharded-tier comparison: run the same closed-loop
//!                       workload through an in-process mwc-router over
//!                       1 shard and over --shards shards, and record the
//!                       throughput ratio in BENCH_router.json
//!   --shards N          shard count for the multi-shard run (default 2)
//!   --shard-workers N   worker threads per shard process (default 1 —
//!                       fixed per-process capacity is the point of
//!                       sharding; scale by adding shards)
//!
//!   --contend           contention comparison: N clients hammer ONE graph
//!                       (default 32 clients, ba:2000x3, solver ws-q) over
//!                       a small fixed query pool, once with cross-request
//!                       coalescing off and once with it on; solve caches
//!                       are disabled on both runs so the speedup measures
//!                       shared MS-BFS sweeps and in-window dedup, not
//!                       cache replay. Merges a `contend` section (with
//!                       `speedup`, per-run p50/p99, and the server's mean
//!                       lane occupancy) into BENCH_service.json.
//!   --contend-window-us N
//!                       coalescing flush window for the "on" run (default
//!                       10000 — deliberately larger than the server's
//!                       300µs default, sized so windows fill against the
//!                       multi-ms contended ws-q solves being batched;
//!                       the 64-lane trigger still closes windows early
//!                       under real pile-ups)
//!
//!   --trace-overhead    tracing-cost comparison: the same closed-loop
//!                       workload against one in-process server (solve
//!                       cache off so both runs do real pipeline work),
//!                       once with every request untraced and once with
//!                       every request carrying `"trace": true`. Merges a
//!                       `trace_overhead` section (with per-run totals
//!                       and `speedup` = traced / untraced throughput)
//!                       into BENCH_service.json, and prints one traced
//!                       span tree as a stage breakdown.
//!   --connections N     connection-scale comparison (linux only): spawn
//!                       an in-process karate server twice — `threads`
//!                       transport at min(N, 64) connections, then
//!                       `epoll` at N — and drive an *open loop*: every
//!                       connection sends one small solve each
//!                       1/--conn-rate seconds regardless of responses
//!                       (default 10000 × 0.5 r/s), all sockets
//!                       multiplexed from one client thread on epoll.
//!                       N is clamped against `ulimit -n` (a loopback
//!                       connection costs two fds in-process) with a
//!                       logged warning. Merges a `connections` section
//!                       into --out: per-run accepted / throughput /
//!                       p50 / p99, process RSS and thread counts, and
//!                       `speedup` — the per-connection sustained-rate
//!                       ratio (epoll at N vs threads at 64), ≈1.0 when
//!                       the event loop holds the open-loop rate at
//!                       scale and scale-invariant by construction, so
//!                       the committed BENCH_conn.json baseline (10k
//!                       connections) gates CI smokes at any N.
//!   --conn-rate R       per-connection request rate for --connections
//!                       (default 0.5 r/s)
//!   --metrics-out PATH  after the run, dump the server's Prometheus
//!                       `metrics` exposition to PATH (CI artifact)
//!   --slowlog-out PATH  after the run, dump the server's `slowlog`
//!                       entries as a JSON array to PATH (CI artifact)
//!   --weighted          swap every default workload graph for its
//!                       weighted (`wba:`) twin, so solves run the
//!                       delta-stepping kernel instead of BFS (default
//!                       corpus: wba2k=wba:2000x3 and wba5k=wba:5000x4;
//!                       contend/router/reshard defaults become
//!                       wba:2000x3). Incompatible with explicit
//!                       --graph — pass wba:/wfile: specs there instead.
//! ```
//!
//! Closed loop: each client keeps exactly one request in flight —
//! throughput measures what the server sustains at `--clients`
//! concurrency, and client-side latency includes queueing and the wire.
//!
//! Router mode details: the solve caches are disabled on every shard so
//! the comparison measures solver capacity scaling, not cache-hit replay;
//! the default solver is `cps` (no solver-internal thread pool, and
//! expensive enough per solve that the shard worker is the capacity
//! bound), so a 1-worker shard is genuinely capacity-one and the N-shard
//! run shows the tier's scaling rather than intra-process parallelism.
//! The output records `cores`: sharding scales *compute*, so on a
//! 1-core machine the honest speedup is ~1.0× — read the number against
//! the hardware that produced it (CI runs on multi-core runners).

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use mwc_graph::NodeId;
use mwc_service::coalesce::CoalesceConfig;
use mwc_service::router::{self, RouterConfig, ShardSpec};
use mwc_service::{server, Catalog, Client, ClientError, HashRing, Json, ServerConfig};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

#[derive(Clone)]
struct Args {
    addr: Option<String>,
    graphs: Vec<(String, String)>,
    clients: usize,
    duration: Duration,
    solvers: Vec<String>,
    deadline_ms: Option<u64>,
    out: String,
    seed: u64,
    router: bool,
    /// `--reshard`: live-migration smoke — a standby shard joins the
    /// ring mid-run while the closed-loop workload keeps going.
    reshard: bool,
    shards: usize,
    shard_workers: usize,
    contend: bool,
    contend_window_us: u64,
    trace_overhead: bool,
    /// `--connections N`: open-loop connection-scale comparison (0 = off).
    connections: usize,
    /// Per-connection open-loop request rate (requests per second).
    conn_rate: f64,
    metrics_out: Option<String>,
    slowlog_out: Option<String>,
    /// `--weighted`: the default workload graphs become their weighted
    /// (`wba:`) twins, so every solve exercises the delta-stepping
    /// kernel instead of BFS.
    weighted: bool,
}

impl Args {
    /// The workhorse graph spec every self-spawning mode defaults to.
    fn ba_spec(&self) -> String {
        if self.weighted { "wba:2000x3" } else { "ba:2000x3" }.to_string()
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--graph NAME=SPEC]... [--clients N]\n\
         \x20      [--duration-secs N] [--solvers A,B,..] [--deadline-ms N]\n\
         \x20      [--out PATH] [--seed N]\n\
         \x20      [--router [--reshard] [--shards N] [--shard-workers N]]\n\
         \x20      [--contend [--contend-window-us N]]\n\
         \x20      [--trace-overhead] [--connections N [--conn-rate R]]\n\
         \x20      [--metrics-out PATH] [--slowlog-out PATH] [--weighted]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Args {
    let mut args = Args {
        addr: None,
        graphs: Vec::new(),
        clients: 8,
        duration: Duration::from_secs(5),
        solvers: Vec::new(),
        deadline_ms: None,
        out: String::new(),
        seed: 42,
        router: false,
        reshard: false,
        shards: 2,
        shard_workers: 1,
        contend: false,
        contend_window_us: 10_000,
        trace_overhead: false,
        connections: 0,
        conn_rate: 0.5,
        metrics_out: None,
        slowlog_out: None,
        weighted: false,
    };
    let mut clients_set = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => args.addr = Some(value()),
            "--graph" => match value().split_once('=') {
                Some((n, s)) => args.graphs.push((n.to_string(), s.to_string())),
                None => usage(),
            },
            "--clients" => {
                args.clients = value().parse().unwrap_or_else(|_| usage());
                clients_set = true;
            }
            "--duration-secs" => {
                args.duration = Duration::from_secs_f64(value().parse().unwrap_or_else(|_| usage()))
            }
            "--solvers" => args.solvers = value().split(',').map(str::to_string).collect(),
            "--deadline-ms" => args.deadline_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            "--out" => args.out = value(),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--router" => args.router = true,
            "--reshard" => args.reshard = true,
            "--shards" => args.shards = value().parse().unwrap_or_else(|_| usage()),
            "--shard-workers" => args.shard_workers = value().parse().unwrap_or_else(|_| usage()),
            "--contend" => args.contend = true,
            "--contend-window-us" => {
                args.contend_window_us = value().parse().unwrap_or_else(|_| usage())
            }
            "--trace-overhead" => args.trace_overhead = true,
            "--connections" => args.connections = value().parse().unwrap_or_else(|_| usage()),
            "--conn-rate" => {
                args.conn_rate = value().parse().unwrap_or_else(|_| usage());
                if !(args.conn_rate > 0.0 && args.conn_rate.is_finite()) {
                    eprintln!("--conn-rate must be a positive requests-per-second rate");
                    usage();
                }
            }
            "--metrics-out" => args.metrics_out = Some(value()),
            "--slowlog-out" => args.slowlog_out = Some(value()),
            "--weighted" => args.weighted = true,
            _ => usage(),
        }
    }
    if args.solvers.is_empty() {
        args.solvers = if args.router {
            // cps: expensive enough (~ms) that the shard worker, not the
            // wire, is the capacity bound, and free of solver-internal
            // thread pools — so the comparison isolates tier scaling.
            vec!["cps".into()]
        } else if args.contend {
            // ws-q exposes its BFS roots for coalescing, so the contended
            // comparison exercises cross-request lane sharing, not just
            // in-window dedup.
            vec!["ws-q".into()]
        } else {
            vec!["ws-q".into(), "ws-q-approx".into(), "st".into()]
        };
    }
    if args.contend && !clients_set {
        // Contention is the point: enough clients that windows fill.
        args.clients = 32;
    }
    if args.out.is_empty() {
        args.out = if args.router && args.reshard {
            "BENCH_reshard.json".into()
        } else if args.router {
            "BENCH_router.json".into()
        } else {
            "BENCH_service.json".into()
        };
    }
    if args.reshard && !args.router {
        eprintln!("--reshard is a mode of the router tier; pass --router too");
        usage();
    }
    if args.weighted && !args.graphs.is_empty() {
        // Explicit specs override the workload defaults; pass wfile:/wba:
        // sources directly instead of combining them with the flag.
        eprintln!("--weighted picks the default weighted workload; with --graph, use wba:/wfile: specs");
        usage();
    }
    if args.graphs.is_empty() && !args.router {
        args.graphs = if args.contend {
            // One graph: contention for the same coalescing queue is the
            // scenario under measurement.
            vec![("contend".into(), args.ba_spec())]
        } else if args.weighted {
            vec![
                ("wba2k".into(), "wba:2000x3".into()),
                ("wba5k".into(), "wba:5000x4".into()),
            ]
        } else {
            vec![
                ("karate".into(), "karate".into()),
                ("ba2k".into(), "ba:2000x3".into()),
            ]
        };
    }
    if args.router && args.shards < 2 {
        eprintln!("--router needs --shards >= 2");
        usage();
    }
    if args.router && args.addr.is_some() {
        // The comparison spawns its own 1-shard and N-shard tiers; a
        // silently ignored --addr would produce a benchmark of the wrong
        // system.
        eprintln!("--router spawns its own shards and router; it cannot drive --addr");
        usage();
    }
    if args.contend && (args.router || args.addr.is_some()) {
        eprintln!(
            "--contend spawns its own paired servers; it composes with neither --router nor --addr"
        );
        usage();
    }
    if args.contend && args.graphs.len() != 1 {
        eprintln!("--contend hammers exactly one graph");
        usage();
    }
    if args.trace_overhead && (args.router || args.contend || args.addr.is_some()) {
        eprintln!("--trace-overhead spawns its own server; it composes with none of --router, --contend, --addr");
        usage();
    }
    if args.connections > 0 {
        if args.router || args.contend || args.trace_overhead || args.addr.is_some() {
            eprintln!(
                "--connections spawns its own paired servers; it composes with none of \
                 --router, --contend, --trace-overhead, --addr"
            );
            usage();
        }
        if clients_set {
            eprintln!("--connections drives open-loop connections, not closed-loop --clients");
            usage();
        }
    }
    args
}

/// One completed request, as observed by a client.
struct Sample {
    solver: usize, // index into args.solvers
    latency: Duration,
    outcome: Outcome,
}

#[derive(PartialEq)]
enum Outcome {
    Ok,
    Overloaded,
    OtherError,
}

fn client_loop(
    mut client: Client, // connected by main before the barrier exists
    args: &Args,
    graphs: &[(String, usize)], // (name, node count)
    thread_id: u64,
    traced: bool, // every request carries `"trace": true`
    stop: &AtomicBool,
    barrier: &Barrier,
) -> Vec<Sample> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed ^ (thread_id << 32));
    let mut samples = Vec::new();
    barrier.wait();
    while !stop.load(Ordering::Relaxed) {
        let (graph, nodes) = graphs.choose(&mut rng).expect("at least one graph");
        let solver = rng.gen_range(0..args.solvers.len());
        let size = rng.gen_range(2..=4usize);
        let mut q: Vec<NodeId> = (0..size)
            .map(|_| rng.gen_range(0..*nodes as NodeId))
            .collect();
        q.sort_unstable();
        q.dedup();
        if q.len() < 2 {
            continue;
        }
        let start = Instant::now();
        let result = if traced {
            client
                .solve_traced(
                    graph,
                    &args.solvers[solver],
                    &q,
                    args.deadline_ms,
                    None,
                    false,
                )
                .map(|(r, _)| r)
        } else {
            client.solve(graph, &args.solvers[solver], &q, args.deadline_ms, None)
        };
        let outcome = match result {
            Ok(_) => Outcome::Ok,
            Err(ClientError::Server(e)) if e.code == "overloaded" => Outcome::Overloaded,
            Err(ClientError::Server(_)) => Outcome::OtherError,
            Err(e) => panic!("transport failure mid-run: {e}"),
        };
        samples.push(Sample {
            solver,
            latency: start.elapsed(),
            outcome,
        });
    }
    samples
}

fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs the closed-loop workload against `addr` for `args.duration` and
/// returns (elapsed seconds, every sample). Connects all clients before
/// the start barrier so a refused connection fails fast.
fn measure(
    addr: &str,
    args: &Args,
    graphs: &[(String, usize)],
    traced: bool,
) -> (f64, Vec<Sample>) {
    let clients: Vec<Client> = (0..args.clients)
        .map(|i| {
            Client::connect(addr).unwrap_or_else(|e| panic!("loadgen client {i} connect: {e}"))
        })
        .collect();
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(args.clients + 1);
    let (elapsed, samples) = std::thread::scope(|scope| {
        let threads: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(i, client)| {
                let (args, graphs, stop, barrier) = (args, graphs, &stop, &barrier);
                scope.spawn(move || {
                    client_loop(client, args, graphs, i as u64, traced, stop, barrier)
                })
            })
            .collect();
        barrier.wait(); // all clients connected: measurement starts now
        let started = Instant::now();
        std::thread::sleep(args.duration);
        stop.store(true, Ordering::Relaxed);
        let samples: Vec<Sample> = threads
            .into_iter()
            .flat_map(|t| t.join().expect("client thread"))
            .collect();
        (started.elapsed(), samples)
    });
    (elapsed.as_secs_f64(), samples)
}

fn main() {
    let args = parse_cli();
    if args.router && args.reshard {
        reshard_main(&args);
        return;
    }
    if args.router {
        router_main(&args);
        return;
    }
    if args.contend {
        contend_main(&args);
        return;
    }
    if args.trace_overhead {
        trace_overhead_main(&args);
        return;
    }
    if args.connections > 0 {
        connections_main(&args);
        return;
    }

    // Spawn an in-process server unless we were pointed at one.
    let handle = if args.addr.is_none() {
        let catalog = Arc::new(Catalog::new());
        for (name, spec) in &args.graphs {
            eprint!("loadgen: loading {name} from {spec} ... ");
            let entry = catalog.load(name, spec).expect("load graph");
            eprintln!("{} nodes, {} edges", entry.num_nodes(), entry.num_edges());
        }
        Some(
            server::start(catalog, ServerConfig::default(), "127.0.0.1:0")
                .expect("bind in-process server"),
        )
    } else {
        None
    };
    let addr = match &args.addr {
        Some(a) => a.clone(),
        None => handle.as_ref().unwrap().local_addr().to_string(),
    };

    // Discover node counts for query sampling (and validate the solvers).
    let mut probe = Client::connect(addr.as_str()).expect("connect");
    let graphs: Vec<(String, usize)> = probe
        .graphs()
        .expect("graphs")
        .into_iter()
        .map(|g| {
            for s in &args.solvers {
                assert!(
                    g.solvers.contains(s),
                    "solver {s:?} not registered on graph {:?}",
                    g.name
                );
            }
            (g.name, g.nodes)
        })
        .collect();
    assert!(!graphs.is_empty(), "server has no graphs loaded");

    eprintln!(
        "loadgen: {} clients, {:?} per run, solvers {:?}, graphs {:?}",
        args.clients,
        args.duration,
        args.solvers,
        graphs.iter().map(|g| g.0.as_str()).collect::<Vec<_>>()
    );

    let (secs, samples) = measure(addr.as_str(), &args, &graphs, false);

    // Aggregate.
    let total = samples.len();
    let ok = samples.iter().filter(|s| s.outcome == Outcome::Ok).count();
    let overloaded = samples
        .iter()
        .filter(|s| s.outcome == Outcome::Overloaded)
        .count();
    let mut per_solver: Vec<(&'static str, Json)> = Vec::new();
    println!(
        "{:<14} {:>8} {:>12} {:>9} {:>9} {:>9} {:>9}",
        "solver", "count", "thruput r/s", "mean ms", "p50 ms", "p99 ms", "max ms"
    );
    let mut solver_entries: Vec<(String, Json)> = Vec::new();
    for (i, solver) in args.solvers.iter().enumerate() {
        let mut lat: Vec<f64> = samples
            .iter()
            .filter(|s| s.solver == i && s.outcome == Outcome::Ok)
            .map(|s| s.latency.as_secs_f64() * 1e3)
            .collect();
        lat.sort_by(|a, b| a.total_cmp(b));
        let count = lat.len();
        let errors = samples
            .iter()
            .filter(|s| s.solver == i && s.outcome != Outcome::Ok)
            .count();
        let mean = if count == 0 {
            0.0
        } else {
            lat.iter().sum::<f64>() / count as f64
        };
        let (p50, p99) = (quantile_ms(&lat, 0.50), quantile_ms(&lat, 0.99));
        let max = lat.last().copied().unwrap_or(0.0);
        let throughput = count as f64 / secs;
        println!(
            "{solver:<14} {count:>8} {throughput:>12.1} {mean:>9.3} {p50:>9.3} {p99:>9.3} {max:>9.3}"
        );
        solver_entries.push((
            solver.clone(),
            Json::obj([
                ("count", Json::from(count)),
                ("errors", Json::from(errors)),
                ("throughput_rps", Json::from(throughput)),
                ("mean_ms", Json::from(mean)),
                ("p50_ms", Json::from(p50)),
                ("p99_ms", Json::from(p99)),
                ("max_ms", Json::from(max)),
            ]),
        ));
    }
    per_solver.push((
        "per_solver",
        Json::Obj(solver_entries.into_iter().collect()),
    ));

    // Grab the server's own view before shutting it down.
    let server_stats = probe.stats().ok();
    dump_observability(&mut probe, &args);
    if let Some(h) = handle {
        h.shutdown();
    }

    let mut doc = vec![
        (
            "config",
            Json::obj([
                ("clients", Json::from(args.clients)),
                ("duration_secs", Json::from(secs)),
                (
                    "solvers",
                    Json::Arr(
                        args.solvers
                            .iter()
                            .map(|s| Json::from(s.as_str()))
                            .collect(),
                    ),
                ),
                (
                    "graphs",
                    Json::Arr(
                        graphs
                            .iter()
                            .map(|(n, size)| {
                                Json::obj([
                                    ("name", Json::from(n.as_str())),
                                    ("nodes", Json::from(*size)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "deadline_ms",
                    args.deadline_ms.map(Json::from).unwrap_or(Json::Null),
                ),
                ("seed", Json::from(args.seed)),
            ]),
        ),
        (
            "totals",
            Json::obj([
                ("requests", Json::from(total)),
                ("ok", Json::from(ok)),
                ("overloaded", Json::from(overloaded)),
                ("errors", Json::from(total - ok - overloaded)),
                ("throughput_rps", Json::from(total as f64 / secs)),
            ]),
        ),
    ];
    doc.extend(per_solver);
    if let Some(stats) = server_stats {
        doc.push(("server_stats", stats));
    }
    let rendered = Json::obj(doc).to_string();
    let mut file = std::fs::File::create(&args.out).expect("create output file");
    file.write_all(rendered.as_bytes()).expect("write output");
    file.write_all(b"\n").expect("write output");
    eprintln!(
        "loadgen: {total} requests in {secs:.2}s ({:.1} r/s overall) → {}",
        total as f64 / secs,
        args.out
    );
}

/// One sharded-tier run: `shard_count` in-process `mwc-server`s (cache
/// disabled, `--shard-workers` workers each) behind an in-process
/// router; graphs loaded *through* the router so placement matches the
/// ring; then the closed-loop workload against the router address.
fn router_run(args: &Args, corpus: &[(String, String)], shard_count: usize) -> (f64, Vec<Sample>) {
    let shards: Vec<server::ServerHandle> = (0..shard_count)
        .map(|_| {
            // Cache off: the comparison must measure solver capacity
            // scaling across shards, not cache-hit replay speed.
            let catalog = Arc::new(Catalog::new().with_solve_cache_bytes(0));
            let config = ServerConfig {
                workers: args.shard_workers.max(1),
                ..ServerConfig::default()
            };
            server::start(catalog, config, "127.0.0.1:0").expect("bind shard")
        })
        .collect();
    let specs: Vec<ShardSpec> = shards
        .iter()
        .enumerate()
        .map(|(i, h)| ShardSpec::new(format!("shard-{i}"), h.local_addr().to_string()))
        .collect();
    let handle = router::start(specs, RouterConfig::default(), "127.0.0.1:0").expect("bind router");
    let addr = handle.local_addr().to_string();

    let mut loader = Client::connect(addr.as_str()).expect("connect loader");
    let mut graphs: Vec<(String, usize)> = Vec::new();
    for (name, spec) in corpus {
        let (nodes, _) = loader
            .load(name, spec)
            .unwrap_or_else(|e| panic!("load {name}={spec} via router: {e}"));
        graphs.push((name.clone(), nodes));
    }

    let result = measure(addr.as_str(), args, &graphs, false);
    handle.shutdown();
    for s in shards {
        s.shutdown();
    }
    result
}

fn totals_json(secs: f64, samples: &[Sample]) -> (f64, Json) {
    let total = samples.len();
    let ok = samples.iter().filter(|s| s.outcome == Outcome::Ok).count();
    let overloaded = samples
        .iter()
        .filter(|s| s.outcome == Outcome::Overloaded)
        .count();
    let throughput = ok as f64 / secs;
    (
        throughput,
        Json::obj([
            ("requests", Json::from(total)),
            ("ok", Json::from(ok)),
            ("overloaded", Json::from(overloaded)),
            ("errors", Json::from(total - ok - overloaded)),
            ("duration_secs", Json::from(secs)),
            ("throughput_rps", Json::from(throughput)),
        ]),
    )
}

/// `--router`: the 1-shard vs N-shard comparison, written to
/// `BENCH_router.json`.
fn router_main(args: &Args) {
    // Corpus: the user's graphs, or two deterministic BA graphs whose
    // names provably land on distinct shards of the N-shard ring (so the
    // multi-shard run actually spreads — with unlucky names the ring may
    // put everything on one shard and measure nothing).
    let corpus: Vec<(String, String)> = if args.graphs.is_empty() {
        let ring = HashRing::new(
            (0..args.shards).map(|i| format!("shard-{i}")),
            mwc_service::shard::DEFAULT_VNODES,
        );
        let mut picked: Vec<(String, String)> = Vec::new(); // (name, shard)
        for i in 0.. {
            let name = format!("ba-{i}");
            let shard = ring.route(&name).to_string();
            if picked.iter().all(|(_, s)| *s != shard) {
                picked.push((name, shard));
                if picked.len() == 2 {
                    break;
                }
            }
            assert!(i < 10_000, "ring never spread two names");
        }
        picked
            .into_iter()
            .map(|(name, _)| (name, args.ba_spec()))
            .collect()
    } else {
        args.graphs.clone()
    };

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    eprintln!(
        "loadgen --router: {} clients, {:?} per run, solvers {:?}, {} workers/shard, corpus {:?}",
        args.clients,
        args.duration,
        args.solvers,
        args.shard_workers.max(1),
        corpus
            .iter()
            .map(|(n, s)| format!("{n}={s}"))
            .collect::<Vec<_>>()
    );
    if cores < args.shards + 1 {
        eprintln!(
            "loadgen --router: note: only {cores} core(s) — sharding scales compute, so \
             expect ~1.0x here; run on >= {} cores for a meaningful ratio",
            args.shards + 1
        );
    }

    eprintln!("loadgen --router: run 1/2 — single shard");
    let (secs_1, samples_1) = router_run(args, &corpus, 1);
    eprintln!("loadgen --router: run 2/2 — {} shards", args.shards);
    let (secs_n, samples_n) = router_run(args, &corpus, args.shards);

    let (rps_1, single) = totals_json(secs_1, &samples_1);
    let (rps_n, multi) = totals_json(secs_n, &samples_n);
    let speedup = if rps_1 > 0.0 { rps_n / rps_1 } else { 0.0 };
    println!(
        "{:<24} {:>10} {:>14}",
        "configuration", "ok reqs", "thruput r/s"
    );
    println!(
        "{:<24} {:>10} {:>14.1}",
        "router + 1 shard",
        samples_1
            .iter()
            .filter(|s| s.outcome == Outcome::Ok)
            .count(),
        rps_1
    );
    println!(
        "{:<24} {:>10} {:>14.1}",
        format!("router + {} shards", args.shards),
        samples_n
            .iter()
            .filter(|s| s.outcome == Outcome::Ok)
            .count(),
        rps_n
    );
    println!("speedup: {speedup:.2}x");

    let doc = Json::obj([
        (
            "config",
            Json::obj([
                ("clients", Json::from(args.clients)),
                ("duration_secs", Json::from(args.duration.as_secs_f64())),
                (
                    "solvers",
                    Json::Arr(
                        args.solvers
                            .iter()
                            .map(|s| Json::from(s.as_str()))
                            .collect(),
                    ),
                ),
                (
                    "graphs",
                    Json::Arr(
                        corpus
                            .iter()
                            .map(|(n, s)| {
                                Json::obj([
                                    ("name", Json::from(n.as_str())),
                                    ("source", Json::from(s.as_str())),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("shards", Json::from(args.shards)),
                ("shard_workers", Json::from(args.shard_workers.max(1))),
                ("solve_cache", Json::from("disabled")),
                ("cores", Json::from(cores)),
                ("seed", Json::from(args.seed)),
            ]),
        ),
        ("single_shard", single),
        ("multi_shard", multi),
        ("speedup", Json::from(speedup)),
    ]);
    let mut file = std::fs::File::create(&args.out).expect("create output file");
    file.write_all(doc.to_string().as_bytes())
        .expect("write output");
    file.write_all(b"\n").expect("write output");
    eprintln!(
        "loadgen --router: 1 shard {rps_1:.1} r/s, {} shards {rps_n:.1} r/s, speedup {speedup:.2}x → {}",
        args.shards, args.out
    );
}

/// `--router --reshard`: live catalog migration under load. A tier of
/// `--shards` shards serves the closed-loop workload twice: a steady
/// run, then a run during which a standby shard joins the ring via the
/// `reshard` control command — streaming graph sources and warm solve
/// caches to their new owners before routing flips. The gated `speedup`
/// is the during-reshard / steady-state throughput ratio: ≈1.0 when
/// migration costs the tier nothing, collapsing if the flip ever stalls
/// or breaks in-flight traffic (a transport failure aborts the run).
fn reshard_main(args: &Args) {
    // Corpus: one graph the grown ring provably hands to the joining
    // shard (so the reshard always migrates something) and one it
    // leaves alone — or the user's own graphs.
    let standby_name = format!("shard-{}", args.shards);
    let corpus: Vec<(String, String)> = if args.graphs.is_empty() {
        let grown = HashRing::new(
            (0..=args.shards).map(|i| format!("shard-{i}")),
            mwc_service::shard::DEFAULT_VNODES,
        );
        let moving = (0..)
            .map(|i| format!("ba-{i}"))
            .find(|n| grown.route(n) == standby_name)
            .expect("ring never routed a name to the standby");
        let staying = (0..)
            .map(|i| format!("st-{i}"))
            .find(|n| grown.route(n) != standby_name)
            .expect("ring routed every name to the standby");
        vec![(moving, args.ba_spec()), (staying, args.ba_spec())]
    } else {
        args.graphs.clone()
    };

    eprintln!(
        "loadgen --reshard: {} clients, {:?} per run, solvers {:?}, {} shards + 1 standby, corpus {:?}",
        args.clients,
        args.duration,
        args.solvers,
        args.shards,
        corpus
            .iter()
            .map(|(n, s)| format!("{n}={s}"))
            .collect::<Vec<_>>()
    );

    // Caches stay ON: the warm handoff is the point of reshard.
    let start_shard = || {
        let config = ServerConfig {
            workers: args.shard_workers.max(1),
            ..ServerConfig::default()
        };
        server::start(Arc::new(Catalog::new()), config, "127.0.0.1:0").expect("bind shard")
    };
    let shards: Vec<server::ServerHandle> = (0..args.shards).map(|_| start_shard()).collect();
    let standby = start_shard();
    let specs: Vec<ShardSpec> = shards
        .iter()
        .enumerate()
        .map(|(i, h)| ShardSpec::new(format!("shard-{i}"), h.local_addr().to_string()))
        .collect();
    let handle = router::start(specs, RouterConfig::default(), "127.0.0.1:0").expect("bind router");
    let addr = handle.local_addr().to_string();

    let mut loader = Client::connect(addr.as_str()).expect("connect loader");
    let mut graphs: Vec<(String, usize)> = Vec::new();
    for (name, spec) in &corpus {
        let (nodes, _) = loader
            .load(name, spec)
            .unwrap_or_else(|e| panic!("load {name}={spec} via router: {e}"));
        graphs.push((name.clone(), nodes));
    }

    let half = Args {
        duration: args.duration / 2,
        ..args.clone()
    };
    eprintln!("loadgen --reshard: run 1/2 — steady state");
    let (secs_before, samples_before) = measure(addr.as_str(), &half, &graphs, false);

    eprintln!("loadgen --reshard: run 2/2 — {standby_name} joins the ring mid-run");
    let standby_addr = standby.local_addr().to_string();
    let ((secs_during, samples_during), (reshard_ms, migrated, streamed, lost)) =
        std::thread::scope(|scope| {
            let (addr, standby_name, standby_addr, quarter) = (
                addr.as_str(),
                standby_name.as_str(),
                standby_addr.as_str(),
                half.duration / 4,
            );
            let controller = scope.spawn(move || {
                std::thread::sleep(quarter);
                let mut control = Client::connect(addr).expect("connect reshard controller");
                let started = Instant::now();
                let raw = control
                    .roundtrip_line(&format!(
                        r#"{{"cmd":"reshard","add":{{"name":"{standby_name}","addr":"{standby_addr}"}}}}"#
                    ))
                    .expect("reshard roundtrip");
                let ms = started.elapsed().as_secs_f64() * 1e3;
                let v = mwc_service::json::parse(raw.trim()).expect("reshard response json");
                assert_eq!(
                    v.get("ok").and_then(Json::as_bool),
                    Some(true),
                    "reshard failed under load: {raw}"
                );
                let count = |key: &str| {
                    v.get(key)
                        .and_then(Json::as_array)
                        .map(|a| a.len() as u64)
                        .unwrap_or(0)
                };
                let streamed = v
                    .get("streamed_cache_entries")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                (ms, count("migrated"), streamed, count("lost"))
            });
            let run = measure(addr, &half, &graphs, false);
            (run, controller.join().expect("reshard controller"))
        });

    let (rps_before, before) = totals_json(secs_before, &samples_before);
    let (rps_during, during) = totals_json(secs_during, &samples_during);
    let speedup = if rps_before > 0.0 {
        rps_during / rps_before
    } else {
        0.0
    };
    println!(
        "{:<24} {:>10} {:>14}",
        "configuration", "ok reqs", "thruput r/s"
    );
    println!(
        "{:<24} {:>10} {:>14.1}",
        "steady state",
        samples_before
            .iter()
            .filter(|s| s.outcome == Outcome::Ok)
            .count(),
        rps_before
    );
    println!(
        "{:<24} {:>10} {:>14.1}",
        "during reshard",
        samples_during
            .iter()
            .filter(|s| s.outcome == Outcome::Ok)
            .count(),
        rps_during
    );
    println!(
        "speedup: {speedup:.2}x (reshard {reshard_ms:.1} ms, {migrated} graphs migrated, \
         {streamed} cache entries streamed, {lost} lost)"
    );
    assert!(
        migrated >= 1,
        "the reshard moved nothing — the corpus no longer exercises migration"
    );

    let doc = Json::obj([
        (
            "config",
            Json::obj([
                ("clients", Json::from(args.clients)),
                ("duration_secs", Json::from(args.duration.as_secs_f64())),
                (
                    "solvers",
                    Json::Arr(
                        args.solvers
                            .iter()
                            .map(|s| Json::from(s.as_str()))
                            .collect(),
                    ),
                ),
                ("shards", Json::from(args.shards)),
                ("shard_workers", Json::from(args.shard_workers.max(1))),
                ("seed", Json::from(args.seed)),
            ]),
        ),
        ("steady", before),
        ("during_reshard", during),
        (
            "reshard",
            Json::obj([
                ("millis", Json::from(reshard_ms)),
                ("migrated_graphs", Json::from(migrated)),
                ("streamed_cache_entries", Json::from(streamed)),
                ("lost_graphs", Json::from(lost)),
            ]),
        ),
        ("speedup", Json::from(speedup)),
    ]);
    let mut file = std::fs::File::create(&args.out).expect("create output file");
    file.write_all(doc.to_string().as_bytes())
        .expect("write output");
    file.write_all(b"\n").expect("write output");
    eprintln!(
        "loadgen --reshard: steady {rps_before:.1} r/s, during reshard {rps_during:.1} r/s, \
         speedup {speedup:.2}x → {}",
        args.out
    );

    handle.shutdown();
    standby.shutdown();
    for s in shards {
        s.shutdown();
    }
}

/// Deterministic pool of distinct query sets for `--contend`: small on
/// purpose, so concurrent clients repeatedly collide on the same queries
/// and a coalescing window sees both duplicates (deduped) and distinct
/// sets (roots unioned into shared MS-BFS sweeps).
fn contend_pool(seed: u64, nodes: usize, count: usize) -> Vec<Vec<NodeId>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pool: Vec<Vec<NodeId>> = Vec::new();
    while pool.len() < count {
        let size = rng.gen_range(2..=4usize);
        let mut q: Vec<NodeId> = (0..size)
            .map(|_| rng.gen_range(0..nodes as NodeId))
            .collect();
        q.sort_unstable();
        q.dedup();
        if q.len() >= 2 && !pool.contains(&q) {
            pool.push(q);
        }
    }
    pool
}

/// Closed-loop client for `--contend`: same accounting as [`client_loop`],
/// but queries are drawn from the fixed shared pool instead of sampled
/// fresh, so contention on identical/overlapping work is guaranteed.
fn contend_client_loop(
    mut client: Client,
    args: &Args,
    graph: &str,
    pool: &[Vec<NodeId>],
    thread_id: u64,
    stop: &AtomicBool,
    barrier: &Barrier,
) -> Vec<Sample> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed ^ (thread_id << 32));
    let mut samples = Vec::new();
    barrier.wait();
    while !stop.load(Ordering::Relaxed) {
        let q = pool.choose(&mut rng).expect("non-empty pool");
        let solver = rng.gen_range(0..args.solvers.len());
        let start = Instant::now();
        let outcome = match client.solve(graph, &args.solvers[solver], q, args.deadline_ms, None) {
            Ok(_) => Outcome::Ok,
            Err(ClientError::Server(e)) if e.code == "overloaded" => Outcome::Overloaded,
            Err(ClientError::Server(_)) => Outcome::OtherError,
            Err(e) => panic!("transport failure mid-run: {e}"),
        };
        samples.push(Sample {
            solver,
            latency: start.elapsed(),
            outcome,
        });
    }
    samples
}

/// One `--contend` run: an in-process server on the single contended
/// graph (solve cache off, fixed 8-worker pool, coalescing per `enabled`),
/// hammered by the pooled closed-loop clients. Returns elapsed seconds,
/// the samples, and the server's own `coalesce` stats section.
fn contend_run(args: &Args, enabled: bool, pool_size: usize) -> (f64, Vec<Sample>, Option<Json>) {
    let (name, spec) = &args.graphs[0];
    // Cache off on BOTH runs: the comparison must measure shared sweeps
    // and in-window dedup, not cache-hit replay of a repeated pool.
    let catalog = Arc::new(Catalog::new().with_solve_cache_bytes(0));
    let entry = catalog.load(name, spec).expect("load contend graph");
    let nodes = entry.num_nodes();
    let config = ServerConfig {
        // Fixed so both runs (and baseline vs CI reruns) agree, and so
        // windows can actually gather concurrent requests even on a
        // single-core box, where the worker pool would default to 1 and
        // serialize every window down to one request.
        workers: 8,
        coalesce: CoalesceConfig {
            enabled,
            window: Duration::from_micros(args.contend_window_us),
            ..CoalesceConfig::default()
        },
        ..ServerConfig::default()
    };
    let handle = server::start(catalog, config, "127.0.0.1:0").expect("bind contend server");
    let addr = handle.local_addr().to_string();
    let pool = contend_pool(args.seed, nodes, pool_size);

    let clients: Vec<Client> = (0..args.clients)
        .map(|i| {
            Client::connect(addr.as_str())
                .unwrap_or_else(|e| panic!("contend client {i} connect: {e}"))
        })
        .collect();
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(args.clients + 1);
    let (elapsed, samples) = std::thread::scope(|scope| {
        let threads: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(i, client)| {
                let (args, pool, stop, barrier) = (args, pool.as_slice(), &stop, &barrier);
                scope.spawn(move || {
                    contend_client_loop(client, args, name, pool, i as u64, stop, barrier)
                })
            })
            .collect();
        barrier.wait();
        let started = Instant::now();
        std::thread::sleep(args.duration);
        stop.store(true, Ordering::Relaxed);
        let samples: Vec<Sample> = threads
            .into_iter()
            .flat_map(|t| t.join().expect("contend client thread"))
            .collect();
        (started.elapsed(), samples)
    });

    let mut probe = Client::connect(addr.as_str()).expect("connect probe");
    let coalesce = probe.stats().ok().and_then(|s| s.get("coalesce").cloned());
    handle.shutdown();
    (elapsed.as_secs_f64(), samples, coalesce)
}

/// Latency/throughput summary for one contend run.
fn contend_totals(secs: f64, samples: &[Sample]) -> (f64, Json) {
    let (rps, mut totals) = match totals_json(secs, samples) {
        (rps, Json::Obj(m)) => (rps, m),
        _ => unreachable!("totals_json returns an object"),
    };
    let mut lat: Vec<f64> = samples
        .iter()
        .filter(|s| s.outcome == Outcome::Ok)
        .map(|s| s.latency.as_secs_f64() * 1e3)
        .collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    totals.insert("p50_ms".into(), Json::from(quantile_ms(&lat, 0.50)));
    totals.insert("p99_ms".into(), Json::from(quantile_ms(&lat, 0.99)));
    (rps, Json::Obj(totals))
}

/// `--contend`: coalescing-off vs coalescing-on under contention, merged
/// into `BENCH_service.json` as a `contend` section.
fn contend_main(args: &Args) {
    const POOL: usize = 8;
    let (name, spec) = &args.graphs[0];
    eprintln!(
        "loadgen --contend: {} clients, {:?} per run, solvers {:?}, graph {name}={spec}, \
         pool of {POOL} queries, solve cache off",
        args.clients, args.duration, args.solvers,
    );

    eprintln!("loadgen --contend: run 1/2 — coalescing off");
    let (secs_off, samples_off, _) = contend_run(args, false, POOL);
    eprintln!("loadgen --contend: run 2/2 — coalescing on");
    let (secs_on, samples_on, coalesce) = contend_run(args, true, POOL);

    let (rps_off, off) = contend_totals(secs_off, &samples_off);
    let (rps_on, mut on) = contend_totals(secs_on, &samples_on);
    let speedup = if rps_off > 0.0 { rps_on / rps_off } else { 0.0 };
    let lane_occupancy = coalesce
        .as_ref()
        .and_then(|c| c.get("lane_occupancy_mean"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if let (Json::Obj(m), Some(c)) = (&mut on, coalesce) {
        m.insert("coalesce".into(), c);
    }

    println!(
        "{:<18} {:>10} {:>14} {:>9} {:>9}",
        "configuration", "ok reqs", "thruput r/s", "p50 ms", "p99 ms"
    );
    for (label, totals, rps) in [
        ("coalesce off", &off, rps_off),
        ("coalesce on", &on, rps_on),
    ] {
        println!(
            "{label:<18} {:>10} {rps:>14.1} {:>9.3} {:>9.3}",
            totals.get("ok").and_then(Json::as_u64).unwrap_or(0),
            totals.get("p50_ms").and_then(Json::as_f64).unwrap_or(0.0),
            totals.get("p99_ms").and_then(Json::as_f64).unwrap_or(0.0),
        );
    }
    println!("speedup: {speedup:.2}x, mean lane occupancy: {lane_occupancy:.3}");

    let contend = Json::obj([
        (
            "config",
            Json::obj([
                ("clients", Json::from(args.clients)),
                ("duration_secs", Json::from(args.duration.as_secs_f64())),
                (
                    "solvers",
                    Json::Arr(
                        args.solvers
                            .iter()
                            .map(|s| Json::from(s.as_str()))
                            .collect(),
                    ),
                ),
                (
                    "graph",
                    Json::obj([
                        ("name", Json::from(name.as_str())),
                        ("source", Json::from(spec.as_str())),
                    ]),
                ),
                ("pool", Json::from(POOL)),
                ("window_us", Json::from(args.contend_window_us)),
                ("workers", Json::from(8usize)),
                ("solve_cache", Json::from("disabled")),
                (
                    "cores",
                    Json::from(
                        std::thread::available_parallelism()
                            .map(|p| p.get())
                            .unwrap_or(1),
                    ),
                ),
                ("seed", Json::from(args.seed)),
            ]),
        ),
        ("coalesce_off", off),
        ("coalesce_on", on),
        ("lane_occupancy_mean", Json::from(lane_occupancy)),
        ("speedup", Json::from(speedup)),
    ]);

    // Merge into an existing document (the plain smoke run also writes
    // BENCH_service.json) rather than clobbering it.
    let mut doc = std::fs::read_to_string(&args.out)
        .ok()
        .and_then(|text| mwc_service::json::parse(&text).ok())
        .and_then(|json| match json {
            Json::Obj(m) => Some(m),
            _ => None,
        })
        .unwrap_or_default();
    doc.insert("contend".into(), contend);
    let mut file = std::fs::File::create(&args.out).expect("create output file");
    file.write_all(Json::Obj(doc).to_string().as_bytes())
        .expect("write output");
    file.write_all(b"\n").expect("write output");
    eprintln!(
        "loadgen --contend: off {rps_off:.1} r/s, on {rps_on:.1} r/s, speedup {speedup:.2}x, \
         lane occupancy {lane_occupancy:.3} → {}",
        args.out
    );
}

/// Writes the `--metrics-out` / `--slowlog-out` artifacts (when asked)
/// from the server behind `probe`: the Prometheus text exposition
/// verbatim, and the slow-query entries as a JSON array.
fn dump_observability(probe: &mut Client, args: &Args) {
    if let Some(path) = &args.metrics_out {
        let text = probe.metrics_text().expect("metrics exposition");
        std::fs::write(path, text).expect("write --metrics-out");
        eprintln!("loadgen: metrics exposition → {path}");
    }
    if let Some(path) = &args.slowlog_out {
        let entries = probe.slowlog(None).expect("slowlog entries");
        let mut text = Json::Arr(entries).to_string();
        text.push('\n');
        std::fs::write(path, text).expect("write --slowlog-out");
        eprintln!("loadgen: slowlog → {path}");
    }
}

/// `--trace-overhead`: untraced vs per-request-traced throughput on one
/// in-process server, merged into `BENCH_service.json` as a
/// `trace_overhead` section. The solve cache is off so both runs do real
/// pipeline work; the untraced run measures tracing *compiled in but
/// disabled* (one branch per stage plus the always-on stage histograms),
/// the traced run adds span recording and the inline tree on every
/// response.
fn trace_overhead_main(args: &Args) {
    let catalog = Arc::new(Catalog::new().with_solve_cache_bytes(0));
    let mut graphs: Vec<(String, usize)> = Vec::new();
    for (name, spec) in &args.graphs {
        eprint!("loadgen --trace-overhead: loading {name} from {spec} ... ");
        let entry = catalog.load(name, spec).expect("load graph");
        eprintln!("{} nodes, {} edges", entry.num_nodes(), entry.num_edges());
        graphs.push((name.clone(), entry.num_nodes()));
    }
    let config = ServerConfig {
        // Half the default threshold: the closed-loop tail lands in the
        // ring so the --slowlog-out artifact has content to inspect.
        slowlog_threshold: Duration::from_millis(50),
        ..ServerConfig::default()
    };
    let handle = server::start(catalog, config, "127.0.0.1:0").expect("bind in-process server");
    let addr = handle.local_addr().to_string();

    eprintln!(
        "loadgen --trace-overhead: {} clients, {:?} per run, solvers {:?}, solve cache off",
        args.clients, args.duration, args.solvers
    );
    eprintln!("loadgen --trace-overhead: run 1/2 — tracing disabled");
    let (secs_off, samples_off) = measure(addr.as_str(), args, &graphs, false);
    eprintln!("loadgen --trace-overhead: run 2/2 — every request traced");
    let (secs_on, samples_on) = measure(addr.as_str(), args, &graphs, true);

    let (rps_off, off) = contend_totals(secs_off, &samples_off);
    let (rps_on, on) = contend_totals(secs_on, &samples_on);
    let speedup = if rps_off > 0.0 { rps_on / rps_off } else { 0.0 };

    println!(
        "{:<18} {:>10} {:>14} {:>9} {:>9}",
        "configuration", "ok reqs", "thruput r/s", "p50 ms", "p99 ms"
    );
    for (label, totals, rps) in [("untraced", &off, rps_off), ("traced", &on, rps_on)] {
        println!(
            "{label:<18} {:>10} {rps:>14.1} {:>9.3} {:>9.3}",
            totals.get("ok").and_then(Json::as_u64).unwrap_or(0),
            totals.get("p50_ms").and_then(Json::as_f64).unwrap_or(0.0),
            totals.get("p99_ms").and_then(Json::as_f64).unwrap_or(0.0),
        );
    }
    println!("traced/untraced throughput: {speedup:.3}x");

    // One traced solve, rendered: the stage breakdown a human reads when
    // chasing a slow query.
    let mut probe = Client::connect(addr.as_str()).expect("connect probe");
    let (name, nodes) = &graphs[0];
    let q: Vec<NodeId> = vec![0, (*nodes - 1) as NodeId];
    match probe.solve_traced(name, &args.solvers[0], &q, None, None, false) {
        Ok((_, Some(tree))) => {
            println!("sample span tree ({name}, {}):", args.solvers[0]);
            print!("{}", mwc_service::trace::render_span_tree(&tree));
        }
        Ok((_, None)) => eprintln!("loadgen --trace-overhead: server elided the sample trace"),
        Err(e) => eprintln!("loadgen --trace-overhead: sample traced solve failed: {e}"),
    }
    dump_observability(&mut probe, args);
    handle.shutdown();

    let section = Json::obj([
        (
            "config",
            Json::obj([
                ("clients", Json::from(args.clients)),
                ("duration_secs", Json::from(args.duration.as_secs_f64())),
                (
                    "solvers",
                    Json::Arr(
                        args.solvers
                            .iter()
                            .map(|s| Json::from(s.as_str()))
                            .collect(),
                    ),
                ),
                (
                    "graphs",
                    Json::Arr(
                        graphs
                            .iter()
                            .map(|(n, size)| {
                                Json::obj([
                                    ("name", Json::from(n.as_str())),
                                    ("nodes", Json::from(*size)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("solve_cache", Json::from("disabled")),
                ("seed", Json::from(args.seed)),
            ]),
        ),
        ("untraced", off),
        ("traced", on),
        ("speedup", Json::from(speedup)),
    ]);

    // Merge into an existing document (the plain smoke run also writes
    // BENCH_service.json) rather than clobbering it.
    let mut doc = std::fs::read_to_string(&args.out)
        .ok()
        .and_then(|text| mwc_service::json::parse(&text).ok())
        .and_then(|json| match json {
            Json::Obj(m) => Some(m),
            _ => None,
        })
        .unwrap_or_default();
    doc.insert("trace_overhead".into(), section);
    let mut file = std::fs::File::create(&args.out).expect("create output file");
    file.write_all(Json::Obj(doc).to_string().as_bytes())
        .expect("write output");
    file.write_all(b"\n").expect("write output");
    eprintln!(
        "loadgen --trace-overhead: untraced {rps_off:.1} r/s, traced {rps_on:.1} r/s \
         ({speedup:.3}x) → {}",
        args.out
    );
}

/// Soft `ulimit -n` (max open files) for this process, from
/// `/proc/self/limits`.
#[cfg(target_os = "linux")]
fn open_files_soft_limit() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = text.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// (VmRSS in MiB, thread count) for this process, from
/// `/proc/self/status`. The server under test is in-process, so these
/// are the numbers a deployment would see for the whole serving process.
#[cfg(target_os = "linux")]
fn process_snapshot() -> (f64, u64) {
    let mut rss_mb = 0.0;
    let mut threads = 0u64;
    if let Ok(text) = std::fs::read_to_string("/proc/self/status") {
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("VmRSS:") {
                let kb: f64 = rest
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .unwrap_or(0.0);
                rss_mb = kb / 1024.0;
            } else if let Some(rest) = line.strip_prefix("Threads:") {
                threads = rest.trim().parse().unwrap_or(0);
            }
        }
    }
    (rss_mb, threads)
}

/// Aggregated result of one open-loop `conn_run`.
#[cfg(target_os = "linux")]
struct ConnRunStats {
    connections: usize,
    accepted: usize,
    sent: u64,
    received: u64,
    errors: u64,
    latencies_ms: Vec<f64>, // sorted
    secs: f64,
    rss_mb: f64,
    process_threads: u64,
    threads_spawned: u64,
    server_connections_live: u64,
}

#[cfg(target_os = "linux")]
impl ConnRunStats {
    fn rps(&self) -> f64 {
        if self.secs > 0.0 {
            self.received as f64 / self.secs
        } else {
            0.0
        }
    }

    fn to_json(&self, transport: &str) -> Json {
        Json::obj([
            ("transport", Json::from(transport)),
            ("connections", Json::from(self.connections)),
            ("accepted", Json::from(self.accepted)),
            ("sent", Json::from(self.sent)),
            ("received", Json::from(self.received)),
            ("errors", Json::from(self.errors)),
            ("throughput_rps", Json::from(self.rps())),
            ("p50_ms", Json::from(quantile_ms(&self.latencies_ms, 0.50))),
            ("p99_ms", Json::from(quantile_ms(&self.latencies_ms, 0.99))),
            ("rss_mb", Json::from(self.rss_mb)),
            ("process_threads", Json::from(self.process_threads)),
            ("threads_spawned", Json::from(self.threads_spawned)),
            (
                "server_connections_live",
                Json::from(self.server_connections_live),
            ),
        ])
    }
}

/// One open-loop run: an in-process karate server on the given
/// transport, `n` client connections each sending one small solve every
/// `1/--conn-rate` seconds *regardless of responses*, all client sockets
/// multiplexed from this one thread on epoll (a thread per client would
/// make the load generator the scaling bottleneck it is measuring).
///
/// Open loop means send times follow the schedule, not the server: a
/// server that stalls keeps receiving requests and its latency tail —
/// not its throughput — shows the damage. Connections ramp in over one
/// period (staggered start offsets), so recorded throughput includes the
/// ramp; the `speedup` ratio divides two runs with the same ramp shape.
#[cfg(target_os = "linux")]
fn conn_run(args: &Args, transport: mwc_service::Transport, n: usize) -> ConnRunStats {
    use std::collections::VecDeque;
    use std::io::Read as _;
    use std::net::TcpStream;
    use std::os::unix::io::AsRawFd;

    use mwc_service::net::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

    /// Client-side state for one open-loop connection.
    struct C {
        stream: TcpStream,
        rbuf: Vec<u8>,
        wbuf: Vec<u8>,
        inflight: Vec<(u64, Instant)>,
        next_id: u64,
        writable_armed: bool,
        alive: bool,
    }

    fn flush_conn(ep: &Epoll, c: &mut C, token: u64) {
        if !c.alive {
            return;
        }
        while !c.wbuf.is_empty() {
            match c.stream.write(&c.wbuf) {
                Ok(0) => {
                    c.alive = false;
                    break;
                }
                Ok(k) => {
                    c.wbuf.drain(..k);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    c.alive = false;
                    break;
                }
            }
        }
        if !c.alive {
            ep.delete(c.stream.as_raw_fd());
            return;
        }
        let want_out = !c.wbuf.is_empty();
        if want_out != c.writable_armed {
            c.writable_armed = want_out;
            let interest = EPOLLIN | if want_out { EPOLLOUT } else { 0 };
            let _ = ep.modify(c.stream.as_raw_fd(), token, interest);
        }
    }

    /// First `"id":<digits>` in a response line. The wire id is the only
    /// numeric `id` member responses carry, so a substring scan beats
    /// parsing 25k JSON documents per second on the measurement thread.
    fn response_id(line: &[u8]) -> Option<u64> {
        let text = std::str::from_utf8(line).ok()?;
        let at = text.find("\"id\":")?;
        let digits: &str = &text[at + 5..];
        let end = digits
            .find(|ch: char| !ch.is_ascii_digit())
            .unwrap_or(digits.len());
        digits[..end].parse().ok()
    }

    fn drain_conn(
        ep: &Epoll,
        c: &mut C,
        scratch: &mut [u8],
        received: &mut u64,
        errors: &mut u64,
        latencies_ms: &mut Vec<f64>,
    ) {
        if !c.alive {
            return;
        }
        loop {
            match c.stream.read(scratch) {
                Ok(0) => {
                    c.alive = false;
                    break;
                }
                Ok(k) => c.rbuf.extend_from_slice(&scratch[..k]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    c.alive = false;
                    break;
                }
            }
        }
        let now = Instant::now();
        let mut start = 0usize;
        while let Some(pos) = c.rbuf[start..].iter().position(|&b| b == b'\n') {
            let line = &c.rbuf[start..start + pos];
            *received += 1;
            if !line
                .windows(b"\"ok\":true".len())
                .any(|w| w == b"\"ok\":true")
            {
                *errors += 1;
            }
            if let Some(id) = response_id(line) {
                if let Some(j) = c.inflight.iter().position(|&(i, _)| i == id) {
                    let (_, sent_at) = c.inflight.swap_remove(j);
                    latencies_ms.push(now.duration_since(sent_at).as_secs_f64() * 1e3);
                }
            }
            start += pos + 1;
        }
        c.rbuf.drain(..start);
        if !c.alive {
            ep.delete(c.stream.as_raw_fd());
        }
    }

    // Two-node karate queries, rotated so the solve cache holds a small
    // working set: the transport, not the solver, is under measurement.
    const QUERIES: [(u32, u32); 4] = [(0, 33), (5, 16), (2, 25), (8, 30)];

    let (_, threads_before) = process_snapshot();
    let catalog = Arc::new(Catalog::new());
    catalog.load("karate", "karate").expect("load karate");
    let config = ServerConfig {
        transport,
        max_connections: n + 32, // the open-loop conns plus the stats probe
        ..ServerConfig::default()
    };
    let handle = server::start(catalog, config, "127.0.0.1:0").expect("bind in-process server");
    let addr = handle.local_addr();

    let ep = Epoll::new().expect("client epoll");
    let mut conns: Vec<C> = Vec::with_capacity(n);
    for i in 0..n {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                stream
                    .set_nonblocking(true)
                    .expect("nonblocking client socket");
                ep.add(stream.as_raw_fd(), conns.len() as u64, EPOLLIN)
                    .expect("register client socket");
                conns.push(C {
                    stream,
                    rbuf: Vec::new(),
                    wbuf: Vec::new(),
                    inflight: Vec::new(),
                    next_id: 1,
                    writable_armed: false,
                    alive: true,
                });
            }
            Err(e) => {
                if i == 0 {
                    panic!("loadgen --connections: first connect failed: {e}");
                }
                eprintln!(
                    "loadgen --connections: connect {i}/{n} failed ({e}); \
                     continuing with {} connections",
                    conns.len()
                );
                break;
            }
        }
    }
    let accepted = conns.len();

    let period = Duration::from_secs_f64(1.0 / args.conn_rate);
    let start = Instant::now();
    let deadline = start + args.duration;
    // Same-period schedule for every connection ⇒ a queue pushed in due
    // order stays sorted: pop the front, send, push back due + period.
    let mut due: VecDeque<(Instant, usize)> = (0..accepted)
        .map(|i| (start + period.mul_f64(i as f64 / accepted.max(1) as f64), i))
        .collect();

    let mut events = vec![EpollEvent { events: 0, data: 0 }; 1024];
    let mut scratch = vec![0u8; 64 * 1024];
    let (mut sent, mut received, mut errors) = (0u64, 0u64, 0u64);
    let mut latencies_ms: Vec<f64> = Vec::new();

    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        while let Some(&(at, idx)) = due.front() {
            if at > now {
                break;
            }
            due.pop_front();
            due.push_back((at + period, idx));
            let c = &mut conns[idx];
            if !c.alive {
                continue;
            }
            let id = c.next_id;
            c.next_id += 1;
            let (a, b) = QUERIES[id as usize % QUERIES.len()];
            c.wbuf.extend_from_slice(
                format!(
                    "{{\"id\":{id},\"cmd\":\"solve\",\"graph\":\"karate\",\
                     \"solver\":\"ws-q\",\"q\":[{a},{b}]}}\n"
                )
                .as_bytes(),
            );
            c.inflight.push((id, now));
            sent += 1;
            flush_conn(&ep, c, idx as u64);
        }
        let next_due = due.front().map(|&(at, _)| at).unwrap_or(deadline);
        let until = next_due
            .min(deadline)
            .saturating_duration_since(Instant::now());
        let timeout_ms = (until.as_millis() as i32).clamp(1, 100);
        let nev = ep.wait(&mut events, timeout_ms).expect("client epoll wait");
        for ev in &events[..nev] {
            let bits = { ev.events };
            let idx = { ev.data } as usize;
            if bits & EPOLLOUT != 0 {
                flush_conn(&ep, &mut conns[idx], idx as u64);
            }
            if bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
                drain_conn(
                    &ep,
                    &mut conns[idx],
                    &mut scratch,
                    &mut received,
                    &mut errors,
                    &mut latencies_ms,
                );
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();

    // Snapshot while every connection is still open: this is the
    // at-scale footprint, not the post-teardown one.
    let (rss_mb, threads_now) = process_snapshot();

    // Collect in-flight tails (bounded) so the received count is honest.
    let drain_deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < drain_deadline && conns.iter().any(|c| c.alive && !c.inflight.is_empty())
    {
        let nev = ep.wait(&mut events, 50).expect("client epoll wait");
        for ev in &events[..nev] {
            let bits = { ev.events };
            let idx = { ev.data } as usize;
            if bits & EPOLLOUT != 0 {
                flush_conn(&ep, &mut conns[idx], idx as u64);
            }
            if bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
                drain_conn(
                    &ep,
                    &mut conns[idx],
                    &mut scratch,
                    &mut received,
                    &mut errors,
                    &mut latencies_ms,
                );
            }
        }
    }

    let server_connections_live = Client::connect(addr)
        .ok()
        .and_then(|mut probe| probe.stats().ok())
        .and_then(|stats| {
            stats
                .get("process")
                .and_then(|p| p.get("connections_live"))
                .and_then(Json::as_u64)
        })
        .unwrap_or(0);

    drop(conns); // close every client socket before asking for the drain
    drop(ep);
    handle.shutdown();

    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    ConnRunStats {
        connections: n,
        accepted,
        sent,
        received,
        errors,
        latencies_ms,
        secs,
        rss_mb,
        process_threads: threads_now,
        threads_spawned: threads_now.saturating_sub(threads_before),
        server_connections_live,
    }
}

/// `--connections`: threads-at-64 vs epoll-at-N open-loop comparison,
/// merged into `BENCH_service.json` as a `connections` section.
///
/// The gated `speedup` is the **per-connection sustained-rate ratio**
/// `(epoll_rps / N) / (threads_rps / 64)`: ≈1.0 whenever the event loop
/// holds the open-loop schedule as well as thread-per-connection does,
/// and — unlike a raw throughput ratio — independent of N, so the
/// committed 10k-connection baseline gates CI smokes at any scale.
#[cfg(target_os = "linux")]
fn connections_main(args: &Args) {
    let requested = args.connections;
    let mut n = requested;
    if let Some(soft) = open_files_soft_limit() {
        // Each loopback connection costs two fds in this process (the
        // client socket and the server's accepted socket), plus a margin
        // for epoll/eventfd instances, the probe, and output files.
        let budget = (soft.saturating_sub(128) / 2) as usize;
        if n > budget {
            eprintln!(
                "loadgen --connections: {requested} connections requested but \
                 `ulimit -n` is {soft}; clamping to {budget} \
                 (two fds per loopback connection)"
            );
            n = budget;
        }
    }
    assert!(
        n >= 2,
        "--connections needs at least 2 after the ulimit clamp"
    );
    let threads_conns = n.min(64);

    eprintln!(
        "loadgen --connections: open loop, {:.2} r/s per connection, {:?} per run",
        args.conn_rate, args.duration
    );
    eprintln!("loadgen --connections: run 1/2 — threads transport, {threads_conns} connections");
    let threads_run = conn_run(args, mwc_service::Transport::Threads, threads_conns);
    eprintln!("loadgen --connections: run 2/2 — epoll transport, {n} connections");
    let epoll_run = conn_run(args, mwc_service::Transport::Epoll, n);

    let per_conn = |run: &ConnRunStats| {
        if run.connections > 0 {
            run.rps() / run.connections as f64
        } else {
            0.0
        }
    };
    let speedup = if per_conn(&threads_run) > 0.0 {
        per_conn(&epoll_run) / per_conn(&threads_run)
    } else {
        0.0
    };

    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>9} {:>9} {:>9} {:>8}",
        "transport", "conns", "received", "thruput r/s", "p50 ms", "p99 ms", "rss MiB", "threads"
    );
    for (label, run) in [("threads", &threads_run), ("epoll", &epoll_run)] {
        println!(
            "{label:<10} {:>8} {:>10} {:>12.1} {:>9.3} {:>9.3} {:>9.1} {:>8}",
            run.accepted,
            run.received,
            run.rps(),
            quantile_ms(&run.latencies_ms, 0.50),
            quantile_ms(&run.latencies_ms, 0.99),
            run.rss_mb,
            run.process_threads,
        );
    }
    println!("per-connection sustained-rate ratio (epoll / threads): {speedup:.3}x");

    let section = Json::obj([
        (
            "config",
            Json::obj([
                ("connections_requested", Json::from(requested)),
                ("connections", Json::from(n)),
                ("threads_connections", Json::from(threads_conns)),
                ("rate_per_conn_rps", Json::from(args.conn_rate)),
                ("duration_secs", Json::from(args.duration.as_secs_f64())),
                ("graph", Json::from("karate")),
                ("solver", Json::from("ws-q")),
                (
                    "cores",
                    Json::from(
                        std::thread::available_parallelism()
                            .map(|p| p.get())
                            .unwrap_or(1),
                    ),
                ),
                ("seed", Json::from(args.seed)),
            ]),
        ),
        ("threads", threads_run.to_json("threads")),
        ("epoll", epoll_run.to_json("epoll")),
        ("speedup", Json::from(speedup)),
    ]);

    // Merge into an existing document (the plain smoke run also writes
    // BENCH_service.json) rather than clobbering it.
    let mut doc = std::fs::read_to_string(&args.out)
        .ok()
        .and_then(|text| mwc_service::json::parse(&text).ok())
        .and_then(|json| match json {
            Json::Obj(m) => Some(m),
            _ => None,
        })
        .unwrap_or_default();
    doc.insert("connections".into(), section);
    let mut file = std::fs::File::create(&args.out).expect("create output file");
    file.write_all(Json::Obj(doc).to_string().as_bytes())
        .expect("write output");
    file.write_all(b"\n").expect("write output");
    eprintln!(
        "loadgen --connections: threads {:.1} r/s @ {}, epoll {:.1} r/s @ {}, \
         per-conn ratio {speedup:.3}x → {}",
        threads_run.rps(),
        threads_run.accepted,
        epoll_run.rps(),
        epoll_run.accepted,
        args.out
    );
}

#[cfg(not(target_os = "linux"))]
fn connections_main(_args: &Args) {
    eprintln!(
        "loadgen --connections needs the epoll client multiplexer and is linux-only \
         (the epoll transport itself is too)"
    );
    std::process::exit(2);
}
