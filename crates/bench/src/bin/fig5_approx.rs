//! Figure 5 extension — approximate-distance ws-q (the §6.6 direction).
//!
//! Compares the exact solver against [`ApproxWienerSteiner`] (landmark
//! oracle distances, DESIGN.md §7) on Barabási–Albert graphs of growing
//! size: per-query runtime once the oracle is built, the one-off oracle
//! build time, and the solution-quality ratio `W_approx / W_exact`.
//!
//! The exact solver pays `|Q|` full-graph BFS runs per query; the
//! approximate solver pays `k` BFS runs once, then only `O(k·|V|)` scans
//! per query — so its advantage grows with query *volume*, which is the
//! regime the paper's scalability section targets.

use mwc_bench::stats::{mean, timed};
use mwc_bench::table::{fmt_f64, Table};
use mwc_bench::{parse_args, Scale};
use mwc_core::{ApproxWienerSteiner, ApproxWsqConfig, WienerSteiner, WsqConfig};
use mwc_datasets::workloads;
use mwc_graph::generators::barabasi_albert;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = parse_args();
    let mut rng = StdRng::seed_from_u64(args.seed);

    let sizes: Vec<usize> = match args.scale {
        Scale::Quick => vec![2_000, 10_000],
        Scale::Medium => vec![2_000, 10_000, 50_000],
        Scale::Full => vec![2_000, 10_000, 50_000, 200_000, 500_000],
    };
    let queries_per_graph = args.scale.pick(3, 5, 10);
    let qsize = 10usize;
    let landmarks = 16usize;

    println!("Figure 5 extension: exact vs landmark-approximate ws-q (PL graphs, |Q| = {qsize})\n");
    let mut t = Table::new(&[
        "|V|",
        "oracle build (s)",
        "exact s/query",
        "approx s/query",
        "speedup",
        "W ratio (approx/exact)",
    ]);

    for &n in &sizes {
        let g = barabasi_albert(n, 3, &mut rng);
        let queries: Vec<Vec<u32>> = (0..queries_per_graph)
            .filter_map(|_| workloads::uniform_query(&g, qsize, &mut rng).map(|q| q.vertices))
            .collect();

        let exact = WienerSteiner::with_config(
            &g,
            WsqConfig {
                parallel: false,
                ..WsqConfig::default()
            },
        );
        let (approx, build_secs) = timed(|| {
            ApproxWienerSteiner::build(
                &g,
                ApproxWsqConfig {
                    landmarks,
                    ..ApproxWsqConfig::default()
                },
                &mut rng,
            )
        });

        let mut exact_secs = Vec::new();
        let mut approx_secs = Vec::new();
        let mut ratios = Vec::new();
        for q in &queries {
            let (we, se) = timed(|| exact.solve(q).expect("exact"));
            let (wa, sa) = timed(|| approx.solve(q).expect("approx"));
            exact_secs.push(se);
            approx_secs.push(sa);
            ratios.push(wa.wiener_index as f64 / we.wiener_index.max(1) as f64);
        }
        let (me, ma) = (mean(&exact_secs), mean(&approx_secs));
        t.add_row(vec![
            n.to_string(),
            fmt_f64(build_secs, 3),
            fmt_f64(me, 4),
            fmt_f64(ma, 4),
            format!("{:.2}x", me / ma.max(1e-12)),
            fmt_f64(mean(&ratios), 3),
        ]);
    }
    t.print();
    println!("\nReading: W ratios near 1.0 are the headline — replacing every exact");
    println!("per-root distance with a {landmarks}-landmark estimate costs only a few percent of");
    println!("solution quality, supporting §6.6's conjecture that approximate shortest-");
    println!("distance techniques are viable for scaling ws-q. Wall-clock speedups are");
    println!("modest here because on these sparse in-memory graphs the λ-sweep Steiner");
    println!("solves dominate runtime, not the |Q| BFS runs the oracle eliminates; the");
    println!("oracle's O(k·|V|) memory-sequential scans are the piece that survives when");
    println!("the graph no longer fits in RAM (the regime §6.6 actually targets).");
}
