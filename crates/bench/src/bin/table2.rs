//! Table 2 — approximation quality of ws-q against optimality bounds.
//!
//! For each (dataset, |Q|): the ws-q Wiener index, an upper bound `GU`
//! (local-search refinement of the ws-q solution — the role Gurobi's
//! warm-started incumbent plays in the paper), a lower bound `GL`
//! (certified combinatorial bound; on ≤64-vertex graphs the exact optimum
//! via enumeration), and the implied error interval. A zero-width interval
//! proves optimality, exactly as in the paper's Table 2.

use mwc_bench::table::{fmt_f64, Table};
use mwc_bench::{parse_args, Scale};
use mwc_core::exact::{exact_minimum, ExactConfig};
use mwc_core::local_search::{refine, LocalSearchConfig};
use mwc_core::lower_bound::{certified_lower_bound, error_interval};
use mwc_core::minimum_wiener_connector;
use mwc_datasets::{karate, realworld, workloads};
use mwc_graph::Graph;
use rand::SeedableRng;

/// Paper Table 2 reference: (dataset, |Q|, ws-q, GU, GL).
const PAPER: &[(&str, usize, u64, u64, u64)] = &[
    ("football", 3, 40, 40, 40),
    ("football", 5, 172, 172, 164),
    ("football", 10, 656, 598, 538),
    ("football", 20, 2352, 2018, 1546),
    ("jazz", 3, 16, 16, 16),
    ("jazz", 5, 44, 44, 44),
    ("jazz", 10, 276, 276, 260),
    ("jazz", 20, 1014, 964, 936),
    ("celegans", 3, 36, 36, 36),
    ("celegans", 5, 106, 106, 106),
    ("celegans", 10, 330, 330, 326),
    ("celegans", 20, 1204, 1196, 1192),
    ("email", 3, 58, 58, 58),
    ("email", 5, 250, 250, 240),
    ("email", 10, 1352, 1208, 1033),
    ("email", 20, 5490, 5490, 4032),
];

fn main() {
    let args = parse_args();
    let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed);

    let (datasets, sizes): (Vec<&str>, Vec<usize>) = match args.scale {
        Scale::Quick => (vec!["karate", "football", "jazz"], vec![3, 5, 10]),
        _ => (
            vec!["karate", "football", "jazz", "celegans", "email"],
            vec![3, 5, 10, 20],
        ),
    };
    let queries_per_cell = args.scale.pick(1, 3, 5);

    println!("Table 2: ws-q vs provable bounds (ours) | paper reference\n");
    let mut t = Table::new(&[
        "dataset",
        "|Q|",
        "ws-q",
        "GU",
        "GL",
        "error interval",
        "exact?",
        "paper ws-q",
        "paper [GL,GU]",
    ]);

    for name in datasets {
        let graph: Graph = if name == "karate" {
            karate::karate_club()
        } else {
            realworld::standin(name).expect("dataset").graph
        };
        for &qsize in &sizes {
            if qsize >= graph.num_nodes() {
                continue;
            }
            // Averages over queries_per_cell random queries, as the paper
            // averages over its workload.
            let mut wsq_sum = 0u64;
            let mut gu_sum = 0u64;
            let mut gl_sum = 0u64;
            let mut all_exact = true;
            for _ in 0..queries_per_cell {
                let q = workloads::uniform_query(&graph, qsize, &mut rng).expect("workload");
                let wsq = minimum_wiener_connector(&graph, &q.vertices).expect("solve");
                let (_, gu) = refine(
                    &graph,
                    &q.vertices,
                    &wsq.connector,
                    &LocalSearchConfig::default(),
                )
                .expect("refine");
                // Exact optimum when feasible (n ≤ 64), else certified bound.
                let gl = if graph.num_nodes() <= 64 {
                    let exact = exact_minimum(
                        &graph,
                        &q.vertices,
                        Some(&wsq.connector),
                        &ExactConfig::default(),
                    )
                    .expect("exact");
                    if exact.optimal {
                        exact.wiener_index
                    } else {
                        all_exact = false;
                        certified_lower_bound(&graph, &q.vertices)
                            .expect("lb")
                            .value
                    }
                } else {
                    all_exact = false;
                    certified_lower_bound(&graph, &q.vertices)
                        .expect("lb")
                        .value
                };
                wsq_sum += wsq.wiener_index;
                gu_sum += gu;
                gl_sum += gl.min(gu);
            }
            let k = queries_per_cell as u64;
            let (wsq, gu, gl) = (wsq_sum / k, gu_sum / k, gl_sum / k);
            let (lo, hi) = error_interval(wsq, gl, gu);
            let paper = PAPER.iter().find(|r| r.0 == name && r.1 == qsize);
            t.add_row(vec![
                name.to_string(),
                qsize.to_string(),
                wsq.to_string(),
                gu.to_string(),
                gl.to_string(),
                format!("[{}%, {}%]", fmt_f64(lo * 100.0, 1), fmt_f64(hi * 100.0, 1)),
                if all_exact { "yes".into() } else { "no".into() },
                paper.map(|r| r.2.to_string()).unwrap_or_else(|| "-".into()),
                paper
                    .map(|r| format!("[{}, {}]", r.4, r.3))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    t.print();
    println!("\nGU = local-search refinement of ws-q (paper: Gurobi upper bound).");
    println!("GL = exact optimum on ≤64-vertex graphs, else certified combinatorial bound");
    println!("(paper: Gurobi LP/ILP lower bound). The certified bound is looser than an");
    println!("ILP bound, so wide intervals on larger graphs overestimate the true error,");
    println!("mirroring the paper's own memory-out rows (†).");
}
