//! Figure 6 — the protein–protein-interaction case study (§7).
//!
//! Extracts the minimum Wiener connector for the disease-protein query on
//! the synthetic PPI stand-in and reports the next-hop structure the paper
//! highlights (each query protein reaching the others through a hub).

use mwc_bench::parse_args;
use mwc_core::minimum_wiener_connector;
use mwc_datasets::ppi;
use mwc_graph::centrality;
use rand::SeedableRng;

fn main() {
    let _ = parse_args();
    let net = ppi::ppi_network();
    println!(
        "Figure 6: PPI case study (synthetic stand-in, {} proteins, {} interactions)\n",
        net.graph.num_nodes(),
        net.graph.num_edges()
    );

    let q = ppi::disease_query(&net);
    println!("query proteins: {:?}", net.render(&q));
    let sol = minimum_wiener_connector(&net.graph, &q).expect("solve");

    println!(
        "\nconnector ({} proteins, W = {}):",
        sol.connector.len(),
        sol.wiener_index
    );
    let bc = centrality::betweenness_sampled(
        &net.graph,
        400,
        true,
        &mut rand::rngs::StdRng::seed_from_u64(1),
    );
    for &p in sol.connector.vertices() {
        let role = if q.contains(&p) {
            "query    "
        } else {
            "connector"
        };
        println!(
            "  {role}  {:<10} degree {:>3}  bc {:.4}",
            net.label(p),
            net.graph.degree(p),
            bc[p as usize]
        );
    }

    let sub = sol.connector.induced(&net.graph).expect("induced");
    println!("\nnext hops (query → connector neighbors):");
    for &qp in &q {
        let local = sub.to_local(qp).unwrap();
        let hops: Vec<&str> = sub
            .graph()
            .neighbors(local)
            .iter()
            .map(|&nb| net.label(sub.to_global(nb)))
            .collect();
        println!("  {:<10} → {:?}", net.label(qp), hops);
    }

    let hub_hits: Vec<&str> = ppi::HUBS
        .iter()
        .copied()
        .filter(|h| sol.connector.contains(net.id_of(h).unwrap()))
        .collect();
    println!("\nhub proteins recruited: {hub_hits:?}");
    println!("\npaper (original BioGrid network): query {{BMP1, JAK2, PSEN, SLC6A4}} is");
    println!("connected through {{p53, HSP90, GSK3B, SNCA}}, each next-hop matching a");
    println!("literature-verified disease association.");
}
