//! Table 1 — summary statistics of the stand-in graphs.
//!
//! Prints `|V|, |E|, δ, ad, cc, ed` for each generated stand-in next to
//! the paper's values for the original dataset. Scales: quick = the seven
//! small/medium graphs; medium = + scaled dblp/youtube; full = every
//! dataset at the largest size memory allows.

use mwc_bench::table::{fmt_f64, Table};
use mwc_bench::{parse_args, Scale};
use mwc_datasets::realworld;
use mwc_graph::metrics::graph_stats;
use rand::SeedableRng;

/// Paper's Table 1 rows: (name, |V|, |E|, δ, ad, cc, ed).
const PAPER: &[(&str, usize, usize, f64, f64, f64, f64)] = &[
    ("football", 115, 613, 9.4e-2, 21.3, 0.40, 3.9),
    ("jazz", 198, 2742, 1.4e-1, 55.4, 0.62, 3.8),
    ("celegans", 453, 2025, 2.0e-2, 17.9, 0.65, 4.0),
    ("email", 1133, 5452, 8.5e-3, 9.62, 0.22, 8.0),
    ("yeast", 2224, 6609, 2.6e-3, 5.94, 0.14, 11.0),
    ("oregon", 10670, 22002, 3.8e-4, 4.12, 0.30, 4.4),
    ("astro", 18772, 198110, 1.1e-3, 22.0, 0.63, 5.0),
    ("dblp", 317080, 1049866, 2.1e-5, 6.62, 0.63, 8.2),
    ("youtube", 1134890, 2987624, 4.6e-6, 5.27, 0.08, 6.5),
    ("wiki", 2394385, 5021410, 1.8e-6, 4.19, 0.22, 3.9),
];

fn main() {
    let args = parse_args();
    let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed);

    let datasets: Vec<(&str, f64)> = match args.scale {
        Scale::Quick => vec![
            ("football", 1.0),
            ("jazz", 1.0),
            ("celegans", 1.0),
            ("email", 1.0),
            ("yeast", 1.0),
        ],
        Scale::Medium => vec![
            ("football", 1.0),
            ("jazz", 1.0),
            ("celegans", 1.0),
            ("email", 1.0),
            ("yeast", 1.0),
            ("oregon", 1.0),
            ("astro", 1.0),
            ("dblp", 0.05),
            ("youtube", 0.02),
        ],
        Scale::Full => vec![
            ("football", 1.0),
            ("jazz", 1.0),
            ("celegans", 1.0),
            ("email", 1.0),
            ("yeast", 1.0),
            ("oregon", 1.0),
            ("astro", 1.0),
            ("dblp", 1.0),
            ("youtube", 1.0),
            ("wiki", 0.5),
        ],
    };

    println!("Table 1: dataset statistics (ours = generated stand-in | paper = original)\n");
    let mut t = Table::new(&[
        "dataset",
        "scale",
        "|V| ours",
        "|V| paper",
        "|E| ours",
        "|E| paper",
        "δ ours",
        "δ paper",
        "ad ours",
        "ad paper",
        "cc ours",
        "cc paper",
        "ed ours",
        "ed paper",
    ]);
    for (name, scale) in datasets {
        let si = realworld::standin_scaled(name, scale).expect("known dataset");
        let exact_threshold = 3000;
        let stats = graph_stats(&si.graph, exact_threshold, &mut rng);
        let paper = PAPER.iter().find(|row| row.0 == name).expect("paper row");
        t.add_row(vec![
            name.to_string(),
            fmt_f64(scale, 2),
            stats.num_nodes.to_string(),
            paper.1.to_string(),
            stats.num_edges.to_string(),
            paper.2.to_string(),
            format!("{:.1e}", stats.density),
            format!("{:.1e}", paper.3),
            fmt_f64(stats.average_degree, 2),
            fmt_f64(paper.4, 2),
            fmt_f64(stats.clustering, 2),
            fmt_f64(paper.5, 2),
            fmt_f64(stats.effective_diameter, 1),
            fmt_f64(paper.6, 1),
        ]);
    }
    t.print();
    println!("\nNote: stand-ins match |V|/|E| and family (BA power-law or planted");
    println!("partition), not clustering/diameter exactly — see DESIGN.md §3.");
}
