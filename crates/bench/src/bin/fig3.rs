//! Figure 3 — sweeps on the oregon stand-in.
//!
//! Left column of the figure: fixed average distance AD = 4, query size
//! |Q| ∈ {10..50}. Right column: fixed |Q| = 5, AD ∈ {1..7}. Series per
//! method: solution size |V(H)|, density δ(H), betweenness bc(H).

use mwc_baselines::full_engine;
use mwc_bench::eval::{average_metrics, evaluate_solver, PAPER_METHODS};
use mwc_bench::table::{fmt_f64, Table};
use mwc_bench::{parse_args, Scale};
use mwc_datasets::{realworld, workloads};
use mwc_graph::centrality;
use rand::SeedableRng;

fn main() {
    let args = parse_args();
    let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed);

    let scale = match args.scale {
        Scale::Quick => 0.2,
        Scale::Medium => 1.0,
        Scale::Full => 1.0,
    };
    let si = realworld::standin_scaled("oregon", scale).expect("oregon");
    let g = &si.graph;
    println!(
        "Figure 3: oregon stand-in (n = {}, m = {}), series per method\n",
        g.num_nodes(),
        g.num_edges()
    );
    let bc_samples = args.scale.pick(200, 800, 1600);
    let bc = centrality::betweenness_sampled(g, bc_samples, true, &mut rng);
    let engine = full_engine(g);
    let reps = args.scale.pick(1, 3, 5);

    // Left column: AD = 4, varying |Q|.
    let q_sizes: Vec<usize> = args.scale.pick(
        vec![10, 20, 30],
        vec![10, 20, 30, 40, 50],
        vec![10, 20, 30, 40, 50],
    );
    println!("left column: AD = 4, varying |Q|");
    let mut t = Table::new(&["|Q|", "method", "|V(H)|", "δ(H)", "bc(H)"]);
    for &qs in &q_sizes {
        for method in PAPER_METHODS {
            let mut runs = Vec::new();
            for _ in 0..reps {
                if let Some(q) = workloads::distance_controlled_query(
                    g,
                    &workloads::WorkloadConfig::new(qs, 4.0),
                    &mut rng,
                ) {
                    if let Ok(m) = evaluate_solver(&engine, method, &q.vertices, &bc) {
                        runs.push(m);
                    }
                }
            }
            if runs.is_empty() {
                continue;
            }
            let avg = average_metrics(&runs);
            t.add_row(vec![
                qs.to_string(),
                method.to_string(),
                avg.size.to_string(),
                fmt_f64(avg.density, 4),
                fmt_f64(avg.avg_betweenness, 4),
            ]);
        }
    }
    t.print();

    // Right column: |Q| = 5, varying AD.
    let ads: Vec<f64> = args.scale.pick(
        vec![2.0, 4.0, 6.0],
        vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
        vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
    );
    println!("\nright column: |Q| = 5, varying AD");
    let mut t = Table::new(&["AD", "method", "|V(H)|", "δ(H)", "bc(H)"]);
    for &ad in &ads {
        for method in PAPER_METHODS {
            let mut runs = Vec::new();
            for _ in 0..reps {
                if let Some(q) = workloads::distance_controlled_query(
                    g,
                    &workloads::WorkloadConfig::new(5, ad),
                    &mut rng,
                ) {
                    if let Ok(m) = evaluate_solver(&engine, method, &q.vertices, &bc) {
                        runs.push(m);
                    }
                }
            }
            if runs.is_empty() {
                continue;
            }
            let avg = average_metrics(&runs);
            t.add_row(vec![
                fmt_f64(ad, 0),
                method.to_string(),
                avg.size.to_string(),
                fmt_f64(avg.density, 4),
                fmt_f64(avg.avg_betweenness, 4),
            ]);
        }
    }
    t.print();
    println!("\nExpected shape (paper): ctp/cps/ppr sizes grow into the thousands and");
    println!("densities fall with |Q| and AD; st and ws-q stay below ~10² vertices with");
    println!("ws-q the densest and most central throughout.");
}
