//! Table 3 — solution characterization across methods.
//!
//! For each stand-in dataset: queries of `|Q| = 10` with average distance
//! 4, 5 repetitions (paper setup); reports average `|V(H)|`, `δ(H)`,
//! `bc(H)`, `W(H)` for ctp / cps / ppr / st / ws-q next to the paper's
//! values.

use mwc_baselines::full_engine;
use mwc_bench::eval::{average_metrics, evaluate_solver, PAPER_METHODS};
use mwc_bench::table::{fmt_big, fmt_f64, Table};
use mwc_bench::{parse_args, Scale};
use mwc_datasets::{realworld, workloads};
use mwc_graph::centrality;
use rand::SeedableRng;

/// One paper cell: `(|V(H)|, δ(H), bc(H), W(H))`.
type PaperCell = (f64, f64, f64, f64);

/// Paper Table 3 (per dataset, per method), methods in order
/// ctp, cps, ppr, st, ws-q.
const PAPER: &[(&str, [PaperCell; 5])] = &[
    (
        "email",
        [
            (671.0, 0.016, 0.005, 750e3),
            (155.0, 0.047, 0.03, 54_598.0),
            (137.0, 0.029, 0.03, 52_222.0),
            (26.0, 0.080, 0.09, 1200.0),
            (24.0, 0.093, 0.11, 968.0),
        ],
    ),
    (
        "yeast",
        [
            (819.0, 0.016, 0.005, 2e6),
            (188.0, 0.028, 0.02, 69_296.0),
            (100.0, 0.039, 0.005, 15_838.0),
            (24.0, 0.088, 0.07, 1259.0),
            (24.0, 0.091, 0.11, 931.0),
        ],
    ),
    (
        "oregon",
        [
            (9028.0, 0.01, 0.005, 137e6),
            (4556.0, 0.02, 0.005, 50e6),
            (1846.0, 0.02, 0.005, 7.5e6),
            (26.0, 0.090, 0.10, 1164.0),
            (23.0, 0.106, 0.12, 923.0),
        ],
    ),
    (
        "astro",
        [
            (12758.0, 0.005, 0.005, 292e6),
            (1735.0, 0.019, 0.005, 8.3e6),
            (598.0, 0.07, 0.02, 40_079.0),
            (26.0, 0.09, 0.11, 1318.0),
            (23.0, 0.13, 0.14, 1007.0),
        ],
    ),
    (
        "dblp",
        [
            (11804.0, 0.005, 0.005, 400e6),
            (7349.0, 0.01, 0.005, 12.6e6),
            (842.0, 0.01, 0.01, 1.2e6),
            (25.0, 0.08, 0.10, 3371.0),
            (23.0, 0.11, 0.12, 2043.0),
        ],
    ),
    (
        "youtube",
        [
            (17865.0, 0.01, 0.005, 1.5e9),
            (5615.0, 0.005, 0.005, 561e6),
            (684.0, 0.02, 0.005, 1.3e6),
            (19.0, 0.1, 0.13, 1324.0),
            (17.0, 0.13, 0.18, 956.0),
        ],
    ),
];

fn main() {
    let args = parse_args();
    let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed);

    let datasets: Vec<(&str, f64)> = match args.scale {
        Scale::Quick => vec![("email", 1.0), ("yeast", 1.0)],
        Scale::Medium => {
            vec![
                ("email", 1.0),
                ("yeast", 1.0),
                ("oregon", 1.0),
                ("dblp", 0.02),
            ]
        }
        Scale::Full => vec![
            ("email", 1.0),
            ("yeast", 1.0),
            ("oregon", 1.0),
            ("astro", 1.0),
            ("dblp", 0.2),
            ("youtube", 0.05),
        ],
    };
    let repetitions = args.scale.pick(2, 5, 5);
    let bc_samples = args.scale.pick(200, 600, 1200);

    println!("Table 3: solution characterization, |Q| = 10, AD = 4, {repetitions} runs per cell");
    println!("(columns: ours | paper)\n");
    let mut t = Table::new(&[
        "dataset", "method", "|V[H]|", "paper", "δ(H)", "paper", "bc(H)", "paper", "W(H)", "paper",
    ]);

    for (name, scale) in datasets {
        let si = realworld::standin_scaled(name, scale).expect("dataset");
        let g = &si.graph;
        eprintln!(
            "[table3] {name}: n = {}, m = {}",
            g.num_nodes(),
            g.num_edges()
        );
        let bc = centrality::betweenness_sampled(g, bc_samples, true, &mut rng);
        // One engine per dataset: every method shares its BFS pool.
        let engine = full_engine(g);

        // Build the workload once so all methods see the same queries.
        let mut queries = Vec::new();
        for _ in 0..repetitions {
            let q = workloads::distance_controlled_query(
                g,
                &workloads::WorkloadConfig::new(10, 4.0),
                &mut rng,
            )
            .expect("workload");
            queries.push(q.vertices);
        }

        for (mi, method) in PAPER_METHODS.iter().enumerate() {
            let mut runs = Vec::new();
            for q in &queries {
                match evaluate_solver(&engine, method, q, &bc) {
                    Ok(m) => runs.push(m),
                    Err(e) => eprintln!("[table3] {name}/{method}: {e}"),
                }
            }
            if runs.is_empty() {
                continue;
            }
            let avg = average_metrics(&runs);
            let paper = PAPER
                .iter()
                .find(|(d, _)| *d == name)
                .map(|(_, rows)| rows[mi]);
            let paper_cell =
                |f: fn(PaperCell) -> String| paper.map(f).unwrap_or_else(|| "-".into());
            t.add_row(vec![
                name.to_string(),
                method.to_string(),
                avg.size.to_string(),
                paper_cell(|p| fmt_big(p.0)),
                fmt_f64(avg.density, 3),
                paper_cell(|p| fmt_f64(p.1, 3)),
                fmt_f64(avg.avg_betweenness, 3),
                paper_cell(|p| fmt_f64(p.2, 3)),
                fmt_big(avg.wiener),
                paper_cell(|p| fmt_big(p.3)),
            ]);
        }
    }
    t.print();
    println!("\npaper bc/δ cells listed as 0.005 correspond to '<0.01' entries.");
    println!("Expected shape: |V[H]| ctp ≥ cps ≥ ppr ≫ st ≈ ws-q; ws-q densest,");
    println!("most central, minimum W(H).");
}
