//! Table 2 (LP edition) — ws-q against lower bounds obtained by actually
//! *solving* the paper's Program 7 with the from-scratch `mwc-lp` solver
//! (cutting-plane loop + branch-and-bound), the closest reproduction of
//! the paper's Gurobi runs.
//!
//! The dense simplex limits this to the smaller datasets — exactly as in
//! the paper, where "this comparison was carried out on small graphs as
//! otherwise the number of variables would be too large to even formulate
//! the integer program". Three lower bounds are reported side by side:
//!
//! * `comb GL` — the certified combinatorial bound (no LP),
//! * `LP GL`   — Program 7 LP relaxation with lazy cycle cuts,
//! * `MIP GL`  — Program 7 after branch-and-bound (node-limited; a
//!   truncated run still certifies its frontier bound, the paper's †).

use std::time::Duration;

use mwc_bench::table::{fmt_f64, Table};
use mwc_bench::{parse_args, Scale};
use mwc_core::ilp_solve::{program7_bounds, Program7Config};
use mwc_core::local_search::{refine, LocalSearchConfig};
use mwc_core::lower_bound::{certified_lower_bound, error_interval};
use mwc_core::minimum_wiener_connector;
use mwc_datasets::{karate, workloads};
use mwc_graph::generators::sbm;
use mwc_graph::Graph;
use mwc_lp::MipConfig;
use rand::SeedableRng;

fn main() {
    let args = parse_args();
    let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed);

    // Instances sized for the dense simplex: the karate club plus small
    // planted-partition graphs standing in for the paper's community-
    // structured datasets (see DESIGN.md §3).
    let mut instances: Vec<(String, Graph)> = vec![("karate".into(), karate::karate_club())];
    for (sizes, label) in [
        (vec![8usize, 8, 8], "sbm-24"),
        (vec![10, 10, 10, 10], "sbm-40"),
    ] {
        let pp = sbm::planted_partition(&sizes, 0.5, 0.06, &mut rng);
        if let Ok((g, _)) = mwc_graph::connectivity::largest_component_graph(&pp.graph) {
            instances.push((label.to_string(), g));
        }
    }

    let sizes: Vec<usize> = match args.scale {
        Scale::Quick => vec![3, 5],
        _ => vec![3, 5, 10],
    };
    let node_budget = args.scale.pick(60, 200, 800);

    println!("Table 2 (LP edition): ws-q vs Program 7 bounds solved with mwc-lp\n");
    let mut t = Table::new(&[
        "dataset",
        "|V|",
        "|Q|",
        "ws-q",
        "GU",
        "comb GL",
        "LP GL",
        "MIP GL",
        "error (MIP)",
        "mip status",
        "cuts",
        "nodes",
    ]);

    for (name, graph) in &instances {
        for &qsize in &sizes {
            if qsize >= graph.num_nodes() {
                continue;
            }
            let q = workloads::uniform_query(graph, qsize, &mut rng).expect("workload");
            let wsq = minimum_wiener_connector(graph, &q.vertices).expect("solve");
            let (_, gu) = refine(
                graph,
                &q.vertices,
                &wsq.connector,
                &LocalSearchConfig::default(),
            )
            .expect("refine");
            let comb = certified_lower_bound(graph, &q.vertices).expect("lb").value;

            let config = Program7Config {
                mip: MipConfig {
                    max_nodes: node_budget,
                    time_limit: Some(Duration::from_secs(60)),
                    ..MipConfig::default()
                },
                ..Program7Config::default()
            };
            let p7 = program7_bounds(graph, &q.vertices, &config).expect("program 7");
            let gl = p7.lower_bound.max(comb).min(gu);
            let (lo, hi) = error_interval(wsq.wiener_index, gl, gu);

            t.add_row(vec![
                name.clone(),
                graph.num_nodes().to_string(),
                qsize.to_string(),
                wsq.wiener_index.to_string(),
                gu.to_string(),
                comb.to_string(),
                fmt_f64(p7.lp_bound, 1),
                p7.lower_bound.to_string(),
                format!("[{}%, {}%]", fmt_f64(lo * 100.0, 1), fmt_f64(hi * 100.0, 1)),
                format!("{:?}", p7.mip_status),
                p7.cuts_added.to_string(),
                p7.nodes.to_string(),
            ]);
        }
    }
    t.print();
    println!("\nLP GL = Program 7 relaxation + lazy cycle cuts; MIP GL = after branch-and-");
    println!("bound (truncated runs report the certified frontier bound — the paper's †).");
    println!("All three GLs are valid lower bounds on the optimal Wiener index; the MIP");
    println!("bound dominates the LP bound, which dominates nothing in general — the");
    println!("combinatorial bound can win on query sets with large pairwise distances.");
}
