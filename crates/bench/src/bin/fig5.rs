//! Figure 5 — scalability of ws-q.
//!
//! Top row: synthetic Erdős–Rényi and power-law graphs — runtime vs |Q|
//! at fixed |V|, and vs |V| at fixed |Q|. Bottom row: the real-graph
//! stand-ins — runtime vs |Q| and vs |V|. Also reports the parallel
//! speedup of the per-root parallelization (§6.6).

use mwc_bench::stats::timed;
use mwc_bench::table::{fmt_f64, Table};
use mwc_bench::{parse_args, Scale};
use mwc_core::{WienerSteiner, WsqConfig};
use mwc_datasets::{realworld, workloads};
use mwc_graph::connectivity::largest_component_graph;
use mwc_graph::generators::{barabasi_albert, gnm};
use mwc_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn solve_time(g: &Graph, q: &[u32], parallel: bool) -> f64 {
    let cfg = WsqConfig {
        parallel,
        ..WsqConfig::default()
    };
    let solver = WienerSteiner::with_config(g, cfg);
    let (res, secs) = timed(|| solver.solve(q));
    res.expect("solvable");
    secs
}

fn query(g: &Graph, size: usize, rng: &mut StdRng) -> Vec<u32> {
    workloads::uniform_query(g, size, rng)
        .expect("workload")
        .vertices
}

fn main() {
    let args = parse_args();
    let mut rng = StdRng::seed_from_u64(args.seed);

    // --- Synthetic graphs: runtime vs |Q| (fixed |V|) ---
    let n_fixed = args.scale.pick(10_000, 100_000, 100_000);
    let q_sweep: Vec<usize> = args.scale.pick(
        vec![3, 10, 30],
        vec![3, 10, 30, 100],
        vec![3, 10, 30, 100, 300, 1000],
    );
    println!("Figure 5 (top-left): runtime vs |Q|, |V| = {n_fixed}\n");
    let er = largest_component_graph(&gnm(n_fixed, n_fixed * 2, &mut rng))
        .unwrap()
        .0;
    let pl = barabasi_albert(n_fixed, 2, &mut rng);
    let mut t = Table::new(&["|Q|", "ER seconds", "PL seconds"]);
    for &qs in &q_sweep {
        let q_er = query(&er, qs, &mut rng);
        let q_pl = query(&pl, qs, &mut rng);
        t.add_row(vec![
            qs.to_string(),
            fmt_f64(solve_time(&er, &q_er, true), 3),
            fmt_f64(solve_time(&pl, &q_pl, true), 3),
        ]);
    }
    t.print();

    // --- Synthetic graphs: runtime vs |V| (fixed |Q|) ---
    let sizes: Vec<usize> = args.scale.pick(
        vec![1_000, 10_000, 100_000],
        vec![1_000, 10_000, 100_000, 1_000_000],
        vec![1_000, 10_000, 100_000, 1_000_000],
    );
    println!("\nFigure 5 (top-right): runtime vs |V|, |Q| = 10\n");
    let mut t = Table::new(&["|V|", "ER seconds", "PL seconds"]);
    for &n in &sizes {
        let er = largest_component_graph(&gnm(n, n * 2, &mut rng)).unwrap().0;
        let pl = barabasi_albert(n, 2, &mut rng);
        let q_er = query(&er, 10, &mut rng);
        let q_pl = query(&pl, 10, &mut rng);
        t.add_row(vec![
            n.to_string(),
            fmt_f64(solve_time(&er, &q_er, true), 3),
            fmt_f64(solve_time(&pl, &q_pl, true), 3),
        ]);
    }
    t.print();

    // --- Real-graph stand-ins: runtime vs |Q| and |V| ---
    let datasets: Vec<(&str, f64)> = match args.scale {
        Scale::Quick => vec![("yeast", 1.0), ("oregon", 1.0)],
        Scale::Medium => vec![
            ("yeast", 1.0),
            ("oregon", 1.0),
            ("astro", 1.0),
            ("dblp", 0.2),
        ],
        Scale::Full => vec![
            ("email", 1.0),
            ("yeast", 1.0),
            ("oregon", 1.0),
            ("astro", 1.0),
            ("dblp", 1.0),
            ("youtube", 1.0),
            ("wiki", 1.0),
            ("livejournal", 0.5),
        ],
    };
    let q_sizes = [3usize, 5, 10];
    println!("\nFigure 5 (bottom): runtime (seconds) on real-graph stand-ins\n");
    let mut t = Table::new(&["dataset", "|V|", "|E|", "|Q|=3", "|Q|=5", "|Q|=10"]);
    for (name, scale) in datasets {
        let si = realworld::standin_scaled(name, scale).expect("dataset");
        let g = &si.graph;
        let mut row = vec![
            name.to_string(),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
        ];
        for &qs in &q_sizes {
            let q = query(g, qs, &mut rng);
            row.push(fmt_f64(solve_time(g, &q, true), 3));
        }
        t.add_row(row);
    }
    t.print();

    // --- Parallel speedup (§6.6's Map-Reduce argument) ---
    println!("\nparallel-vs-sequential (oregon stand-in, |Q| = 16):\n");
    let si = realworld::standin("oregon").expect("oregon");
    let q = query(&si.graph, 16, &mut rng);
    let seq = solve_time(&si.graph, &q, false);
    let par = solve_time(&si.graph, &q, true);
    println!(
        "sequential: {seq:.3}s   parallel: {par:.3}s   speedup: {:.1}x",
        seq / par
    );
    println!("\nExpected shape (paper): runtime roughly linear in both |Q| and graph");
    println!("size, with graph size dominating (Theorem 4); ER vs PL nearly identical.");
}
