//! Ablation study (extension beyond the paper, DESIGN.md §7).
//!
//! Quantifies the design choices of Algorithm 1 on small/medium graphs:
//!
//! 1. `AdjustDistances` on/off (Lemma 2's balancing step);
//! 2. λ-grid resolution β ∈ {0.25, 0.5, 1, 2, 4};
//! 3. root policy: query-only (Lemma 5) vs all vertices;
//! 4. candidate scoring: exact Wiener vs the `A(H, r)` proxy (Remark 1);
//! 5. Steiner subroutine: Mehlhorn (the paper's) vs Kou–Markowsky–Berman
//!    vs Takahashi–Matsuyama — all 2-approximations, so the guarantee is
//!    unchanged and only the constants move.

use mwc_bench::parse_args;
use mwc_bench::stats::{mean, timed};
use mwc_bench::table::{fmt_f64, Table};
use mwc_core::steiner::SteinerAlgorithm;
use mwc_core::{RootPolicy, WienerSteiner, WsqConfig};
use mwc_datasets::{karate, realworld, workloads};
use mwc_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Variant {
    label: &'static str,
    cfg: WsqConfig,
}

fn variants() -> Vec<Variant> {
    let base = WsqConfig {
        parallel: false,
        ..WsqConfig::default()
    };
    vec![
        Variant {
            label: "default (β=1, adjust, roots=Q, score=W)",
            cfg: base.clone(),
        },
        Variant {
            label: "no AdjustDistances",
            cfg: WsqConfig {
                adjust: false,
                ..base.clone()
            },
        },
        Variant {
            label: "β=0.25 (fine λ grid)",
            cfg: WsqConfig {
                beta: 0.25,
                ..base.clone()
            },
        },
        Variant {
            label: "β=4 (coarse λ grid)",
            cfg: WsqConfig {
                beta: 4.0,
                ..base.clone()
            },
        },
        Variant {
            label: "score=A(H,r) proxy only",
            cfg: WsqConfig {
                wiener_exact_threshold: 0,
                ..base.clone()
            },
        },
        Variant {
            label: "steiner=Kou-Markowsky-Berman",
            cfg: WsqConfig {
                steiner: SteinerAlgorithm::KouMarkowskyBerman,
                ..base.clone()
            },
        },
        Variant {
            label: "steiner=Takahashi-Matsuyama",
            cfg: WsqConfig {
                steiner: SteinerAlgorithm::TakahashiMatsuyama,
                ..base.clone()
            },
        },
        Variant {
            label: "no Lemma 4 (Klein-Ravi node-weighted)",
            cfg: WsqConfig {
                node_weighted_steiner: true,
                ..base.clone()
            },
        },
        Variant {
            label: "roots=all vertices",
            cfg: WsqConfig {
                roots: RootPolicy::AllVertices,
                ..base
            },
        },
    ]
}

fn run_on(name: &str, g: &Graph, queries: &[Vec<NodeId>], skip_all_roots: bool) {
    println!(
        "\n=== {name} (n = {}, m = {}, {} queries) ===",
        g.num_nodes(),
        g.num_edges(),
        queries.len()
    );
    let mut t = Table::new(&[
        "variant",
        "mean W",
        "mean |H|",
        "mean seconds",
        "W vs default",
    ]);
    let mut default_w = 0.0;
    for v in variants() {
        if skip_all_roots && matches!(v.cfg.roots, RootPolicy::AllVertices) {
            continue;
        }
        let solver = WienerSteiner::with_config(g, v.cfg);
        let mut ws = Vec::new();
        let mut sizes = Vec::new();
        let mut secs = Vec::new();
        for q in queries {
            let (res, s) = timed(|| solver.solve(q));
            let sol = res.expect("solvable");
            ws.push(sol.wiener_index as f64);
            sizes.push(sol.connector.len() as f64);
            secs.push(s);
        }
        let mw = mean(&ws);
        if v.label.starts_with("default") {
            default_w = mw;
        }
        t.add_row(vec![
            v.label.to_string(),
            fmt_f64(mw, 1),
            fmt_f64(mean(&sizes), 1),
            fmt_f64(mean(&secs), 4),
            if default_w > 0.0 {
                format!("{:+.1}%", (mw / default_w - 1.0) * 100.0)
            } else {
                "-".into()
            },
        ]);
    }
    t.print();
}

fn main() {
    let args = parse_args();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let reps = args.scale.pick(3, 8, 16);

    // Karate: small enough for the all-roots policy.
    let g = karate::karate_club();
    let queries: Vec<Vec<NodeId>> = (0..reps)
        .filter_map(|_| workloads::uniform_query(&g, 4, &mut rng).map(|q| q.vertices))
        .collect();
    run_on("karate", &g, &queries, false);

    // Email stand-in: medium; all-roots would take |V| Steiner sweeps.
    let si = realworld::standin("email").expect("email");
    let queries: Vec<Vec<NodeId>> = (0..reps)
        .filter_map(|_| {
            workloads::distance_controlled_query(
                &si.graph,
                &workloads::WorkloadConfig::new(8, 4.0),
                &mut rng,
            )
            .map(|q| q.vertices)
        })
        .collect();
    run_on("email stand-in", &si.graph, &queries, true);

    println!("\nReadings: AdjustDistances and exact-W scoring mainly improve solution");
    println!("quality; finer λ grids trade time for small gains; the all-roots policy");
    println!("shows how little Lemma 5's query-only restriction costs. Swapping the");
    println!("Steiner subroutine keeps the guarantee: Takahashi-Matsuyama often finds");
    println!("slightly smaller connectors at several times Mehlhorn's cost, confirming");
    println!("the paper's choice as the right speed/quality point.");
}
