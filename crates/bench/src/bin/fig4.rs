//! Figure 4 — ws-q vs st on Steiner-tree benchmarks.
//!
//! Runs both methods on the puc-like and vienna-like suites and prints the
//! CDFs of (a) the solution-size ratio |V(H_ST)| / |V(H_WSQ)| and (b) the
//! Wiener-index ratio W(H_ST) / W(H_WSQ) — the paper's two panels.

use mwc_baselines::full_engine;
use mwc_bench::stats::cdf_at;
use mwc_bench::table::{fmt_f64, Table};
use mwc_bench::{parse_args, Scale};
use mwc_datasets::{puc_like, vienna_like, BenchmarkInstance};

fn run_suite(label: &str, suite: &[BenchmarkInstance]) -> (Vec<f64>, Vec<f64>) {
    let mut size_ratios = Vec::new();
    let mut wiener_ratios = Vec::new();
    for inst in suite {
        let engine = full_engine(&inst.graph);
        let st = match engine.solve("st", &inst.terminals) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("[fig4] {}: st failed: {e}", inst.name);
                continue;
            }
        };
        let wsq = match engine.solve("ws-q", &inst.terminals) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("[fig4] {}: ws-q failed: {e}", inst.name);
                continue;
            }
        };
        size_ratios.push(st.connector.len() as f64 / wsq.connector.len() as f64);
        wiener_ratios.push(st.wiener_index as f64 / wsq.wiener_index as f64);
    }
    eprintln!("[fig4] {label}: {} instances evaluated", size_ratios.len());
    (size_ratios, wiener_ratios)
}

fn print_cdf(name: &str, xs: &[(String, Vec<f64>)], grid: &[f64]) {
    println!("\nCDF of {name}:");
    let mut headers = vec!["ratio ≤".to_string()];
    headers.extend(xs.iter().map(|(l, _)| l.clone()));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&headers_ref);
    for &x in grid {
        let mut row = vec![fmt_f64(x, 2)];
        for (_, samples) in xs {
            row.push(fmt_f64(cdf_at(samples, x), 2));
        }
        t.add_row(row);
    }
    t.print();
}

fn main() {
    let args = parse_args();

    let (vienna_count, use_full_puc) = match args.scale {
        Scale::Quick => (6, false),
        Scale::Medium => (30, true),
        Scale::Full => (85, true),
    };
    let puc = if use_full_puc {
        puc_like(args.seed)
    } else {
        puc_like(args.seed).into_iter().take(8).collect()
    };
    let vienna = vienna_like(vienna_count, args.seed.wrapping_add(1));

    println!(
        "Figure 4: st vs ws-q on Steiner benchmarks ({} puc-like, {} vienna-like instances)",
        puc.len(),
        vienna.len()
    );

    let (puc_size, puc_wiener) = run_suite("puc", &puc);
    let (vienna_size, vienna_wiener) = run_suite("vienna", &vienna);

    let size_grid = [0.8, 0.9, 1.0, 1.1, 1.2, 1.4];
    print_cdf(
        "(a) |V(H_ST)| / |V(H_WSQ)|",
        &[("vienna".into(), vienna_size), ("puc".into(), puc_size)],
        &size_grid,
    );
    let wiener_grid = [1.0, 1.2, 1.4, 1.6, 2.0, 2.4, 3.0];
    print_cdf(
        "(b) W(H_ST) / W(H_WSQ)",
        &[("vienna".into(), vienna_wiener), ("puc".into(), puc_wiener)],
        &wiener_grid,
    );

    println!("\nExpected shape (paper): panel (a) mass concentrated near 1.0 — ws-q");
    println!("solutions are comparable in size, often no larger, than st's even though");
    println!("st optimizes size; panel (b) ratios ≥ 1 with a long tail to ~2.4 — ws-q");
    println!("has a much smaller Wiener index throughout.");
}
