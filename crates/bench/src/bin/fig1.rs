//! Figure 1 — minimum Wiener connectors on Zachary's karate club.
//!
//! Left panel: query vertices from different factions; right panel: query
//! vertices inside one faction. Prints the exact optimum (the graph is
//! tiny), the ws-q solution, and the faction of every selected vertex —
//! reproducing the figure's story: cross-community queries recruit the two
//! leaders (1, 34) and the bridge (32); same-community queries stay inside
//! and recruit the local leader (1).

use mwc_bench::parse_args;
use mwc_core::exact::{exact_minimum, ExactConfig};
use mwc_core::minimum_wiener_connector;
use mwc_datasets::karate::{from_paper_ids, karate_club, karate_factions};

fn main() {
    let _ = parse_args();
    let g = karate_club();
    let factions = karate_factions();

    println!(
        "Figure 1: Zachary's karate club ({} vertices, {} edges)",
        g.num_nodes(),
        g.num_edges()
    );
    println!("factions: instructor (vertex 1) vs president (vertex 34)\n");

    let panels = [
        ("left (different communities)", vec![12u32, 25, 26, 30]),
        ("right (same community)", vec![4u32, 12, 17]),
    ];
    for (label, q_paper) in panels {
        let q = from_paper_ids(&q_paper);
        let wsq = minimum_wiener_connector(&g, &q).expect("solve");
        let exact =
            exact_minimum(&g, &q, Some(&wsq.connector), &ExactConfig::default()).expect("exact");
        assert!(exact.optimal, "karate instances are exactly solvable");

        println!("=== {label} ===");
        println!("query Q (paper ids): {q_paper:?}");
        let render = |vs: &[u32]| -> Vec<String> {
            vs.iter()
                .map(|&v| {
                    let f = if factions[v as usize] == 0 { "I" } else { "P" };
                    format!("{}{}{}", v + 1, if q.contains(&v) { "*" } else { "" }, f)
                })
                .collect()
        };
        println!(
            "minimum Wiener connector (exact, W = {}): {:?}",
            exact.wiener_index,
            render(exact.connector.vertices())
        );
        println!(
            "ws-q solution (W = {}): {:?}",
            wsq.wiener_index,
            render(wsq.connector.vertices())
        );
        let added: Vec<u32> = exact
            .connector
            .vertices()
            .iter()
            .copied()
            .filter(|v| !q.contains(v))
            .map(|v| v + 1)
            .collect();
        println!("added vertices (paper ids): {added:?}");
        let spans = exact
            .connector
            .vertices()
            .iter()
            .map(|&v| factions[v as usize])
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        println!(
            "solution spans {spans} faction(s)\n  (legend: * = query vertex, I/P = faction)\n"
        );
    }
    println!("paper: left panel adds {{1, 34, 32}} (W = 43 — tied optimum with ours);");
    println!("right panel adds two vertices including leader 1 and stays in-community.");
}
