//! `regress` — the CI bench-regression gate.
//!
//! Compares a fresh `kernel` run against the committed
//! `BENCH_kernel.json` baseline and fails (exit 1) when a tracked metric
//! regresses beyond its tolerance band — replacing the fixed "≥ 2×"
//! asserts the kernel bin used to carry, which said nothing about
//! regressions *from the recorded state* and flaked on hardware where
//! the universal factor was unrealistic.
//!
//! ```text
//! cargo run --release -p mwc-bench --bin regress -- \
//!     --baseline BENCH_kernel.json --current BENCH_kernel_current.json \
//!     [--tolerance 0.30] [--tolerance-ms 0.75] [--floor-ms 0.05]
//! ```
//!
//! Two metric classes are tracked, recursively, wherever they appear in
//! the baseline document:
//!
//! * `speedup` keys (higher is better) — ratios of two timings taken on
//!   the same machine in the same process, so they transfer across
//!   hardware better than absolute times; the default band is ±30%
//!   (`--tolerance`), sized for same-machine reruns. CI passes a wider
//!   band because its baseline was recorded on different hardware.
//! * keys ending in `_p50_ms` (lower is better) — absolute wall-clock,
//!   which varies with the runner's hardware generation far more than
//!   the ratios do; the default band is ±75% (`--tolerance-ms`), a
//!   catch-catastrophes bound rather than a perf SLO (CI widens this
//!   too). Values below `--floor-ms` in the baseline are skipped
//!   entirely (cache-hit latencies in the microsecond range are pure
//!   scheduler noise); the semantic hot-beats-cold cache invariant is
//!   asserted inside the `kernel` bin itself, where both sides of the
//!   comparison come from the same run. `--skip-ms` drops the
//!   absolute-ms class entirely — the right call when baseline and
//!   current come from different hardware, where a core-count gap alone
//!   can move a parallel solve's wall-clock several-fold.
//!
//! A tracked key present in the baseline but missing from the current
//! run is itself a failure: silently dropping a bench section must not
//! read as "no regression".

use std::process::ExitCode;

use mwc_service::json::{parse, Json};

struct Args {
    baseline: String,
    current: String,
    /// Relative band on `speedup` keys (0.30 = current may be up to 30%
    /// below baseline).
    tolerance: f64,
    /// Relative band on `*_p50_ms` keys (0.75 = current may be up to 75%
    /// above baseline).
    tolerance_ms: f64,
    /// Baseline `*_p50_ms` values below this are skipped as noise.
    floor_ms: f64,
    /// Skip the absolute-ms class entirely (cross-hardware runs).
    skip_ms: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: regress --baseline PATH --current PATH \
         [--tolerance F] [--tolerance-ms F] [--floor-ms F] [--skip-ms]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Args {
    let mut out = Args {
        baseline: String::new(),
        current: String::new(),
        tolerance: 0.30,
        tolerance_ms: 0.75,
        floor_ms: 0.05,
        skip_ms: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--baseline" => out.baseline = value(),
            "--current" => out.current = value(),
            "--tolerance" => out.tolerance = value().parse().unwrap_or_else(|_| usage()),
            "--tolerance-ms" => out.tolerance_ms = value().parse().unwrap_or_else(|_| usage()),
            "--floor-ms" => out.floor_ms = value().parse().unwrap_or_else(|_| usage()),
            "--skip-ms" => out.skip_ms = true,
            _ => usage(),
        }
    }
    if out.baseline.is_empty() || out.current.is_empty() {
        usage();
    }
    out
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("regress: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse(&text).unwrap_or_else(|e| {
        eprintln!("regress: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

/// One tracked metric: its dotted path, direction, and both values.
struct Check {
    path: String,
    baseline: f64,
    current: Option<f64>,
    /// `true` when higher is better (`speedup`), `false` for timings.
    higher_is_better: bool,
}

/// Walks the baseline document and collects every tracked metric, paired
/// with the value at the same path in the current document.
fn collect(path: &str, baseline: &Json, current: Option<&Json>, out: &mut Vec<Check>) {
    let Json::Obj(members) = baseline else {
        return;
    };
    for (key, value) in members {
        let child_path = if path.is_empty() {
            key.clone()
        } else {
            format!("{path}.{key}")
        };
        let cur_child = current.and_then(|c| c.get(key));
        let tracked_speedup = key == "speedup";
        let tracked_ms = key.ends_with("_p50_ms");
        if tracked_speedup || tracked_ms {
            if let Some(b) = value.as_f64() {
                out.push(Check {
                    path: child_path,
                    baseline: b,
                    current: cur_child.and_then(Json::as_f64),
                    higher_is_better: tracked_speedup,
                });
            }
            continue;
        }
        collect(&child_path, value, cur_child, out);
    }
}

fn main() -> ExitCode {
    let args = parse_cli();
    let baseline = load(&args.baseline);
    let current = load(&args.current);

    let mut checks = Vec::new();
    collect("", &baseline, Some(&current), &mut checks);
    if checks.is_empty() {
        eprintln!("regress: no tracked metrics found in {}", args.baseline);
        return ExitCode::from(2);
    }

    let mut failures = 0usize;
    let mut compared = 0usize;
    for check in &checks {
        // The skip rules apply to the ms class whether the metric is
        // present or missing: a class the caller told us to ignore (or a
        // baseline below the noise floor) must not fail the gate just
        // because a later kernel revision dropped the key.
        if !check.higher_is_better && (args.skip_ms || check.baseline < args.floor_ms) {
            let why = if args.skip_ms {
                "absolute-ms class skipped".to_string()
            } else {
                format!("baseline {:.4} ms below floor", check.baseline)
            };
            println!("SKIP  {:<44} {why}", check.path);
            continue;
        }
        let (verdict, detail) = match check.current {
            None => (false, "missing from current run".to_string()),
            Some(cur) if check.higher_is_better => {
                let bound = check.baseline * (1.0 - args.tolerance);
                compared += 1;
                (
                    cur >= bound,
                    format!(
                        "baseline {:.3} current {:.3} (min allowed {:.3})",
                        check.baseline, cur, bound
                    ),
                )
            }
            Some(cur) => {
                let bound = check.baseline * (1.0 + args.tolerance_ms);
                compared += 1;
                (
                    cur <= bound,
                    format!(
                        "baseline {:.3} ms current {:.3} ms (max allowed {:.3})",
                        check.baseline, cur, bound
                    ),
                )
            }
        };
        if verdict {
            println!("OK    {:<44} {detail}", check.path);
        } else {
            println!("FAIL  {:<44} {detail}", check.path);
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!(
            "regress: {failures} of {} tracked metrics regressed beyond tolerance",
            checks.len()
        );
        return ExitCode::FAILURE;
    }
    eprintln!("regress: {compared} metrics within tolerance, none regressed");
    ExitCode::SUCCESS
}
