//! `kernel` — micro-benchmark of the distance kernel, emitting
//! `BENCH_kernel.json`.
//!
//! Eight comparisons, each isolating one layer of the cache-aware kernel
//! refactor:
//!
//! 1. **per-source vs multi-source BFS** — 64 single-source sweeps
//!    against one 64-lane [`MsBfsWorkspace`] sweep (same sources);
//! 2. **plain vs direction-optimizing BFS** — top-down only against the
//!    α/β-switching kernel, same sources;
//! 3. **original vs degree-ordered layout** — the same multi-source
//!    sweep on the as-generated CSR and on
//!    [`Graph::degree_ordered`]'s hub-first relabeling;
//! 4. **cache-cold vs cache-hot solve** — `ws-q` engine solves over a
//!    query workload, first pass cold, second pass replayed from the
//!    engine's solve cache (p50 of each);
//! 5. **per-root vs batched `ws-q` root sweep** (`wsq_batched`) — the
//!    BFS work Algorithm 1 pays before its λ sweeps for a |Q| = 16
//!    query: a standalone feasibility BFS plus one distance+parent BFS
//!    per root (the pre-batching solver) against the solver's
//!    [`batched_root_distances`] (⌈|Q|/64⌉ shared CSR sweeps;
//!    feasibility rides lane 0, and parents are derived on demand from
//!    the distances, so the batched side pays neither up front);
//! 6. **sequential vs batched oracle construction** (`oracle_build`) —
//!    64 hub landmarks built by `k` sequential BFS runs
//!    ([`LandmarkOracle::build_sequential`]) against the one-sweep
//!    multi-source build ([`LandmarkOracle::build`]);
//! 7. **per-source Dijkstra vs batched delta-stepping**
//!    (`delta_stepping`) — the same 64 sources on the weighted twin of
//!    the bench graph (`wba:` hash weights), 64 pooled
//!    [`DijkstraWorkspace`] runs against one
//!    [`MsDeltaWorkspace`] bucket sweep, distances asserted
//!    bit-identical before timing;
//! 8. **sequential vs batched weighted oracle** (`weighted_oracle`) —
//!    the `oracle_build` comparison on the weighted graph, where both
//!    sides dispatch to the delta-stepping kernels.
//!
//! ```text
//! cargo run --release -p mwc-bench --bin kernel -- \
//!     [--scale quick|medium|full] [--seed N] [--out BENCH_kernel.json]
//! ```
//!
//! `--scale quick` is the CI smoke mode (a few seconds); `medium`/`full`
//! grow the Barabási–Albert bench graph. Regression gating lives in the
//! `regress` bin, which compares this output against the committed
//! `BENCH_kernel.json` with a tolerance band instead of fixed factors.

use std::io::Write as _;
use std::time::Instant;

use mwc_bench::{Scale, Timer};
use mwc_core::wsq::batched_root_distances;
use mwc_core::{QueryEngine, QueryOptions};
use mwc_graph::oracle::{LandmarkOracle, LandmarkStrategy};
use mwc_graph::traversal::bfs::{BfsWorkspace, MsBfsWorkspace, WorkspacePool, MS_BFS_LANES};
use mwc_graph::NodeId;
use mwc_service::Json;
use rand::{Rng, SeedableRng};

/// Query size of the `wsq_batched` comparison (the paper's Algorithm 1
/// runs one BFS per root r ∈ Q; 16 roots is the acceptance workload).
const WSQ_BATCH_ROOTS: usize = 16;

/// Landmark count of the `oracle_build` comparison — one full 64-lane
/// sweep on the batched side.
const ORACLE_LANDMARKS: usize = 64;

struct Args {
    scale: Scale,
    seed: u64,
    out: String,
}

fn parse_cli() -> Args {
    let mut out = Args {
        scale: Scale::Quick,
        seed: 42,
        out: "BENCH_kernel.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {arg}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--scale" => {
                let v = value();
                out.scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("bad scale {v:?}");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                out.seed = value().parse().unwrap_or_else(|_| {
                    eprintln!("bad seed");
                    std::process::exit(2);
                })
            }
            "--out" => out.out = value(),
            _ => {
                eprintln!("usage: kernel [--scale quick|medium|full] [--seed N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    out
}

/// Best-of-`reps` wall-clock for `f` (keeps the numbers stable against
/// scheduler noise without long runs).
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn comparison(label: &str, baseline_ms: f64, kernel_ms: f64) -> (String, Json) {
    println!(
        "{label:<28} baseline {baseline_ms:>9.3} ms   kernel {kernel_ms:>9.3} ms   speedup {:>5.2}x",
        baseline_ms / kernel_ms
    );
    (
        label.to_string(),
        Json::obj([
            ("baseline_ms", Json::from(baseline_ms)),
            ("kernel_ms", Json::from(kernel_ms)),
            ("speedup", Json::from(baseline_ms / kernel_ms)),
        ]),
    )
}

fn main() {
    let args = parse_cli();
    let (n, k) = args.scale.pick((20_000, 4), (100_000, 8), (400_000, 8));
    let reps = args.scale.pick(3, 3, 2);
    let spec = format!("ba:{n}x{k}");

    let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed);
    let timer = Timer::start();
    // Built through the serving catalog's own spec parser, so the bench
    // graph is byte-identical to what `mwc-server --graph x=ba:…` serves.
    let g = mwc_service::GraphSource::parse(&spec)
        .expect("valid ba spec")
        .build()
        .expect("deterministic build");
    eprintln!(
        "kernel: {spec} built in {:.2}s ({} nodes, {} edges)",
        timer.seconds(),
        g.num_nodes(),
        g.num_edges()
    );

    let sources: Vec<NodeId> = (0..MS_BFS_LANES)
        .map(|_| rng.gen_range(0..n as NodeId))
        .collect();

    // 1. Per-source vs multi-source batched BFS, same 64 sources.
    let mut ws = BfsWorkspace::new();
    let per_source_ms = best_of(reps, || {
        for &s in &sources {
            ws.run(&g, s);
        }
    });
    let mut msws = MsBfsWorkspace::new();
    let multi_source_ms = best_of(reps, || msws.run(&g, &sources));
    let bfs_cmp = comparison("bfs:multi_source", per_source_ms, multi_source_ms);

    // 2. Plain vs direction-optimizing single-source BFS.
    let plain_ms = best_of(reps, || {
        for &s in &sources[..8] {
            ws.run(&g, s);
        }
    });
    let dirop_ms = best_of(reps, || {
        for &s in &sources[..8] {
            ws.run_auto(&g, s);
        }
    });
    let direction_cmp = comparison("bfs:direction_optimizing", plain_ms, dirop_ms);

    // 3. Arbitrary vs degree-ordered layout. Barabási–Albert generation
    //    already places hubs at low ids, so to measure layout (and only
    //    layout) we first scramble the labels — the shape real edge-list
    //    loads arrive in — then compare the scrambled CSR against its
    //    degree-ordered relabeling. Same logical graph, same logical
    //    sources, different memory layout.
    let scramble: Vec<NodeId> = {
        let mut p: Vec<NodeId> = (0..n as NodeId).collect();
        for i in (1..n).rev() {
            p.swap(i, rng.gen_range(0..=i));
        }
        p
    };
    let scrambled_edges: Vec<(NodeId, NodeId)> = g
        .edges()
        .map(|(u, v)| (scramble[u as usize], scramble[v as usize]))
        .collect();
    let scrambled = mwc_graph::Graph::from_edges(n, &scrambled_edges).expect("relabel");
    let scrambled_sources: Vec<NodeId> = sources.iter().map(|&s| scramble[s as usize]).collect();
    let (ordered, perm) = scrambled.degree_ordered();
    let ordered_sources = perm.map_to_new(&scrambled_sources);
    let original_layout_ms = best_of(reps, || msws.run(&scrambled, &scrambled_sources));
    let ordered_layout_ms = best_of(reps, || msws.run(&ordered, &ordered_sources));
    let layout_cmp = comparison(
        "layout:degree_ordered",
        original_layout_ms,
        ordered_layout_ms,
    );

    // 5. Per-root vs batched ws-q root sweep: everything Algorithm 1
    //    pays in BFS before the λ sweeps, for a |Q| = 16 query. The
    //    baseline is the pre-batching solver's work — one standalone
    //    feasibility BFS from q[0] plus one distance+parent BFS per root;
    //    the kernel side is the batched path's own helper (shared
    //    multi-source sweeps plus the per-root gather — feasibility rides
    //    lane 0 for free, and parent trees are derived on demand later).
    let wsq_roots: Vec<NodeId> = {
        let mut roots: Vec<NodeId> = Vec::new();
        while roots.len() < WSQ_BATCH_ROOTS {
            let v = rng.gen_range(0..n as NodeId);
            if !roots.contains(&v) {
                roots.push(v);
            }
        }
        roots.sort_unstable();
        roots
    };
    // These two sections feed the CI regression gate, so they get extra
    // repetitions: the runs are milliseconds each, and best-of over a
    // larger sample keeps the committed speedups stable against
    // scheduler noise.
    let gate_reps = reps.max(7);
    let per_root_ms = best_of(gate_reps, || {
        ws.run(&g, wsq_roots[0]); // the standalone feasibility pass
        for &r in &wsq_roots {
            ws.run_with_parents(&g, r);
        }
    });
    let batched_ms = best_of(gate_reps, || {
        batched_root_distances(&g, &wsq_roots, &mut msws);
    });
    let wsq_cmp = comparison("wsq:batched_root_sweep", per_root_ms, batched_ms);

    // 6. Sequential vs batched landmark-oracle construction: 64 hub
    //    landmarks, k BFS runs against one 64-lane multi-source sweep.
    let sequential_build_ms = best_of(gate_reps, || {
        let mut r = rand::rngs::StdRng::seed_from_u64(args.seed);
        LandmarkOracle::build_sequential(
            &g,
            ORACLE_LANDMARKS,
            LandmarkStrategy::HighestDegree,
            &mut r,
        );
    });
    let batched_build_ms = best_of(gate_reps, || {
        let mut r = rand::rngs::StdRng::seed_from_u64(args.seed);
        LandmarkOracle::build(
            &g,
            ORACLE_LANDMARKS,
            LandmarkStrategy::HighestDegree,
            &mut r,
        );
    });
    let oracle_cmp = comparison(
        "oracle:batched_build",
        sequential_build_ms,
        batched_build_ms,
    );

    // 7. Per-source Dijkstra vs batched delta-stepping on the weighted
    //    twin of the bench graph (same topology, `wba:` hash weights).
    //    Both sides lease through the WorkspacePool, like the serving
    //    path does; distances are pinned bit-identical before timing so
    //    the speedup can never come from a wrong answer.
    let wspec = format!("wba:{n}x{k}");
    let wg = mwc_service::GraphSource::parse(&wspec)
        .expect("valid wba spec")
        .build()
        .expect("deterministic weighted build");
    let pool = WorkspacePool::new();
    {
        let mut dij = pool.lease_dijkstra();
        let mut msd = pool.lease_multi_delta();
        msd.run(&wg, &sources);
        for (lane, &s) in sources.iter().enumerate() {
            assert_eq!(
                msd.lane_distances(lane),
                dij.run(&wg, s),
                "delta-stepping lane {lane} disagrees with Dijkstra from {s}"
            );
        }
    }
    let per_source_dijkstra_ms = best_of(gate_reps, || {
        let mut dij = pool.lease_dijkstra();
        for &s in &sources {
            dij.run(&wg, s);
        }
    });
    let batched_delta_ms = best_of(gate_reps, || {
        let mut msd = pool.lease_multi_delta();
        msd.run(&wg, &sources);
    });
    let delta_cmp = comparison(
        "weighted:delta_stepping",
        per_source_dijkstra_ms,
        batched_delta_ms,
    );

    // 8. Sequential vs batched oracle construction on the weighted
    //    graph — both sides dispatch to the delta-stepping kernels.
    let wseq_build_ms = best_of(gate_reps, || {
        let mut r = rand::rngs::StdRng::seed_from_u64(args.seed);
        LandmarkOracle::build_sequential(
            &wg,
            ORACLE_LANDMARKS,
            LandmarkStrategy::HighestDegree,
            &mut r,
        );
    });
    let wbatched_build_ms = best_of(gate_reps, || {
        let mut r = rand::rngs::StdRng::seed_from_u64(args.seed);
        LandmarkOracle::build(
            &wg,
            ORACLE_LANDMARKS,
            LandmarkStrategy::HighestDegree,
            &mut r,
        );
    });
    let weighted_oracle_cmp = comparison(
        "weighted:oracle_build",
        wseq_build_ms,
        wbatched_build_ms,
    );

    // 4. Cache-cold vs cache-hot solve latency on a fixed query workload.
    let engine = QueryEngine::new(&g);
    let queries: Vec<Vec<NodeId>> = (0..args.scale.pick(24, 32, 32))
        .map(|_| {
            let size = rng.gen_range(2..=4usize);
            (0..size).map(|_| rng.gen_range(0..n as NodeId)).collect()
        })
        .collect();
    let solve_pass = |engine: &QueryEngine<'_>, opts: &QueryOptions| -> Vec<f64> {
        let mut lat: Vec<f64> = queries
            .iter()
            .filter_map(|q| {
                let t = Instant::now();
                engine.solve_with("ws-q", q, opts).ok()?;
                Some(t.elapsed().as_secs_f64() * 1e3)
            })
            .collect();
        lat.sort_by(|a, b| a.total_cmp(b));
        lat
    };
    let cold = solve_pass(&engine, &QueryOptions::default());
    let hot = solve_pass(&engine, &QueryOptions::default());
    let (cold_p50, hot_p50) = (quantile_ms(&cold, 0.5), quantile_ms(&hot, 0.5));
    let cache_stats = engine.cache_stats();
    println!(
        "{:<28} cold p50 {cold_p50:>9.3} ms   hot p50 {hot_p50:>9.3} ms   ({} hits / {} misses)",
        "solve:cache", cache_stats.hits, cache_stats.misses
    );

    let doc = Json::obj([
        (
            "config",
            Json::obj([
                (
                    "scale",
                    Json::from(match args.scale {
                        Scale::Quick => "quick",
                        Scale::Medium => "medium",
                        Scale::Full => "full",
                    }),
                ),
                ("graph", Json::from(spec.as_str())),
                ("weighted_graph", Json::from(wspec.as_str())),
                ("nodes", Json::from(g.num_nodes())),
                ("edges", Json::from(g.num_edges())),
                ("sources", Json::from(MS_BFS_LANES)),
                ("queries", Json::from(queries.len())),
                ("wsq_batch_roots", Json::from(WSQ_BATCH_ROOTS)),
                ("oracle_landmarks", Json::from(ORACLE_LANDMARKS)),
                ("seed", Json::from(args.seed)),
            ]),
        ),
        ("bfs_multi_source", bfs_cmp.1),
        ("bfs_direction_optimizing", direction_cmp.1),
        ("layout_degree_ordered", layout_cmp.1),
        ("wsq_batched", wsq_cmp.1),
        ("oracle_build", oracle_cmp.1),
        ("delta_stepping", delta_cmp.1),
        ("weighted_oracle", weighted_oracle_cmp.1),
        (
            "solve_cache",
            Json::obj([
                ("cold_p50_ms", Json::from(cold_p50)),
                ("hot_p50_ms", Json::from(hot_p50)),
                ("cold_mean_ms", Json::from(mean(&cold))),
                ("hot_mean_ms", Json::from(mean(&hot))),
                ("speedup_p50", Json::from(cold_p50 / hot_p50.max(1e-9))),
                (
                    "stats",
                    Json::obj([
                        ("hits", Json::from(cache_stats.hits)),
                        ("misses", Json::from(cache_stats.misses)),
                        ("evictions", Json::from(cache_stats.evictions)),
                        ("entries", Json::from(cache_stats.entries)),
                        ("capacity", Json::from(cache_stats.capacity)),
                    ]),
                ),
            ]),
        ),
    ]);

    let mut file = std::fs::File::create(&args.out).expect("create output file");
    file.write_all(doc.to_string().as_bytes())
        .expect("write output");
    file.write_all(b"\n").expect("write output");
    eprintln!("kernel: wrote {}", args.out);
    // Factor gating moved to the `regress` bin: CI compares this run's
    // sections against the committed BENCH_kernel.json with a tolerance
    // band, which catches *regressions from the recorded state* instead
    // of asserting fixed universal factors here. One semantic invariant
    // stays, because regress cannot see it (hot p50 sits below its noise
    // floor): a cache hit must beat a full solve on any hardware.
    assert!(
        hot_p50 < cold_p50,
        "cache-hot p50 ({hot_p50:.3} ms) should beat cache-cold p50 ({cold_p50:.3} ms)"
    );
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}
