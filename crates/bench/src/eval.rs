//! Uniform evaluation of a solver's solution: the Table 3 metrics.
//!
//! Methods are selected by [`QueryEngine`] registry name (`"ws-q"`,
//! `"st"`, …) instead of an enum, so the harness serves the paper's
//! method table and any future registered solver through one code path.

use mwc_core::{QueryEngine, Result, SolveReport};
use mwc_graph::{metrics, NodeId};

pub use mwc_baselines::PAPER_METHODS;

/// The per-solution measurements of Table 3 / Figure 3.
#[derive(Debug, Clone)]
pub struct SolutionMetrics {
    /// Registry name of the solver that produced the solution.
    pub solver: String,
    /// `|V[H]|`.
    pub size: usize,
    /// `δ(H) = |E[H]| / C(|V[H]|, 2)`.
    pub density: f64,
    /// Average betweenness centrality (in the input graph) of the
    /// solution's vertices — `bc(H)`.
    pub avg_betweenness: f64,
    /// Exact Wiener index `W(H)` (every
    /// [`SolveReport`](mwc_core::SolveReport) carries it).
    pub wiener: f64,
    /// Wall-clock seconds of the engine solve (which includes the exact
    /// Wiener evaluation every [`SolveReport`](mwc_core::SolveReport)
    /// carries; the extra metrics below are excluded).
    pub seconds: f64,
}

/// Runs the named solver on `q` through `engine` and measures the
/// solution.
///
/// `bc` is the betweenness vector of the engine's graph (computed once
/// per graph by the caller — sampled betweenness is usually preferable to
/// the engine's exact cache on large graphs). The Wiener index comes
/// straight from the report — every solve already evaluates it exactly,
/// so no re-sampling happens here.
pub fn evaluate_solver(
    engine: &QueryEngine<'_>,
    solver: &str,
    q: &[NodeId],
    bc: &[f64],
) -> Result<SolutionMetrics> {
    evaluate_with_report(engine, solver, q, bc).map(|(m, _)| m)
}

/// Like [`evaluate_solver`], but also hands back the engine's
/// [`SolveReport`] so callers can render it uniformly
/// ([`SolveReport::render_text`] / [`SolveReport::to_json`]) instead of
/// re-formatting fields ad hoc.
pub fn evaluate_with_report(
    engine: &QueryEngine<'_>,
    solver: &str,
    q: &[NodeId],
    bc: &[f64],
) -> Result<(SolutionMetrics, SolveReport)> {
    let report = engine.solve(solver, q)?;
    let g = engine.graph();
    let sub = report.connector.induced(g)?;
    let density = metrics::density(sub.graph());
    let wiener = report.wiener_index as f64;
    let m = SolutionMetrics {
        solver: report.solver.clone(),
        size: report.connector.len(),
        density,
        avg_betweenness: report.connector.average_score(bc),
        wiener,
        seconds: report.seconds,
    };
    Ok((m, report))
}

/// One machine-readable JSON line for an evaluated solution: the
/// engine's report (via [`SolveReport::to_json`] — the same object shape
/// `mwc_service` serves in its `"report"` wire field) extended with the
/// Table 3 measurements.
pub fn solution_json(m: &SolutionMetrics, report: &SolveReport) -> String {
    format!(
        "{{\"report\":{},\"size\":{},\"density\":{},\"avg_betweenness\":{},\"wiener\":{}}}",
        report.to_json(),
        m.size,
        m.density,
        m.avg_betweenness,
        m.wiener
    )
}

/// Averages a slice of metrics (all from the same solver).
pub fn average_metrics(runs: &[SolutionMetrics]) -> SolutionMetrics {
    assert!(!runs.is_empty());
    let n = runs.len() as f64;
    SolutionMetrics {
        solver: runs[0].solver.clone(),
        size: (runs.iter().map(|r| r.size).sum::<usize>() as f64 / n).round() as usize,
        density: runs.iter().map(|r| r.density).sum::<f64>() / n,
        avg_betweenness: runs.iter().map(|r| r.avg_betweenness).sum::<f64>() / n,
        wiener: runs.iter().map(|r| r.wiener).sum::<f64>() / n,
        seconds: runs.iter().map(|r| r.seconds).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_baselines::full_engine;
    use mwc_graph::centrality::betweenness;
    use mwc_graph::generators::karate::karate_club;

    #[test]
    fn evaluates_all_paper_methods_on_karate() {
        let g = karate_club();
        let engine = full_engine(&g);
        let bc = betweenness(&g, true);
        let q: Vec<NodeId> = vec![11, 24, 25, 29];
        for name in PAPER_METHODS {
            let sm = evaluate_solver(&engine, name, &q, &bc).unwrap();
            assert_eq!(sm.solver, name);
            assert!(sm.size >= q.len(), "{name}");
            assert!(sm.density > 0.0 && sm.density <= 1.0);
            assert!(sm.wiener > 0.0);
            assert!(sm.avg_betweenness >= 0.0);
            assert!(sm.seconds >= 0.0);
        }
    }

    #[test]
    fn unknown_solver_name_errors_cleanly() {
        let g = karate_club();
        let engine = full_engine(&g);
        let bc = betweenness(&g, true);
        assert!(evaluate_solver(&engine, "missing", &[0, 33], &bc).is_err());
    }

    #[test]
    fn solution_json_embeds_the_uniform_report_shape() {
        let g = karate_club();
        let engine = full_engine(&g);
        let bc = betweenness(&g, true);
        let (m, report) = evaluate_with_report(&engine, "ws-q", &[11, 24, 25, 29], &bc).unwrap();
        let line = solution_json(&m, &report);
        assert!(
            line.starts_with("{\"report\":{\"solver\":\"ws-q\""),
            "{line}"
        );
        assert!(line.contains(&format!("\"wiener_index\":{}", report.wiener_index)));
        assert!(line.ends_with('}'), "{line}");
        assert!(report.render_text().starts_with("ws-q: W = "));
    }

    #[test]
    fn averaging() {
        let g = karate_club();
        let engine = full_engine(&g);
        let bc = betweenness(&g, true);
        let a = evaluate_solver(&engine, "st", &[0, 33], &bc).unwrap();
        let b = evaluate_solver(&engine, "st", &[11, 24], &bc).unwrap();
        let avg = average_metrics(&[a.clone(), b.clone()]);
        assert_eq!(avg.solver, "st");
        assert!((avg.wiener - (a.wiener + b.wiener) / 2.0).abs() < 1e-9);
    }
}
