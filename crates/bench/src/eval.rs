//! Uniform evaluation of a method's solution: the Table 3 metrics.

use mwc_baselines::Method;
use mwc_graph::{metrics, Graph, NodeId};
use rand::Rng;

use crate::stats::timed;

/// The per-solution measurements of Table 3 / Figure 3.
#[derive(Debug, Clone)]
pub struct SolutionMetrics {
    /// Method that produced the solution.
    pub method: Method,
    /// `|V[H]|`.
    pub size: usize,
    /// `δ(H) = |E[H]| / C(|V[H]|, 2)`.
    pub density: f64,
    /// Average betweenness centrality (in the input graph) of the
    /// solution's vertices — `bc(H)`.
    pub avg_betweenness: f64,
    /// Wiener index `W(H)` (exact below `exact_threshold` vertices, sampled
    /// above).
    pub wiener: f64,
    /// Wall-clock seconds for the solve itself (metrics excluded).
    pub seconds: f64,
}

/// Runs `method` on `(g, q)` and measures the solution.
///
/// `bc` is the betweenness vector of `g` (computed once per graph by the
/// caller — it is the expensive part). Solutions larger than
/// `exact_threshold` get a sampled Wiener index with `wiener_samples`
/// sources.
pub fn evaluate_method<R: Rng>(
    method: Method,
    g: &Graph,
    q: &[NodeId],
    bc: &[f64],
    exact_threshold: usize,
    wiener_samples: usize,
    rng: &mut R,
) -> mwc_core::Result<SolutionMetrics> {
    let (result, seconds) = timed(|| method.run(g, q));
    let connector = result?;
    let sub = connector.induced(g)?;
    let density = metrics::density(sub.graph());
    let wiener = if connector.len() <= exact_threshold {
        connector.wiener_index(g)? as f64
    } else {
        connector.wiener_index_sampled(g, wiener_samples, rng)?
    };
    Ok(SolutionMetrics {
        method,
        size: connector.len(),
        density,
        avg_betweenness: connector.average_score(bc),
        wiener,
        seconds,
    })
}

/// Averages a slice of metrics (all from the same method).
pub fn average_metrics(runs: &[SolutionMetrics]) -> SolutionMetrics {
    assert!(!runs.is_empty());
    let n = runs.len() as f64;
    SolutionMetrics {
        method: runs[0].method,
        size: (runs.iter().map(|r| r.size).sum::<usize>() as f64 / n).round() as usize,
        density: runs.iter().map(|r| r.density).sum::<f64>() / n,
        avg_betweenness: runs.iter().map(|r| r.avg_betweenness).sum::<f64>() / n,
        wiener: runs.iter().map(|r| r.wiener).sum::<f64>() / n,
        seconds: runs.iter().map(|r| r.seconds).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::centrality::betweenness;
    use mwc_graph::generators::karate::karate_club;
    use rand::SeedableRng;

    #[test]
    fn evaluates_all_methods_on_karate() {
        let g = karate_club();
        let bc = betweenness(&g, true);
        let q: Vec<NodeId> = vec![11, 24, 25, 29];
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for m in Method::ALL {
            let sm = evaluate_method(m, &g, &q, &bc, 4096, 32, &mut rng).unwrap();
            assert!(sm.size >= q.len(), "{}", m.name());
            assert!(sm.density > 0.0 && sm.density <= 1.0);
            assert!(sm.wiener > 0.0);
            assert!(sm.avg_betweenness >= 0.0);
        }
    }

    #[test]
    fn averaging() {
        let g = karate_club();
        let bc = betweenness(&g, true);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = evaluate_method(Method::St, &g, &[0, 33], &bc, 4096, 32, &mut rng).unwrap();
        let b = evaluate_method(Method::St, &g, &[11, 24], &bc, 4096, 32, &mut rng).unwrap();
        let avg = average_metrics(&[a.clone(), b.clone()]);
        assert_eq!(avg.method, Method::St);
        assert!((avg.wiener - (a.wiener + b.wiener) / 2.0).abs() < 1e-9);
    }
}
